"""Report sink for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures as
text (and sometimes PGM images).  Benchmark timing goes to
pytest-benchmark's own output; the *content* — the rows and series the
paper reports — is persisted here so a run leaves artifacts that can be
diffed against EXPERIMENTS.md.

The output directory defaults to ``benchmarks/results`` under the
current working directory and can be redirected with the
``REPRO_RESULTS_DIR`` environment variable or, with higher precedence,
the CLI's ``--results-dir`` flag (which calls :func:`set_results_dir`).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Union

_RESULTS_DIR_OVERRIDE: Optional[Path] = None


def set_results_dir(path: Optional[Union[str, Path]]) -> None:
    """Override the results directory for this process.

    Takes precedence over the ``REPRO_RESULTS_DIR`` environment
    variable; pass None to fall back to the environment/default again.
    """
    global _RESULTS_DIR_OVERRIDE
    _RESULTS_DIR_OVERRIDE = Path(path) if path is not None else None


def results_dir() -> Path:
    """Directory that experiment artifacts are written to (created on
    demand).  Precedence: :func:`set_results_dir` override, then the
    ``REPRO_RESULTS_DIR`` environment variable, then
    ``benchmarks/results``."""
    if _RESULTS_DIR_OVERRIDE is not None:
        path = _RESULTS_DIR_OVERRIDE
    else:
        path = Path(os.environ.get("REPRO_RESULTS_DIR", "benchmarks/results"))
    path.mkdir(parents=True, exist_ok=True)
    return path


def save_report(name: str, text: str, echo: bool = True) -> Path:
    """Persist one experiment report and (by default) echo it to stdout.

    ``name`` is a slug like ``fig07_uniqueness``; the report lands in
    ``<results_dir>/<name>.txt``.
    """
    path = results_dir() / f"{name}.txt"
    path.write_text(text if text.endswith("\n") else text + "\n")
    if echo:
        print(f"\n=== {name} ===\n{text}")
    return path


def save_experiment_report(report, echo: bool = True) -> Path:
    """Persist an :class:`~repro.experiments.ExperimentReport`.

    Writes the rendered text to ``<id>.txt`` and the metrics to
    ``<id>.metrics.json`` so ``python -m repro summary`` (and any
    external tooling) can collate headline numbers without re-running
    experiments.
    """
    slug = report.experiment_id.replace("-", "_")
    path = save_report(slug, str(report), echo=echo)
    metrics_path = results_dir() / f"{slug}.metrics.json"
    payload = {
        "experiment_id": report.experiment_id,
        "title": report.title,
        "metrics": dict(report.metrics),
    }
    metrics_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_saved_metrics() -> list:
    """All persisted experiment metrics, sorted by experiment id."""
    records = []
    for path in sorted(results_dir().glob("*.metrics.json")):
        records.append(json.loads(path.read_text()))
    records.sort(key=lambda record: record["experiment_id"])
    return records
