"""Analysis and rendering helpers behind the benchmark harness."""

from repro.analysis.heatmap import (
    OccurrenceMap,
    accumulate_occurrences,
    render_heatmap,
)
from repro.analysis.histogram import (
    Histogram,
    class_separation,
    histogram,
    render_histograms,
)
from repro.analysis.images import (
    error_pattern_similarity,
    error_pixel_mask,
    highlight_errors,
    read_pgm,
    write_pgm,
)
from repro.analysis.venn import VennThree, nesting_report, subset_violations, venn_three

__all__ = [
    "OccurrenceMap",
    "accumulate_occurrences",
    "render_heatmap",
    "Histogram",
    "class_separation",
    "histogram",
    "render_histograms",
    "error_pattern_similarity",
    "error_pixel_mask",
    "highlight_errors",
    "read_pgm",
    "write_pgm",
    "VennThree",
    "nesting_report",
    "subset_violations",
    "venn_three",
]
