"""Image export and error-pattern comparison for the Figure 5 / 12 visuals.

The paper argues Figure 5 by eye: two outputs of the same chip show the
same error constellation, a third chip's output does not.  This module
writes the images as PGM (viewable anywhere, no dependencies) and backs
the visual argument with numbers: pixel-level error-overlap counts
between outputs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np


def write_pgm(image: np.ndarray, path: Union[str, Path]) -> Path:
    """Write a uint8 grayscale image as binary PGM (P5)."""
    if image.dtype != np.uint8 or image.ndim != 2:
        raise ValueError("expected a 2-D uint8 image")
    path = Path(path)
    height, width = image.shape
    with open(path, "wb") as handle:
        handle.write(f"P5\n{width} {height}\n255\n".encode("ascii"))
        handle.write(image.tobytes())
    return path


def read_pgm(path: Union[str, Path]) -> np.ndarray:
    """Read a binary PGM (P5) written by :func:`write_pgm`."""
    data = Path(path).read_bytes()
    if not data.startswith(b"P5"):
        raise ValueError("not a binary PGM file")
    parts = data.split(b"\n", 3)
    width, height = (int(token) for token in parts[1].split())
    pixels = np.frombuffer(parts[3], dtype=np.uint8, count=width * height)
    return pixels.reshape(height, width).copy()


def error_pixel_mask(exact: np.ndarray, approx: np.ndarray) -> np.ndarray:
    """Boolean mask of pixels whose bytes differ."""
    if exact.shape != approx.shape:
        raise ValueError("images must have equal shapes")
    return exact != approx


def error_pattern_similarity(
    exact: np.ndarray, approx_a: np.ndarray, approx_b: np.ndarray
) -> Dict[str, float]:
    """Quantify how alike two outputs' error constellations are.

    Returns error pixel counts, the overlap count, and the Jaccard
    similarity of the two error-pixel sets — high for outputs of the
    same chip, near the random-overlap floor for different chips.
    """
    mask_a = error_pixel_mask(exact, approx_a)
    mask_b = error_pixel_mask(exact, approx_b)
    overlap = int((mask_a & mask_b).sum())
    union = int((mask_a | mask_b).sum())
    return {
        "errors_a": int(mask_a.sum()),
        "errors_b": int(mask_b.sum()),
        "overlap": overlap,
        "jaccard": overlap / union if union else 1.0,
    }


def highlight_errors(
    exact: np.ndarray, approx: np.ndarray, emphasis: int = 255
) -> np.ndarray:
    """Copy of the approximate image with error pixels forced to a value.

    Makes the Figure 5 constellations visible on low-contrast content.
    """
    output = approx.copy()
    output[error_pixel_mask(exact, approx)] = emphasis
    return output
