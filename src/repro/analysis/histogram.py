"""Histogramming and text rendering for the distance-distribution figures.

Figures 7, 9 and 11 are histograms of pairwise distances; the benchmark
harness reproduces them as numeric tables plus a terminal-friendly bar
rendering so the separation the paper shows visually is inspectable in
CI logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Histogram:
    """Fixed-bin histogram over [lo, hi]."""

    bin_edges: np.ndarray
    counts: np.ndarray
    label: str = ""

    @property
    def total(self) -> int:
        """Number of samples binned."""
        return int(self.counts.sum())

    def rows(self) -> List[Tuple[float, float, int]]:
        """(bin_lo, bin_hi, count) rows for tabular output."""
        return [
            (float(self.bin_edges[i]), float(self.bin_edges[i + 1]), int(count))
            for i, count in enumerate(self.counts)
        ]


def histogram(
    values: Sequence[float],
    bins: int = 20,
    value_range: Tuple[float, float] = (0.0, 1.0),
    label: str = "",
) -> Histogram:
    """Bin ``values`` into a :class:`Histogram`."""
    counts, edges = np.histogram(
        np.asarray(list(values), dtype=float), bins=bins, range=value_range
    )
    return Histogram(bin_edges=edges, counts=counts, label=label)


def render_histograms(
    histograms: Sequence[Histogram],
    width: int = 40,
    title: str = "",
) -> str:
    """ASCII rendering of one or more same-binned histograms.

    Each histogram gets one bar column; bars scale to the global
    maximum so relative magnitudes read correctly across series.
    """
    if not histograms:
        raise ValueError("need at least one histogram")
    edges = histograms[0].bin_edges
    for hist in histograms[1:]:
        if not np.array_equal(hist.bin_edges, edges):
            raise ValueError("histograms must share bin edges")
    peak = max(int(h.counts.max()) for h in histograms) or 1
    lines = []
    if title:
        lines.append(title)
    header = "bin".ljust(18) + "  ".join(
        (h.label or f"series{i}").ljust(width) for i, h in enumerate(histograms)
    )
    lines.append(header)
    for bin_index in range(len(edges) - 1):
        row = f"[{edges[bin_index]:.3f},{edges[bin_index + 1]:.3f})".ljust(18)
        cells = []
        for hist in histograms:
            count = int(hist.counts[bin_index])
            bar = "#" * int(round(width * count / peak))
            cells.append(f"{bar}{' ' if bar else ''}{count or ''}".ljust(width))
        lines.append(row + "  ".join(cells))
    return "\n".join(lines)


def class_separation(
    within: Sequence[float], between: Sequence[float]
) -> Tuple[float, float, float]:
    """(max within, min between, ratio) — the paper's headline gap.

    The ratio is the paper's "two orders of magnitude" claim: minimum
    between-class distance over maximum within-class distance.
    """
    if not within or not between:
        raise ValueError("both classes need at least one sample")
    max_within = max(within)
    min_between = min(between)
    ratio = min_between / max_within if max_within > 0 else float("inf")
    return max_within, min_between, ratio
