"""Figure 8 machinery: per-cell error-occurrence maps over many trials.

The consistency experiment records how often each cell fails across 21
identical trials; a cell that fails in every trial (or none) is
predictable, while intermediate counts are noise.  This module
accumulates the occurrence counts, computes the paper's repeatability
statistic ("98 % of bits that fail in any one trial will also fail in
the other 20"), and renders the occurrence map over the chip's
row/column geometry as text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.bits import BitVector
from repro.dram.geometry import ChipGeometry


@dataclass(frozen=True)
class OccurrenceMap:
    """Error-occurrence counts for one chip over ``n_trials`` trials."""

    counts: np.ndarray  # int per cell, linear bit order
    n_trials: int

    @property
    def ever_failed(self) -> np.ndarray:
        """Mask of cells that failed at least once."""
        return self.counts > 0

    @property
    def always_failed(self) -> np.ndarray:
        """Mask of cells that failed in every trial."""
        return self.counts == self.n_trials

    @property
    def unpredictable(self) -> np.ndarray:
        """Mask of cells that failed in some but not all trials."""
        return self.ever_failed & ~self.always_failed

    def repeatability(self) -> float:
        """Fraction of ever-failing cells that failed in *all* trials.

        The paper reports ≥98 % for 21 trials at 99 % accuracy, 40 °C.
        """
        ever = int(self.ever_failed.sum())
        if ever == 0:
            return 1.0
        return int(self.always_failed.sum()) / ever

    def grid(self, geometry: ChipGeometry) -> np.ndarray:
        """Counts reshaped to (rows, bits_per_row) for heatmap display."""
        if self.counts.size != geometry.total_bits:
            raise ValueError(
                f"map covers {self.counts.size} cells, geometry has "
                f"{geometry.total_bits}"
            )
        return self.counts.reshape(geometry.rows, geometry.bits_per_row)


def accumulate_occurrences(error_strings: Sequence[BitVector]) -> OccurrenceMap:
    """Build an :class:`OccurrenceMap` from per-trial error strings."""
    if not error_strings:
        raise ValueError("need at least one error string")
    counts = np.zeros(error_strings[0].nbits, dtype=np.int32)
    for error_string in error_strings:
        if error_string.nbits != counts.size:
            raise ValueError("error strings must cover the same region")
        counts += error_string.to_bool_array()
    return OccurrenceMap(counts=counts, n_trials=len(error_strings))


_SHADES = " .:-=+*#%@"


def render_heatmap(
    occurrence_map: OccurrenceMap,
    geometry: ChipGeometry,
    max_rows: int = 32,
    max_cols: int = 96,
) -> str:
    """ASCII heatmap of cell unpredictability (darker = noisier).

    The grid is block-averaged down to at most ``max_rows`` x
    ``max_cols`` character cells; each character's shade encodes the
    average *unpredictability* (distance of the occurrence count from
    both 0 and n_trials) in its block.
    """
    grid = occurrence_map.grid(geometry).astype(float)
    n_trials = occurrence_map.n_trials
    # Unpredictability: 0 for always/never, 1 for failing half the time.
    unpredictability = 1.0 - np.abs(2.0 * grid / n_trials - 1.0)
    rows, cols = unpredictability.shape
    row_step = max(1, rows // max_rows)
    col_step = max(1, cols // max_cols)
    trimmed = unpredictability[
        : (rows // row_step) * row_step, : (cols // col_step) * col_step
    ]
    blocks = trimmed.reshape(
        trimmed.shape[0] // row_step, row_step, trimmed.shape[1] // col_step, col_step
    ).mean(axis=(1, 3))
    peak = blocks.max() or 1.0
    lines: List[str] = []
    for block_row in blocks:
        indices = np.minimum(
            (block_row / peak * (len(_SHADES) - 1)).astype(int),
            len(_SHADES) - 1,
        )
        lines.append("".join(_SHADES[i] for i in indices))
    return "\n".join(lines)
