"""Figure 10 machinery: overlap structure of error sets across accuracies.

The order-of-failure experiment records the error locations of one chip
at 99 %, 95 % and 90 % accuracy and asks how nested they are: the paper
finds ``errors(99 %) ⊂ errors(95 %) ⊂ errors(90 %)`` up to a handful of
outlier cells.  This module computes the three-set Venn region sizes
and the subset-violation counts that quantify "aside from a single
outlier" / "aside from 32 cells".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.bits import BitVector


@dataclass(frozen=True)
class VennThree:
    """Region sizes of a three-set Venn diagram.

    Region keys are binary membership triples over the input order,
    e.g. ``(True, False, False)`` is "only in set A".
    """

    regions: Dict[Tuple[bool, bool, bool], int]

    @property
    def total(self) -> int:
        """Cells in at least one set."""
        return sum(
            count
            for membership, count in self.regions.items()
            if any(membership)
        )

    def only(self, index: int) -> int:
        """Cells exclusive to one set (0-based input order)."""
        membership = tuple(i == index for i in range(3))
        return self.regions.get(membership, 0)

    def common_to_all(self) -> int:
        """Cells present in all three sets."""
        return self.regions.get((True, True, True), 0)


def venn_three(a: BitVector, b: BitVector, c: BitVector) -> VennThree:
    """Compute all 7 non-empty Venn regions of three bit sets."""
    if not (a.nbits == b.nbits == c.nbits):
        raise ValueError("sets must cover the same region")
    regions: Dict[Tuple[bool, bool, bool], int] = {}
    for in_a in (False, True):
        for in_b in (False, True):
            for in_c in (False, True):
                if not (in_a or in_b or in_c):
                    continue
                part_a = a if in_a else ~a
                part_b = b if in_b else ~b
                part_c = c if in_c else ~c
                regions[(in_a, in_b, in_c)] = (part_a & part_b & part_c).popcount()
    return VennThree(regions=regions)


def subset_violations(subset: BitVector, superset: BitVector) -> int:
    """Cells in ``subset`` missing from ``superset``.

    Figure 10's "aside from a single outlier" statistic: how badly the
    expected nesting 99 % ⊂ 95 % ⊂ 90 % is violated.
    """
    return subset.count_andnot(superset)


def nesting_report(
    errors_99: BitVector, errors_95: BitVector, errors_90: BitVector
) -> Dict[str, int]:
    """Summary of the Figure 10 nesting structure."""
    return {
        "errors_at_99": errors_99.popcount(),
        "errors_at_95": errors_95.popcount(),
        "errors_at_90": errors_90.popcount(),
        "violations_99_in_95": subset_violations(errors_99, errors_95),
        "violations_95_in_90": subset_violations(errors_95, errors_90),
        "common_to_all": (errors_99 & errors_95 & errors_90).popcount(),
    }
