"""Attack scenario (b): the eavesdropping attacker (§7.6, Figure 13).

The attacker never touches the hardware.  They scrape published
approximate outputs, derive per-page error strings, and stitch
overlapping outputs into ever-larger partial memory fingerprints.  The
figure of merit is the number of *suspected chips* (live assemblies)
as a function of samples collected: it rises while samples land in
disjoint memory, peaks, and then collapses toward one assembly per
actual machine as overlaps accumulate.  The paper observes convergence
beginning around 90 samples for 10 MB samples in 1 GB of memory.

Two drivers are provided:

* :func:`run_stitching_experiment` — full fingerprint pipeline against
  :class:`~repro.system.ModeledApproximateMemory` machines.  Runs the
  paper's *shape* at a scaled memory size (the suspected-chip curve
  depends only on the sample count and the memory/sample page ratio,
  which are preserved; see EXPERIMENTS.md).
* :func:`run_interval_model` — the placement-only analytic model at
  the paper's literal 1 GB / 10 MB scale: assuming page matching works
  (which the stitching experiment demonstrates), a sample is an
  interval of pages and the suspected-chip count is the number of
  connected components of interval overlap.  Cheap enough for
  thousands of samples at full scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.distance import DEFAULT_THRESHOLD
from repro.core.minhash import MinHasher
from repro.core.stitch import Stitcher, StitchReport
from repro.system.approx_system import ModeledApproximateMemory


@dataclass(frozen=True)
class ConvergencePoint:
    """One point on the Figure 13 curve."""

    samples: int
    suspected_chips: int


@dataclass(frozen=True)
class ConvergenceCurve:
    """The Figure 13 curve plus its summary statistics."""

    points: List[ConvergencePoint]

    @property
    def peak(self) -> ConvergencePoint:
        """The maximum of the suspected-chip curve — the paper's
        "begins to converge" landmark (≈90 samples at paper scale)."""
        return max(self.points, key=lambda point: point.suspected_chips)

    @property
    def final(self) -> ConvergencePoint:
        """The last recorded point."""
        return self.points[-1]

    def samples_axis(self) -> List[int]:
        """X values (sample counts)."""
        return [point.samples for point in self.points]

    def suspected_axis(self) -> List[int]:
        """Y values (suspected chips)."""
        return [point.suspected_chips for point in self.points]


class EavesdropperAttacker:
    """Wraps the stitcher with the attack-facing vocabulary."""

    def __init__(
        self,
        threshold: float = DEFAULT_THRESHOLD,
        min_overlap_pages: int = 1,
        hasher: Optional[MinHasher] = None,
    ):
        self._stitcher = Stitcher(
            threshold=threshold,
            min_overlap_pages=min_overlap_pages,
            hasher=hasher,
        )

    @property
    def stitcher(self) -> Stitcher:
        """Underlying assembly engine."""
        return self._stitcher

    @property
    def suspected_chips(self) -> int:
        """Current number of distinct machines the attacker suspects."""
        return self._stitcher.suspected_chip_count

    def observe_output(self, page_errors: Sequence) -> StitchReport:
        """Ingest one published output's per-page error strings."""
        return self._stitcher.add_output(page_errors)


def run_stitching_experiment(
    machines: Sequence[ModeledApproximateMemory],
    n_samples: int,
    sample_pages: int,
    rng: np.random.Generator,
    record_every: int = 1,
    attacker: Optional[EavesdropperAttacker] = None,
) -> ConvergenceCurve:
    """Drive the full stitching attack against one or more machines.

    Each sample is published by a machine chosen uniformly at random
    (with one machine this is exactly the paper's single-victim setup);
    the attacker never learns which machine produced what.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    if attacker is None:
        attacker = EavesdropperAttacker()
    points: List[ConvergencePoint] = []
    for sample_index in range(1, n_samples + 1):
        machine = machines[int(rng.integers(0, len(machines)))]
        output = machine.publish_output(sample_pages, rng)
        attacker.observe_output(output.page_errors)
        if sample_index % record_every == 0 or sample_index == n_samples:
            points.append(
                ConvergencePoint(
                    samples=sample_index,
                    suspected_chips=attacker.suspected_chips,
                )
            )
    return ConvergenceCurve(points=points)


def expected_suspected_chips(
    n_samples: int, total_pages: int, sample_pages: int
) -> float:
    """Closed-form expectation of the Figure 13 curve.

    For ``n`` length-``L`` intervals placed uniformly in ``M`` pages,
    sort the starts; a new cluster begins wherever the spacing between
    consecutive order statistics exceeds ``L``.  Uniform spacings are
    approximately exponential with rate ``n / M``, so each of the
    ``n - 1`` gaps is a break with probability ``exp(-n L / M)``:

    ``E[clusters] ≈ 1 + (n - 1) · exp(-n L / M)``

    The curve peaks near ``n = M / L`` at about ``M / (e L)`` clusters —
    for the paper's 1 GB / 10 MB parameters, ~38 suspects at ~102
    samples, matching both Figure 13 and the simulations here.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    if sample_pages > total_pages:
        raise ValueError("sample_pages cannot exceed total_pages")
    import math

    gap_probability = math.exp(-n_samples * sample_pages / total_pages)
    return 1.0 + (n_samples - 1) * gap_probability


def run_interval_model(
    total_pages: int,
    sample_pages: int,
    n_samples: int,
    rng: np.random.Generator,
    record_every: int = 1,
) -> ConvergenceCurve:
    """Placement-only convergence model at arbitrary (paper) scale.

    Assumes page matching is perfect — justified by the two-orders-of-
    magnitude distance separation — so two samples merge exactly when
    their page intervals overlap.  Tracks connected components of
    interval overlap incrementally with a merged-segment list.
    """
    if sample_pages > total_pages:
        raise ValueError("sample_pages cannot exceed total_pages")
    # Each segment is [start, end) with a count of constituent clusters
    # folded in; the number of suspected chips is the segment count.
    segments: List[List[int]] = []  # sorted, disjoint [start, end)
    points: List[ConvergencePoint] = []
    for sample_index in range(1, n_samples + 1):
        start = int(rng.integers(0, total_pages - sample_pages + 1))
        end = start + sample_pages
        # Find all segments overlapping [start, end) and merge them.
        merged_start, merged_end = start, end
        keep: List[List[int]] = []
        for segment in segments:
            # Overlap requires a shared page; mere adjacency does not
            # merge (the attacker sees no common page fingerprint).
            if segment[1] <= merged_start or segment[0] >= merged_end:
                keep.append(segment)
            else:
                merged_start = min(merged_start, segment[0])
                merged_end = max(merged_end, segment[1])
        keep.append([merged_start, merged_end])
        keep.sort()
        segments = keep
        if sample_index % record_every == 0 or sample_index == n_samples:
            points.append(
                ConvergencePoint(
                    samples=sample_index, suspected_chips=len(segments)
                )
            )
    return ConvergenceCurve(points=points)
