"""The full Probable Cause pipeline — Figure 1 as one object.

Figure 1 shows the attacker's complete loop: collect approximate
outputs, extract error patterns, match them against known fingerprints,
grow fingerprints from matches, and open new suspects for unmatched
patterns.  :class:`ProbableCause` packages Algorithms 1–4 behind that
single loop so a user of the library can drive the whole attack with
one call per observed output:

>>> attacker = ProbableCause()
>>> attribution = attacker.observe(approx, exact)
>>> attribution.key            # stable suspect id, e.g. 'device-0'
>>> attribution.new_suspect    # True the first time a device is seen

Devices fingerprinted out-of-band (the supply-chain scenario) are
registered with :meth:`enroll`; everything else is clustered online
(the eavesdropping scenario).  The store can be persisted with
:meth:`save` / :meth:`load` between sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Union

from typing import Optional

from repro.bits import BitVector
from repro.core.distance import DEFAULT_THRESHOLD
from repro.core.errors import mark_errors
from repro.core.fingerprint import Fingerprint
from repro.core.identify import FingerprintDatabase, identify_error_string
from repro.core.serialize import dump_database, load_database
from repro.service.indexed import IndexedFingerprintDatabase


@dataclass(frozen=True)
class Attribution:
    """Verdict for one observed output."""

    key: str
    distance: float
    new_suspect: bool
    enrolled: bool

    @property
    def matched_known_device(self) -> bool:
        """True when the output matched a pre-enrolled (supply-chain)
        fingerprint rather than an online cluster."""
        return self.enrolled and not self.new_suspect


class ProbableCause:
    """End-to-end attacker: enroll, observe, attribute, persist.

    Observation follows Algorithm 2 then Algorithm 4: the error string
    is matched against enrolled fingerprints first (first-below-
    threshold, as the paper specifies), then against online clusters;
    a miss opens a new suspect.  Matches refine the stored fingerprint
    by intersection exactly as characterization would.
    """

    def __init__(
        self,
        threshold: float = DEFAULT_THRESHOLD,
        suspect_prefix: str = "suspect",
        database: Optional[FingerprintDatabase] = None,
    ):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self._threshold = threshold
        self._suspect_prefix = suspect_prefix
        # LSH-indexed store by default: matching stays sublinear as the
        # suspect population grows.  Any FingerprintDatabase works.
        self._database = (
            database if database is not None else IndexedFingerprintDatabase()
        )
        self._enrolled_keys: set = set()
        self._next_suspect = 0
        self._observations = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def threshold(self) -> float:
        """Match threshold on the Algorithm 3 distance."""
        return self._threshold

    @property
    def database(self) -> FingerprintDatabase:
        """The unified fingerprint store (enrolled + suspects)."""
        return self._database

    @property
    def observations(self) -> int:
        """Outputs observed so far."""
        return self._observations

    def known_devices(self) -> List[str]:
        """Keys enrolled from physical characterization."""
        return [key for key in self._database.keys() if key in self._enrolled_keys]

    def suspects(self) -> List[str]:
        """Keys opened by online clustering."""
        return [
            key for key in self._database.keys() if key not in self._enrolled_keys
        ]

    # ------------------------------------------------------------------
    # Enrollment (supply-chain scenario)
    # ------------------------------------------------------------------

    def enroll(self, key: str, fingerprint: Fingerprint) -> None:
        """Register a device fingerprinted out-of-band."""
        self._database.add(key, fingerprint)
        self._enrolled_keys.add(key)

    # ------------------------------------------------------------------
    # Observation (both scenarios)
    # ------------------------------------------------------------------

    def observe(self, approx: BitVector, exact: BitVector) -> Attribution:
        """Attribute one published output; grows the store as a side
        effect (matched fingerprints are refined, misses open suspects).
        """
        return self.observe_errors(mark_errors(approx, exact))

    def observe_errors(self, error_string: BitVector) -> Attribution:
        """Like :meth:`observe`, starting from an extracted error string.

        Identification is Algorithm 2 via
        :func:`~repro.core.identify.identify_error_string`, so an
        indexed database answers through its LSH candidate filter and
        the error string is never re-marked.
        """
        self._observations += 1
        result = identify_error_string(
            error_string, self._database, self._threshold
        )
        if result.matched:
            self._database.update(
                result.key,
                self._database.get(result.key).intersect(error_string),
            )
            return Attribution(
                key=result.key,
                distance=result.distance,
                new_suspect=False,
                enrolled=result.key in self._enrolled_keys,
            )
        key = f"{self._suspect_prefix}-{self._next_suspect}"
        self._next_suspect += 1
        self._database.add(key, Fingerprint(bits=error_string.copy()))
        return Attribution(
            key=key, distance=0.0, new_suspect=True, enrolled=False
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, destination: Union[str, Path]) -> None:
        """Persist the fingerprint store (enrollment flags are encoded
        in the key prefix: suspects carry :attr:`suspect_prefix`)."""
        dump_database(self._database, destination)

    @classmethod
    def load(
        cls,
        source: Union[str, Path],
        threshold: float = DEFAULT_THRESHOLD,
        suspect_prefix: str = "suspect",
    ) -> "ProbableCause":
        """Restore a pipeline from a persisted store."""
        pipeline = cls(threshold=threshold, suspect_prefix=suspect_prefix)
        for key, fingerprint in load_database(source).items():
            pipeline._database.add(key, fingerprint)
        suspect_numbers = []
        for key in pipeline._database.keys():
            if key.startswith(f"{suspect_prefix}-"):
                tail = key[len(suspect_prefix) + 1 :]
                if tail.isdigit():
                    suspect_numbers.append(int(tail))
                    continue
            pipeline._enrolled_keys.add(key)
        pipeline._next_suspect = max(suspect_numbers, default=-1) + 1
        return pipeline
