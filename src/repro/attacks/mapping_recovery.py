"""Attack scenario (c): the mapping-recovery attacker (DESIGN.md §12).

Before the eavesdropper (or a Rowhammer-adjacent co-location attacker)
can reason about *physical* DRAM structure, they must reverse-engineer
the controller's channel/rank/bank interleave functions — the step the
FP-Rowhammer / DRAMA line of work performs with timing side channels.
In the approximate-DRAM threat model the same information leaks
through decay itself: pages sharing a physical bank group share a
staggered refresh phase, and their decay clusters co-occur.

:class:`MappingRecoveryAttacker` packages the recovery loop of
:mod:`repro.addrmap.recover` with the attack-facing vocabulary: a
probe budget, datasheet partial knowledge, and a
:class:`~repro.addrmap.recover.RecoveredMapping` verdict.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.addrmap.memory import InterleavedApproximateMemory
from repro.addrmap.recover import (
    AddrmapMetrics,
    RecoveredMapping,
    run_recovery,
)


class MappingRecoveryAttacker:
    """Recovers unknown XOR interleave functions from co-decay.

    Parameters
    ----------
    budget:
        Hard limit on physical co-decay probes (each majority-vote
        repeat counts).
    repeats:
        Probes per oracle round; the majority suppresses noise.
    probe_error:
        Per-probe flip probability of the co-decay observable.
    expected_interleave_bits:
        The attacker's datasheet knowledge (channel+rank+bank width);
        ``None`` means the attacker reads it off the victim's geometry
        — the fully-informed baseline.
    patience:
        Uninformative rounds tolerated before giving up when no
        expected width is known.
    """

    def __init__(
        self,
        budget: int = 8000,
        repeats: int = 3,
        probe_error: float = 0.02,
        expected_interleave_bits: Optional[int] = None,
        patience: int = 200,
        metrics: Optional[AddrmapMetrics] = None,
    ):
        self._budget = budget
        self._repeats = repeats
        self._probe_error = probe_error
        self._expected = expected_interleave_bits
        self._patience = patience
        self._metrics = metrics
        self._last: Optional[RecoveredMapping] = None

    @property
    def last_recovery(self) -> Optional[RecoveredMapping]:
        """Most recent recovery result, if any."""
        return self._last

    def recover(
        self,
        memory: InterleavedApproximateMemory,
        rng: np.random.Generator,
    ) -> RecoveredMapping:
        """Run the budgeted recovery against one machine."""
        self._last = run_recovery(
            memory,
            budget_limit=self._budget,
            rng=rng,
            repeats=self._repeats,
            probe_error=self._probe_error,
            expected_interleave_bits=self._expected,
            patience=self._patience,
            metrics=self._metrics,
        )
        return self._last
