"""Attack scenario (a): the supply-chain attacker.

The attacker intercepts systems (or bare DRAM modules) between the
manufacturer and the user (§3, Figure 3a), characterizes each device
completely with chosen data, and files the fingerprints by serial
number.  Any approximate output the device later publishes can then be
attributed with Algorithm 2 — §4 notes data "only a few memory pages in
length" suffices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bits import PAGE_BITS, BitVector, split_pages
from repro.core.characterize import characterize_trials
from repro.core.distance import DEFAULT_THRESHOLD, probable_cause_distance
from repro.core.identify import FingerprintDatabase, Identification, identify
from repro.dram.platform import ExperimentPlatform, TrialConditions
from repro.service.indexed import IndexedFingerprintDatabase


@dataclass(frozen=True)
class InterceptionRecord:
    """Bookkeeping for one intercepted device."""

    serial: str
    fingerprint_weight: int
    trials_used: int


class SupplyChainAttacker:
    """Fingerprints devices before deployment, identifies outputs after.

    The default characterization recipe matches §7.1: intersect the
    error strings of three worst-case-data outputs taken at 1 % error
    across different temperatures.
    """

    def __init__(
        self,
        threshold: float = DEFAULT_THRESHOLD,
        characterization_accuracy: float = 0.99,
        characterization_temperatures: Sequence[float] = (40.0, 50.0, 60.0),
        database: Optional[FingerprintDatabase] = None,
    ):
        self._threshold = threshold
        self._accuracy = characterization_accuracy
        self._temperatures = tuple(characterization_temperatures)
        # Interception logs reach nation-state scale; the default store
        # answers Algorithm 2 through an LSH index instead of a scan.
        self._database = (
            database if database is not None else IndexedFingerprintDatabase()
        )
        self._records: List[InterceptionRecord] = []

    @property
    def database(self) -> FingerprintDatabase:
        """The attacker's fingerprint store."""
        return self._database

    @property
    def records(self) -> List[InterceptionRecord]:
        """Interception log, in order of capture."""
        return list(self._records)

    def intercept_device(
        self, platform: ExperimentPlatform, serial: str
    ) -> InterceptionRecord:
        """Characterize one intercepted device and file its fingerprint."""
        trials = [
            platform.run_trial(
                TrialConditions(accuracy=self._accuracy, temperature_c=temp)
            )
            for temp in self._temperatures
        ]
        fingerprint = characterize_trials(trials, source=serial)
        self._database.add(serial, fingerprint)
        record = InterceptionRecord(
            serial=serial,
            fingerprint_weight=fingerprint.weight,
            trials_used=len(trials),
        )
        self._records.append(record)
        return record

    def attribute_output(
        self, approx: BitVector, exact: BitVector
    ) -> Identification:
        """Attribute a published approximate output to an intercepted device.

        Requires the output to cover the same region the fingerprint
        covers (the attacker-chosen characterization data).  Published
        outputs that only span a few pages at an unknown physical offset
        go through :meth:`attribute_pages` instead.
        """
        return identify(approx, exact, self._database, threshold=self._threshold)

    def attribute_pages(
        self,
        page_errors: Sequence[BitVector],
        page_bits: int = PAGE_BITS,
        min_page_weight: int = 8,
    ) -> Identification:
        """Attribute an output given only its per-page error strings.

        The published buffer sits at an *unknown* physical offset, so
        each output page is matched against every page of every stored
        system-level fingerprint (§4: "data only a few memory pages in
        length can produce a fingerprint powerful enough").  The device
        with the most page hits wins; with no hits at all the
        identification fails.

        Pages with fewer than ``min_page_weight`` error bits carry no
        signal and are skipped.
        """
        best_serial: Optional[str] = None
        best_hits = 0
        best_distance = 1.0
        for serial, fingerprint in self._database.items():
            fingerprint_pages = [
                page
                for page in split_pages(fingerprint.bits, page_bits)
                if page.popcount() >= min_page_weight
            ]
            if not fingerprint_pages:
                continue
            hits = 0
            hit_distances = []
            for errors in page_errors:
                if errors.popcount() < min_page_weight:
                    continue
                distance = min(
                    probable_cause_distance(errors, page)
                    for page in fingerprint_pages
                )
                if distance < self._threshold:
                    hits += 1
                    hit_distances.append(distance)
            if hits > best_hits:
                best_serial = serial
                best_hits = hits
                best_distance = min(hit_distances)
        if best_serial is None:
            return Identification.failed()
        return Identification(
            matched=True, key=best_serial, distance=best_distance
        )
