"""Attacker implementations for both §3 threat scenarios."""

from repro.attacks.eavesdropper import (
    ConvergenceCurve,
    ConvergencePoint,
    EavesdropperAttacker,
    expected_suspected_chips,
    run_interval_model,
    run_stitching_experiment,
)
from repro.attacks.mapping_recovery import MappingRecoveryAttacker
from repro.attacks.pipeline import Attribution, ProbableCause
from repro.attacks.spoofing import perturbed_probe, replay_probe
from repro.attacks.supply_chain import InterceptionRecord, SupplyChainAttacker

__all__ = [
    "ConvergenceCurve",
    "ConvergencePoint",
    "EavesdropperAttacker",
    "MappingRecoveryAttacker",
    "expected_suspected_chips",
    "run_interval_model",
    "run_stitching_experiment",
    "Attribution",
    "ProbableCause",
    "InterceptionRecord",
    "SupplyChainAttacker",
    "perturbed_probe",
    "replay_probe",
]
