"""Fingerprint spoofing: impersonating an enrolled device.

The fleet threat model (DESIGN.md §16) adds an adversary who wants to
*be identified as* someone else's device — the inverse of the paper's
deanonymization attacker.  The spoofer has obtained a victim's
published fingerprint for one modality (decay fingerprints leak
through any approximate output; the other channels require physical
access the spoofer lacks) and fabricates observations from it:

* :func:`replay_probe` — submit the fingerprint verbatim as the error
  string.  Maximally accurate — the Algorithm 3 distance is exactly
  0.0 — and that perfection is its tell: genuine probes always carry
  per-trial noise, so a zero distance (or a byte-identical repeat of a
  previous observation) is the replay-guard defense's trigger.
* :func:`perturbed_probe` — drop a seeded fraction of the
  fingerprint's bits and sprinkle extra errors before submitting.
  Dropped bits cost distance (missing promised errors); added bits are
  free under the modified Jaccard metric.  A small drop fraction
  evades the too-perfect floor while staying under the acceptance
  threshold — the spoof that single-modality verification cannot
  catch, and the reason the fleet evaluates fused verification.
"""

from __future__ import annotations

import numpy as np

from repro.bits import BitVector
from repro.core.fingerprint import Fingerprint


def replay_probe(fingerprint: Fingerprint) -> BitVector:
    """The victim's fingerprint replayed verbatim as an observation."""
    return fingerprint.bits.copy()


def perturbed_probe(
    fingerprint: Fingerprint,
    rng: np.random.Generator,
    drop_fraction: float = 0.05,
    add_fraction: float = 0.01,
) -> BitVector:
    """A noise-dressed forgery of the victim's fingerprint.

    ``drop_fraction`` of the fingerprint's set bits are cleared (this
    is what moves the Algorithm 3 distance off zero — each dropped bit
    is a promised error that did not appear) and ``add_fraction`` of
    the region's bits are set as chaff (free under the metric, included
    because a real probe has extra errors too and their absence would
    be another tell).
    """
    if not 0.0 <= drop_fraction <= 1.0:
        raise ValueError("drop_fraction must be in [0, 1]")
    if not 0.0 <= add_fraction <= 1.0:
        raise ValueError("add_fraction must be in [0, 1]")
    probe = fingerprint.bits.copy()
    set_bits = probe.to_indices()
    n_drop = int(round(drop_fraction * set_bits.size))
    if n_drop:
        dropped = rng.choice(set_bits.size, size=n_drop, replace=False)
        for index in set_bits[dropped]:
            probe.set(int(index), False)
    if add_fraction > 0.0:
        chaff = BitVector.random(probe.nbits, rng, density=add_fraction)
        probe = probe | chaff
    return probe
