"""LSH-indexed fingerprint database — Algorithm 2 in sublinear time.

:class:`~repro.core.identify.FingerprintDatabase` answers "which chip
produced this output?" by scanning every stored fingerprint with the
Algorithm 3 distance — fine for the paper's ten chips, quadratic pain
at the §4 nation-state scale of a fingerprint per device.  This module
keeps the database contract (keys, insertion order, first-below-
threshold semantics) but answers queries through the MinHash/LSH
machinery of :mod:`repro.core.minhash`:

1. the query error string's signature selects *candidate* keys whose
   signatures collide in at least ``min_band_matches`` bands;
2. candidates are re-verified **in insertion order** with the exact
   :func:`~repro.core.distance.probable_cause_distance`, and the first
   one below threshold wins — exactly Algorithm 2's decision rule,
   restricted to the candidate set.

Because an error string from a deeper approximation level contains the
fingerprint's bits *plus* extra errors, the index uses many single-row
bands (default 64 bands x 1 row): per-band collision probability is
the raw Jaccard similarity, so recall stays high even when the query
carries several times the fingerprint's error volume, while requiring
two band hits keeps the ~1 %-overlap cross-chip collisions out of the
candidate set.  Candidates are *always* re-verified — LSH is a recall
filter here, never a decision procedure.

Small databases fall back to the plain linear scan (an index over ten
chips costs more than it saves); the crossover is
:attr:`IndexParams.linear_threshold`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bits import BitVector
from repro.core.distance import DEFAULT_THRESHOLD, probable_cause_distance
from repro.core.fingerprint import Fingerprint
from repro.core.identify import FingerprintDatabase, Identification
from repro.core.minhash import LSHIndex, MinHasher, MinHashParams
from repro.service.metrics import ServiceMetrics


@dataclass(frozen=True)
class IndexParams:
    """Tuning knobs for :class:`IndexedFingerprintDatabase`.

    Parameters
    ----------
    bands, rows_per_band:
        LSH signature shape.  Single-row bands make the per-band
        collision probability equal the Jaccard similarity itself,
        which keeps recall robust to mismatched approximation levels
        (a 10 %-error output vs. a 1 %-error fingerprint still shares
        ~10 % Jaccard with it, and 64 such bands essentially always
        collide at least twice).
    min_band_matches:
        Bands a stored fingerprint must share with the query before it
        becomes a candidate; 2 suppresses the accidental cross-chip
        collisions that single-row bands admit.
    linear_threshold:
        Database sizes strictly below this are scanned linearly — the
        index only pays for itself on big stores.
    seed:
        Seed of the salted hash family (fixed so stores built in one
        process answer identically in another).
    """

    bands: int = 64
    rows_per_band: int = 1
    min_band_matches: int = 2
    linear_threshold: int = 64
    seed: int = 0x9E3779B9

    def make_hasher(self) -> MinHasher:
        """MinHash engine with this parameter set."""
        return MinHasher(
            MinHashParams(
                bands=self.bands,
                rows_per_band=self.rows_per_band,
                seed=self.seed,
            )
        )


class IndexedFingerprintDatabase(FingerprintDatabase):
    """Drop-in fingerprint database with LSH-accelerated identification.

    Maintains a :class:`~repro.core.minhash.LSHIndex` over every stored
    fingerprint and overrides the identification hot path; everything
    else (keys, iteration order, serialization through
    :mod:`repro.core.serialize`) behaves exactly like the base class.
    :func:`repro.core.identify.identify_error_string` detects the
    specialised :meth:`identify_error_string` method and routes through
    it automatically, so existing attack code gains the index by merely
    swapping the database instance.

    Fingerprints with no set bits cannot be MinHashed; they are kept in
    a side list and re-verified on every query (they are rare — an
    empty fingerprint promises nothing and never matches anyway).
    """

    def __init__(
        self,
        params: IndexParams = IndexParams(),
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        super().__init__()
        self._params = params
        self._metrics = metrics if metrics is not None else ServiceMetrics()
        self._index = LSHIndex(
            hasher=params.make_hasher(),
            min_band_matches=params.min_band_matches,
        )
        self._order: Dict[str, int] = {}
        self._unindexed: List[str] = []
        self._next_order = 0

    @property
    def params(self) -> IndexParams:
        """Index tuning parameters in use."""
        return self._params

    @property
    def metrics(self) -> ServiceMetrics:
        """Shared instrumentation sink."""
        return self._metrics

    def add(self, key: str, fingerprint: Fingerprint) -> None:
        """Store and index ``fingerprint`` under a fresh ``key``."""
        super().add(key, fingerprint)
        self._order[key] = self._next_order
        self._next_order += 1
        self._index_entry(key, fingerprint)

    def update(self, key: str, fingerprint: Fingerprint) -> None:
        """Replace the fingerprint under ``key`` and refresh the index.

        The new signature is indexed alongside the old one (the LSH
        buckets are append-only); stale buckets still resolve to the
        same key and are harmless because every candidate is
        re-verified against the *current* fingerprint.
        """
        super().update(key, fingerprint)
        self._index_entry(key, fingerprint)

    def remove(self, key: str) -> None:
        """Drop ``key`` from the database and the query path.

        The LSH buckets are append-only, so the key's signature rows
        stay behind as stale entries; :meth:`candidate_keys` filters
        them out, and re-verification only ever touches live keys.
        """
        super().remove(key)
        self._order.pop(key, None)
        if key in self._unindexed:
            self._unindexed.remove(key)

    def _index_entry(self, key: str, fingerprint: Fingerprint) -> None:
        if fingerprint.bits.any():
            self._index.add(fingerprint.bits, key)
        elif key not in self._unindexed:
            self._unindexed.append(key)

    def candidate_keys(self, error_string: BitVector) -> List[str]:
        """Candidate keys for a query, in insertion order.

        The union of LSH collisions and the unindexable (empty)
        fingerprints, sorted by insertion sequence so that verification
        preserves Algorithm 2's first-match semantics.  Stale bucket
        entries for since-removed keys are filtered out here.
        """
        candidates = set(self._index.query(error_string))
        candidates.update(self._unindexed)
        candidates.intersection_update(self._order)
        return sorted(candidates, key=self._order.__getitem__)

    def identify_error_string(
        self,
        error_string: BitVector,
        threshold: float = DEFAULT_THRESHOLD,
    ) -> Identification:
        """Algorithm 2 against this database, LSH-accelerated.

        Returns the first stored fingerprint (in insertion order)
        within ``threshold`` of ``error_string``.  Below
        ``linear_threshold`` entries this is the plain linear scan;
        above it, LSH candidate retrieval plus exact re-verification.
        """
        metrics = self._metrics
        metrics.count("index.queries")
        if not error_string.any():
            metrics.count("index.empty_queries")
            return Identification.failed()
        if len(self) < self._params.linear_threshold:
            metrics.count("index.linear_scans")
            metrics.count("index.pairs_considered", len(self))
            with metrics.time("identify.linear"):
                return self._scan(self.items(), error_string, threshold)
        metrics.count("index.indexed_scans")
        metrics.count("index.pairs_considered", len(self))
        with metrics.time("identify.indexed"):
            with metrics.time("identify.candidates"):
                candidates = self.candidate_keys(error_string)
            metrics.count("index.candidates", len(candidates))
            pairs = ((key, self.get(key)) for key in candidates)
            return self._scan(pairs, error_string, threshold)

    def _scan(self, pairs, error_string: BitVector, threshold: float) -> Identification:
        verified = 0
        try:
            for key, fingerprint in pairs:
                verified += 1
                distance = probable_cause_distance(error_string, fingerprint)
                if distance < threshold:
                    self._metrics.count("index.matches")
                    return Identification(
                        matched=True, key=key, distance=distance
                    )
            self._metrics.count("index.misses")
            return Identification.failed()
        finally:
            self._metrics.count("index.verifications", verified)
