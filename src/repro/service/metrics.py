"""Instrumentation for the identification service.

A matching service serving heavy query traffic is only tunable if it
is observable: how many LSH candidates does the index emit per query,
how many exact distance verifications did they cost, how often did a
shard have to be read from disk, and where does the time go.  This
module provides the two primitives the service layers share:

* :class:`LatencyHistogram` — a log-bucketed latency histogram with
  percentile estimation, cheap enough to sit on the per-query path;
* :class:`ServiceMetrics` — a thread-safe registry of named counters
  and per-stage histograms with a :meth:`ServiceMetrics.stats`
  snapshot, printed by the CLI and embedded in benchmark reports.

Everything here is dependency-free and safe to share across the worker
pool threads of :mod:`repro.service.batch`.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

#: Version stamped into :meth:`ServiceMetrics.stats` snapshots so the
#: exporters (and any report reader) can reject shapes they predate.
STATS_SCHEMA_VERSION = 1

#: Histogram bucket geometry: boundaries grow by 10^(1/5) per bucket
#: (five buckets per decade), spanning 1 microsecond to ~1000 seconds.
_BUCKETS_PER_DECADE = 5
_MIN_LATENCY = 1e-6
_DECADES = 9
_N_BUCKETS = _BUCKETS_PER_DECADE * _DECADES


def _bucket_index(seconds: float) -> int:
    """Histogram bucket for a latency sample (clamped to the range)."""
    if seconds <= _MIN_LATENCY:
        return 0
    index = int(math.log10(seconds / _MIN_LATENCY) * _BUCKETS_PER_DECADE)
    return min(max(index, 0), _N_BUCKETS - 1)


def _bucket_upper_bound(index: int) -> float:
    """Upper latency boundary of bucket ``index`` in seconds."""
    return _MIN_LATENCY * 10.0 ** ((index + 1) / _BUCKETS_PER_DECADE)


class LatencyHistogram:
    """Log-bucketed latency histogram with percentile estimates.

    Samples are recorded in seconds into geometric buckets (five per
    decade from 1 µs up), so memory is constant regardless of sample
    count and percentiles are accurate to ~58 % relative error bounds —
    plenty for the p50/p95 service dashboards this feeds.

    The histogram is itself thread-safe (an internal re-entrant lock
    guards every read and write), so the streaming pipeline's workers
    may record into one instance concurrently — whether they reached it
    through :class:`ServiceMetrics` or hold it directly.
    """

    __slots__ = ("_counts", "_count", "_sum", "_max", "_min", "_lock")

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counts = [0] * _N_BUCKETS
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._min = 0.0

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        """Sum of all recorded latencies in seconds."""
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        """Mean latency in seconds (0.0 when empty)."""
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        """Largest recorded latency in seconds."""
        with self._lock:
            return self._max

    @property
    def min(self) -> float:
        """Smallest recorded latency in seconds (0.0 when empty)."""
        with self._lock:
            return self._min

    def record(self, seconds: float) -> None:
        """Record one latency sample (negative samples clamp to zero)."""
        seconds = max(0.0, float(seconds))
        with self._lock:
            self._counts[_bucket_index(seconds)] += 1
            if self._count == 0 or seconds < self._min:
                self._min = seconds
            self._count += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds

    def percentile(self, q: float) -> float:
        """Latency below which a fraction ``q`` of samples fall.

        ``q`` is a fraction in [0, 1], e.g. 0.95 for p95.  Estimates
        come from the bucket containing the requested rank, clamped
        into ``[min, max]`` of the recorded samples so the edges are
        exact: an empty histogram answers 0.0 for every ``q``, ``q=0``
        answers the smallest sample, ``q=1`` the largest, and a
        single-sample histogram answers that sample at every ``q``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile fraction must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            if q <= 0.0:
                return self._min
            rank = q * self._count
            seen = 0
            for index, bucket_count in enumerate(self._counts):
                seen += bucket_count
                if seen >= rank and bucket_count:
                    estimate = _bucket_upper_bound(index)
                    return min(max(estimate, self._min), self._max)
            return self._max

    def snapshot(self) -> Dict[str, object]:
        """Summary dict: count, mean/min/max, percentiles, and buckets.

        ``buckets`` carries explicit upper bounds as cumulative
        ``{"le": seconds, "count": n}`` pairs (Prometheus ``le``
        semantics), truncated after the last non-empty bucket, so an
        exposition writer can emit the histogram without re-deriving
        the bucket geometry from this module's constants.
        """
        with self._lock:
            last_occupied = -1
            for index, bucket_count in enumerate(self._counts):
                if bucket_count:
                    last_occupied = index
            buckets = []
            cumulative = 0
            for index in range(last_occupied + 1):
                cumulative += self._counts[index]
                buckets.append(
                    {
                        "le": _bucket_upper_bound(index),
                        "count": cumulative,
                    }
                )
            return {
                "count": float(self._count),
                "mean_s": self.mean,
                "min_s": self._min,
                "max_s": self._max,
                "p50_s": self.percentile(0.50),
                "p95_s": self.percentile(0.95),
                "p99_s": self.percentile(0.99),
                "buckets": buckets,
            }


class ServiceMetrics:
    """Thread-safe named counters plus per-stage latency histograms.

    The service layers share one instance: the index counts candidates
    and verifications, the store counts shard loads and cache hits, the
    batch engine times its stages.  :meth:`stats` produces a plain-dict
    snapshot for JSON reports and the CLI.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """Snapshot of every counter whose name starts with ``prefix``.

        The reliability surface groups its counters under
        ``reliability.``, ``store.recovery`` and ``batch.shard`` /
        ``batch.degraded`` prefixes; the CLI uses this to print one
        coherent health block without knowing each name.  Keys are
        sorted, so iteration order is deterministic.
        """
        with self._lock:
            return {
                name: self._counters[name]
                for name in sorted(self._counters)
                if name.startswith(prefix)
            }

    def observe(self, stage: str, seconds: float) -> None:
        """Record one latency sample for ``stage``."""
        with self._lock:
            histogram = self._histograms.get(stage)
            if histogram is None:
                histogram = self._histograms[stage] = LatencyHistogram()
            histogram.record(seconds)

    @contextmanager
    def time(self, stage: str) -> Iterator[None]:
        """Context manager timing its body into stage ``stage``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(stage, time.perf_counter() - started)

    def histogram(self, stage: str) -> Optional[LatencyHistogram]:
        """The histogram for ``stage``, or None if never observed."""
        with self._lock:
            return self._histograms.get(stage)

    def candidate_reduction(self) -> Optional[float]:
        """Fraction of the database the LSH filter let the service skip.

        ``1 - verifications / (queries * database_size)`` over indexed
        queries; None until the index has answered at least one query
        against a known database size.
        """
        with self._lock:
            scanned = self._counters.get("index.pairs_considered", 0)
            verified = self._counters.get("index.verifications", 0)
        if scanned <= 0:
            return None
        return 1.0 - verified / scanned

    def reset(self) -> None:
        """Drop all counters and histograms."""
        with self._lock:
            self._counters.clear()
            self._histograms.clear()

    def stats(self) -> Dict[str, object]:
        """Plain-dict snapshot of every counter and stage histogram.

        Counter and stage keys are sorted, so two snapshots of the same
        state serialize identically; ``schema_version`` lets report
        readers and the metrics exporters reject shapes they predate.
        """
        with self._lock:
            counters = {
                name: self._counters[name] for name in sorted(self._counters)
            }
            stages = {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            }
        snapshot: Dict[str, object] = {
            "schema_version": STATS_SCHEMA_VERSION,
            "counters": counters,
            "stages": stages,
        }
        reduction = self.candidate_reduction()
        if reduction is not None:
            snapshot["candidate_reduction"] = reduction
        return snapshot

    def format_stats(self) -> str:
        """Human-readable rendering of :meth:`stats` for the CLI."""
        lines = []
        stats = self.stats()
        counters: Dict[str, int] = stats["counters"]  # type: ignore[assignment]
        for name in sorted(counters):
            lines.append(f"{name}: {counters[name]}")
        stages: Dict[str, Dict[str, float]] = stats["stages"]  # type: ignore[assignment]
        for name in sorted(stages):
            summary = stages[name]
            lines.append(
                f"{name}: n={int(summary['count'])}"
                f" p50={summary['p50_s'] * 1e3:.3f}ms"
                f" p95={summary['p95_s'] * 1e3:.3f}ms"
                f" max={summary['max_s'] * 1e3:.3f}ms"
            )
        reduction = stats.get("candidate_reduction")
        if isinstance(reduction, float):
            lines.append(f"candidate_reduction: {reduction:.4f}")
        return "\n".join(lines)
