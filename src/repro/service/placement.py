"""Consistent-hash placement of fingerprint partitions onto workers.

The cluster (`repro.service.cluster`) splits the key space into a
fixed number of *partitions*; each partition is assigned an ordered
list of R distinct *workers* (primary first), and every worker holds a
full replica store of every partition assigned to it.  Two properties
make the scheme operable at fleet scale:

* **stable hashing** — a key's partition is a pure function of the key
  (SHA-256 based, never Python's per-process-randomized ``hash()``),
  so any front-end can route without coordination;
* **consistent placement** — workers are placed on a token ring
  (``tokens_per_worker`` virtual nodes each) and a partition's replica
  list is the first R distinct workers found walking the ring from the
  partition's point.  Removing a worker only changes the replica lists
  that contained it; every other partition keeps byte-identical
  assignments, which keeps rebalancing traffic proportional to the
  lost capacity instead of the fleet size.

Placement changes are durable state: :class:`PlacementStore` commits a
new :class:`PlacementMap` through the same write-ahead protocol as
ingest and compaction (journal durable first, then tmp-write + fsync +
atomic rename + directory fsync, then journal retired), through the
:class:`~repro.reliability.faults.StorageIO` seam so chaos tests can
enumerate a crash at every single IO operation.  :meth:`PlacementStore.recover`
is idempotent: a readable journal rolls the commit *forward* to the
exact post-commit bytes, a torn journal rolls *back* to the exact
pre-commit bytes — never a hybrid.
"""

from __future__ import annotations

import bisect
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.reliability.faults import StorageIO

#: Current placement payload schema.
PLACEMENT_SCHEMA_VERSION = 1

#: File names inside a cluster root directory.
PLACEMENT_NAME = "placement.json"
PLACEMENT_TMP_NAME = "placement.json.tmp"
PLACEMENT_JOURNAL_NAME = "placement-journal.json"

#: Virtual nodes per worker on the token ring; enough to smooth the
#: per-worker partition counts without making ring walks expensive.
DEFAULT_TOKENS_PER_WORKER = 64

_RING_BITS = 64
_RING_SIZE = 1 << _RING_BITS


class PlacementError(ValueError):
    """An invalid placement map or an impossible placement request."""


def stable_key_hash(key: str) -> int:
    """A 64-bit stable hash of ``key``.

    SHA-256 truncated to 64 bits: identical across processes, Python
    versions and ``PYTHONHASHSEED`` values — routing must never depend
    on interpreter-randomized ``hash()``.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _ring_point(label: str) -> int:
    """Position of ``label`` on the token ring."""
    return stable_key_hash(label) % _RING_SIZE


@dataclass(frozen=True)
class PlacementMap:
    """An immutable assignment of partitions to replica worker lists.

    ``assignments[p]`` is the ordered replica list for partition ``p``
    (primary first); every list holds ``replication`` distinct worker
    ids drawn from ``workers``.
    """

    version: int
    n_partitions: int
    replication: int
    workers: Tuple[str, ...]
    assignments: Tuple[Tuple[str, ...], ...]
    tokens_per_worker: int = DEFAULT_TOKENS_PER_WORKER

    def __post_init__(self) -> None:
        if self.n_partitions < 1:
            raise PlacementError(
                f"n_partitions must be >= 1, got {self.n_partitions}"
            )
        if self.replication < 1:
            raise PlacementError(
                f"replication must be >= 1, got {self.replication}"
            )
        if len(set(self.workers)) != len(self.workers):
            raise PlacementError("worker ids must be unique")
        if self.replication > len(self.workers):
            raise PlacementError(
                f"replication {self.replication} exceeds "
                f"{len(self.workers)} worker(s)"
            )
        if len(self.assignments) != self.n_partitions:
            raise PlacementError(
                f"expected {self.n_partitions} assignments, "
                f"got {len(self.assignments)}"
            )
        known = set(self.workers)
        for partition, replicas in enumerate(self.assignments):
            if len(replicas) != self.replication:
                raise PlacementError(
                    f"partition {partition} has {len(replicas)} replica(s), "
                    f"expected {self.replication}"
                )
            if len(set(replicas)) != len(replicas):
                raise PlacementError(
                    f"partition {partition} repeats a worker: {replicas}"
                )
            unknown = set(replicas) - known
            if unknown:
                raise PlacementError(
                    f"partition {partition} names unknown worker(s) "
                    f"{sorted(unknown)}"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        workers: Sequence[str],
        n_partitions: int,
        replication: int,
        version: int = 1,
        tokens_per_worker: int = DEFAULT_TOKENS_PER_WORKER,
    ) -> "PlacementMap":
        """Place ``n_partitions`` onto ``workers`` via the token ring."""
        workers = tuple(workers)
        if not workers:
            raise PlacementError("at least one worker is required")
        if replication > len(workers):
            raise PlacementError(
                f"replication {replication} exceeds {len(workers)} worker(s)"
            )
        ring: List[Tuple[int, str]] = sorted(
            (_ring_point(f"{worker}#{token}"), worker)
            for worker in workers
            for token in range(tokens_per_worker)
        )
        points = [point for point, _ in ring]
        assignments: List[Tuple[str, ...]] = []
        for partition in range(n_partitions):
            start = bisect.bisect_left(points, _ring_point(f"partition-{partition}"))
            replicas: List[str] = []
            for step in range(len(ring)):
                worker = ring[(start + step) % len(ring)][1]
                if worker not in replicas:
                    replicas.append(worker)
                    if len(replicas) == replication:
                        break
            assignments.append(tuple(replicas))
        return cls(
            version=version,
            n_partitions=n_partitions,
            replication=replication,
            workers=workers,
            assignments=tuple(assignments),
            tokens_per_worker=tokens_per_worker,
        )

    def rebalanced(
        self,
        remove: Iterable[str] = (),
        add: Iterable[str] = (),
    ) -> "PlacementMap":
        """A new placement (version + 1) without ``remove``, with ``add``.

        Rebuilds the ring over the surviving worker set; the
        consistent-hash property guarantees partitions whose replica
        list did not involve a removed/added worker keep identical
        assignments.
        """
        removed = set(remove)
        unknown = removed - set(self.workers)
        if unknown:
            raise PlacementError(f"cannot remove unknown worker(s) {sorted(unknown)}")
        survivors = [w for w in self.workers if w not in removed]
        for worker in add:
            if worker in survivors:
                raise PlacementError(f"worker {worker!r} already placed")
            survivors.append(worker)
        return PlacementMap.build(
            survivors,
            n_partitions=self.n_partitions,
            replication=self.replication,
            version=self.version + 1,
            tokens_per_worker=self.tokens_per_worker,
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def partition_for_key(self, key: str) -> int:
        """The partition owning fingerprint ``key``."""
        return stable_key_hash(key) % self.n_partitions

    def replicas(self, partition: int) -> Tuple[str, ...]:
        """Ordered replica workers (primary first) for ``partition``."""
        return self.assignments[partition]

    def partitions_of(self, worker: str) -> List[int]:
        """Partitions that keep a replica on ``worker``."""
        return [
            partition
            for partition, replicas in enumerate(self.assignments)
            if worker in replicas
        ]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON-friendly dict (canonical field order via sort_keys)."""
        return {
            "schema_version": PLACEMENT_SCHEMA_VERSION,
            "version": self.version,
            "n_partitions": self.n_partitions,
            "replication": self.replication,
            "tokens_per_worker": self.tokens_per_worker,
            "workers": list(self.workers),
            "assignments": [list(replicas) for replicas in self.assignments],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "PlacementMap":
        """Inverse of :meth:`to_payload` (validates via __post_init__)."""
        schema = payload.get("schema_version")
        if schema != PLACEMENT_SCHEMA_VERSION:
            raise PlacementError(
                f"unsupported placement schema_version {schema!r}"
            )
        return cls(
            version=int(payload["version"]),  # type: ignore[arg-type]
            n_partitions=int(payload["n_partitions"]),  # type: ignore[arg-type]
            replication=int(payload["replication"]),  # type: ignore[arg-type]
            tokens_per_worker=int(
                payload.get("tokens_per_worker", DEFAULT_TOKENS_PER_WORKER)
            ),  # type: ignore[arg-type]
            workers=tuple(payload["workers"]),  # type: ignore[arg-type]
            assignments=tuple(
                tuple(replicas)
                for replicas in payload["assignments"]  # type: ignore[union-attr]
            ),
        )


def canonical_json_bytes(payload: Dict[str, object]) -> bytes:
    """Deterministic JSON encoding shared by commit and recovery.

    Roll-forward must reproduce the commit's *exact* bytes, so both
    paths serialize through this one function (sorted keys, fixed
    separators, trailing newline).
    """
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


class PlacementStore:
    """Durable, journaled storage of the cluster's placement map.

    Commit protocol (every step one :class:`StorageIO` operation, so a
    fault plan can crash between — or during — any two of them):

    1. write ``placement-journal.json`` holding the full new payload,
       fsynced — the write-ahead intent;
    2. fsync the cluster root directory (journal durably named);
    3. write ``placement.json.tmp`` with the same payload, fsynced;
    4. atomically rename tmp over ``placement.json``;
    5. fsync the root directory (rename durable);
    6. remove the journal (commit retired);
    7. fsync the root directory.

    A crash before step 2 completes leaves either no journal or a torn
    one → :meth:`recover` rolls back (pre-commit bytes preserved).  A
    crash at/after step 2 leaves a readable journal → :meth:`recover`
    replays steps 3-7 from the journal payload, producing the exact
    post-commit bytes.  Recovery is idempotent: with no journal it
    touches nothing.
    """

    def __init__(
        self,
        root: Path,
        storage_io: Optional[StorageIO] = None,
    ) -> None:
        self._root = Path(root)
        self._io = storage_io if storage_io is not None else StorageIO()

    @property
    def root(self) -> Path:
        """The cluster root directory this store lives in."""
        return self._root

    @property
    def placement_path(self) -> Path:
        """Path of the committed placement map."""
        return self._root / PLACEMENT_NAME

    @property
    def journal_path(self) -> Path:
        """Path of the write-ahead placement journal."""
        return self._root / PLACEMENT_JOURNAL_NAME

    def exists(self) -> bool:
        """Whether a committed placement map is on disk."""
        return self.placement_path.exists()

    def journal_pending(self) -> bool:
        """Whether an unretired commit journal is on disk."""
        return self.journal_path.exists()

    def load(self) -> PlacementMap:
        """Read and validate the committed placement map."""
        raw = self._io.read_bytes(self.placement_path)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise PlacementError(
                f"placement map at {self.placement_path} is unreadable: {error}"
            ) from error
        return PlacementMap.from_payload(payload)

    def initialize(self, placement: PlacementMap) -> None:
        """First commit of a brand-new cluster (same journaled path)."""
        self.commit(placement)

    def commit(self, placement: PlacementMap) -> None:
        """Durably replace the placement map with ``placement``."""
        payload = placement.to_payload()
        data = canonical_json_bytes(payload)
        journal = canonical_json_bytes(
            {
                "schema_version": PLACEMENT_SCHEMA_VERSION,
                "kind": "placement-commit",
                "version": placement.version,
                "placement": payload,
            }
        )
        self._io.write_bytes(self.journal_path, journal, sync=True)
        self._io.fsync_dir(self._root)
        self._publish(data)
        self._retire_journal()

    def _publish(self, data: bytes) -> None:
        """Steps 3-5: tmp write, atomic rename, directory fsync."""
        tmp = self._root / PLACEMENT_TMP_NAME
        self._io.write_bytes(tmp, data, sync=True)
        self._io.replace(tmp, self.placement_path)
        self._io.fsync_dir(self._root)

    def _retire_journal(self) -> None:
        """Steps 6-7: drop the journal and sync the directory."""
        self._io.remove(self.journal_path)
        self._io.fsync_dir(self._root)

    def recover(self) -> str:
        """Resolve an interrupted commit; returns the action taken.

        ``"clean"`` — no journal, nothing to do (stray tmp swept);
        ``"rolled_forward"`` — readable journal replayed to the exact
        post-commit bytes; ``"rolled_back"`` — torn journal discarded,
        pre-commit bytes untouched.  Idempotent: a second call after
        any outcome returns ``"clean"`` and changes no bytes.
        """
        tmp = self._root / PLACEMENT_TMP_NAME
        if not self.journal_path.exists():
            if tmp.exists():
                self._io.remove(tmp)
                self._io.fsync_dir(self._root)
            return "clean"
        payload: Optional[Dict[str, object]] = None
        try:
            raw = self._io.read_bytes(self.journal_path)
            decoded = json.loads(raw.decode("utf-8"))
            if (
                isinstance(decoded, dict)
                and decoded.get("kind") == "placement-commit"
                and isinstance(decoded.get("placement"), dict)
            ):
                # Validate before replaying: a journal that parses but
                # does not describe a placement must roll back.
                PlacementMap.from_payload(decoded["placement"])
                payload = decoded["placement"]
        except (UnicodeDecodeError, json.JSONDecodeError, PlacementError,
                KeyError, TypeError, ValueError):
            payload = None
        if payload is None:
            # Torn or foreign journal: the intent never became durable
            # as a fact, so the commit never happened.  Pre-commit
            # bytes stay exactly as they were.
            if tmp.exists():
                self._io.remove(tmp)
            self._retire_journal()
            return "rolled_back"
        self._publish(canonical_json_bytes(payload))
        self._retire_journal()
        return "rolled_forward"
