"""Worker-process RPC for the clustered identification service.

One cluster worker is one OS *process* owning a set of partition
replica stores (each an ordinary crash-safe
:class:`~repro.service.store.ShardedFingerprintStore` with a single
shard).  The parent talks to it over a ``multiprocessing`` pipe with a
tiny dict protocol — ``ping`` / ``identify`` / ``stats`` /
``shutdown`` — and, because the whole point of process isolation is
surviving ungraceful death, the parent-side :class:`WorkerHandle` also
knows how to SIGKILL its worker (the chaos benchmark's weapon) and how
to translate a broken pipe into :class:`WorkerDied` instead of a
stack trace.

Requests carry monotonically increasing request ids; a reply whose id
does not match the outstanding request is discarded as a straggler
from a timed-out earlier call, so one slow reply can never desync the
request/response pairing.

Global sequence numbers (Algorithm 2's first-enrolled-wins priority)
do not survive partitioning on their own — each partition store
assigns local sequences — so every partition directory carries a
``sequence-map.json`` sidecar mapping key → *global* enrollment
sequence, written durably at build/rebalance time and reported back
with every match so the driver can merge partitions exactly like the
batch engine merges shards.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.connection
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bits import BitVector
from repro.reliability.faults import StorageIO
from repro.service.store import ShardedFingerprintStore

#: Sidecar file in every partition directory: key → global sequence.
SEQUENCE_MAP_NAME = "sequence-map.json"
_SEQUENCE_MAP_TMP = "sequence-map.json.tmp"

#: Subdirectory of the cluster root holding per-worker state.
WORKERS_DIR_NAME = "workers"


class WorkerError(RuntimeError):
    """Base class for worker RPC failures."""


class WorkerDied(WorkerError):
    """The worker process vanished (killed, crashed, or hung up)."""


class WorkerTimeout(WorkerError):
    """The worker did not answer within the request deadline."""


def worker_dir(root: Path, worker_id: str) -> Path:
    """Directory holding every partition replica of ``worker_id``."""
    return Path(root) / WORKERS_DIR_NAME / worker_id


def partition_dir(root: Path, worker_id: str, partition: int) -> Path:
    """Directory of one partition replica store on one worker."""
    return worker_dir(root, worker_id) / f"part-{partition:03d}"


def write_sequence_map(
    directory: Path,
    sequences: Dict[str, int],
    storage_io: Optional[StorageIO] = None,
) -> None:
    """Durably write the key → global-sequence sidecar (tmp + rename)."""
    io = storage_io if storage_io is not None else StorageIO()
    payload = {
        "schema_version": 1,
        "sequences": {key: int(seq) for key, seq in sorted(sequences.items())},
    }
    data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    tmp = Path(directory) / _SEQUENCE_MAP_TMP
    io.write_bytes(tmp, data, sync=True)
    io.replace(tmp, Path(directory) / SEQUENCE_MAP_NAME)
    io.fsync_dir(directory)


def read_sequence_map(
    directory: Path, storage_io: Optional[StorageIO] = None
) -> Dict[str, int]:
    """Read the sidecar written by :func:`write_sequence_map`."""
    io = storage_io if storage_io is not None else StorageIO()
    raw = io.read_bytes(Path(directory) / SEQUENCE_MAP_NAME)
    payload = json.loads(raw.decode("utf-8"))
    return {
        str(key): int(seq) for key, seq in payload["sequences"].items()
    }


def encode_query(query_id: str, error_string: BitVector) -> Dict[str, object]:
    """Wire form of one identification query (sparse index list)."""
    return {
        "qid": query_id,
        "nbits": error_string.nbits,
        "errors": [int(index) for index in error_string.to_indices()],
    }


def decode_query(payload: Dict[str, object]) -> Tuple[str, BitVector]:
    """Inverse of :func:`encode_query`."""
    return (
        str(payload["qid"]),
        BitVector.from_indices(
            int(payload["nbits"]),  # type: ignore[arg-type]
            payload["errors"],  # type: ignore[arg-type]
        ),
    )


# ----------------------------------------------------------------------
# Child-process side
# ----------------------------------------------------------------------


class _PartitionReplica:
    """One opened partition store plus its global-sequence sidecar."""

    def __init__(self, directory: Path) -> None:
        store = ShardedFingerprintStore(directory, n_shards=1)
        self.loaded = store.load_shard(0)
        self.global_sequences = read_sequence_map(directory)

    def best_match(
        self, error_string: BitVector, threshold: float
    ) -> Optional[Tuple[int, str, float]]:
        """Earliest (global sequence) match in this partition, if any."""
        identification = self.loaded.database.identify_error_string(
            error_string, threshold
        )
        if not identification.matched:
            return None
        assert identification.key is not None
        sequence = self.global_sequences[identification.key]
        distance = identification.distance
        return (sequence, identification.key, float(distance))


def worker_main(
    worker_id: str,
    root: str,
    partitions: Sequence[int],
    threshold: float,
    conn: multiprocessing.connection.Connection,
) -> None:
    """Child-process entry point: serve requests until shutdown/EOF.

    Opens each assigned partition replica lazily (first touch) so a
    worker whose cold partitions are never queried pays nothing for
    them, and keeps them cached for the life of the process.
    """
    root_path = Path(root)
    assigned = set(int(partition) for partition in partitions)
    replicas: Dict[int, _PartitionReplica] = {}
    served = 0

    def replica(partition: int) -> _PartitionReplica:
        if partition not in replicas:
            replicas[partition] = _PartitionReplica(
                partition_dir(root_path, worker_id, partition)
            )
        return replicas[partition]

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        rid = message.get("rid")
        op = message.get("op")
        if op == "shutdown":
            conn.send({"rid": rid, "ok": True, "worker": worker_id})
            break
        try:
            if op == "ping":
                reply: Dict[str, object] = {
                    "ok": True,
                    "worker": worker_id,
                    "pid": os.getpid(),
                    "served": served,
                }
            elif op == "stats":
                reply = {
                    "ok": True,
                    "worker": worker_id,
                    "pid": os.getpid(),
                    "served": served,
                    "partitions_open": sorted(replicas),
                    "partitions_assigned": sorted(assigned),
                }
            elif op == "identify":
                wanted = [int(p) for p in message.get("partitions", sorted(assigned))]
                unknown = [p for p in wanted if p not in assigned]
                if unknown:
                    raise WorkerError(
                        f"worker {worker_id} does not hold partition(s) {unknown}"
                    )
                queries = [decode_query(q) for q in message["queries"]]
                threshold_override = float(message.get("threshold", threshold))
                answers: List[Optional[List[object]]] = [None] * len(queries)
                for partition in wanted:
                    part = replica(partition)
                    for position, (_qid, error_string) in enumerate(queries):
                        match = part.best_match(error_string, threshold_override)
                        if match is None:
                            continue
                        current = answers[position]
                        if current is None or match[0] < current[0]:  # type: ignore[index]
                            answers[position] = [match[0], match[1], match[2]]
                served += len(queries)
                reply = {"ok": True, "worker": worker_id, "answers": answers}
            else:
                raise WorkerError(f"unknown op {op!r}")
        except Exception as error:  # noqa: BLE001 - reported to the parent
            reply = {
                "ok": False,
                "worker": worker_id,
                "error_type": type(error).__name__,
                "error": str(error),
            }
        reply["rid"] = rid
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break


# ----------------------------------------------------------------------
# Parent-process side
# ----------------------------------------------------------------------


class WorkerHandle:
    """Parent-side proxy for one worker process.

    Thread-safe: one internal lock serializes pipe use, so the health
    monitor's pings and the driver's identify calls interleave
    cleanly.  All request methods raise :class:`WorkerDied` when the
    process is gone and :class:`WorkerTimeout` on a missed deadline
    (the worker stays alive; its late reply will be discarded by
    request-id matching).
    """

    def __init__(
        self,
        worker_id: str,
        root: Path,
        partitions: Sequence[int],
        threshold: float,
        start_method: str = "fork",
    ) -> None:
        self.worker_id = worker_id
        self.partitions = tuple(int(p) for p in partitions)
        ctx = multiprocessing.get_context(start_method)
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self._conn = parent_conn
        self._process = ctx.Process(
            target=worker_main,
            args=(worker_id, str(root), self.partitions, threshold, child_conn),
            name=f"repro-cluster-{worker_id}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._lock = threading.Lock()
        self._next_rid = 1

    @property
    def pid(self) -> Optional[int]:
        """OS pid of the worker process."""
        return self._process.pid

    def alive(self) -> bool:
        """Whether the worker process is still running."""
        return self._process.is_alive()

    def request(
        self,
        op: str,
        payload: Optional[Dict[str, object]] = None,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, object]:
        """Send one request and wait for its matching reply."""
        message: Dict[str, object] = dict(payload or {})
        message["op"] = op
        with self._lock:
            rid = self._next_rid
            self._next_rid += 1
            message["rid"] = rid
            try:
                self._conn.send(message)
            except (BrokenPipeError, OSError) as error:
                raise WorkerDied(
                    f"worker {self.worker_id} pipe closed: {error}"
                ) from error
            while True:
                try:
                    if not self._conn.poll(timeout_s):
                        raise WorkerTimeout(
                            f"worker {self.worker_id} missed the "
                            f"{timeout_s}s deadline for {op!r}"
                        )
                    # The lock IS the request/response serializer: the
                    # pipe carries one exchange at a time, so the recv
                    # must happen inside the critical section.
                    reply = self._conn.recv()  # repro-lint: disable=REP010 -- per-handle lock deliberately serializes pipe round-trips
                except WorkerTimeout:
                    raise
                except (EOFError, OSError) as error:
                    raise WorkerDied(
                        f"worker {self.worker_id} died during {op!r}: {error}"
                    ) from error
                if reply.get("rid") == rid:
                    break
                # A straggler reply from a timed-out earlier request:
                # drop it and keep waiting for ours.
        if not reply.get("ok", False):
            raise WorkerError(
                f"worker {self.worker_id} failed {op!r}: "
                f"{reply.get('error_type')}: {reply.get('error')}"
            )
        return reply

    def ping(self, timeout_s: Optional[float] = None) -> Dict[str, object]:
        """Liveness probe."""
        return self.request("ping", timeout_s=timeout_s)

    def stats(self, timeout_s: Optional[float] = None) -> Dict[str, object]:
        """Worker-side counters and open partitions."""
        return self.request("stats", timeout_s=timeout_s)

    def identify(
        self,
        queries: Sequence[Dict[str, object]],
        partitions: Sequence[int],
        threshold: Optional[float] = None,
        timeout_s: Optional[float] = None,
    ) -> List[Optional[Tuple[int, str, float]]]:
        """Best (global-sequence, key, distance) per query, or None."""
        payload: Dict[str, object] = {
            "queries": list(queries),
            "partitions": [int(p) for p in partitions],
        }
        if threshold is not None:
            payload["threshold"] = threshold
        reply = self.request("identify", payload, timeout_s=timeout_s)
        answers: List[Optional[Tuple[int, str, float]]] = []
        for answer in reply["answers"]:  # type: ignore[union-attr]
            if answer is None:
                answers.append(None)
            else:
                answers.append((int(answer[0]), str(answer[1]), float(answer[2])))
        return answers

    def kill(self) -> None:
        """SIGKILL the worker process (the chaos path: no goodbyes)."""
        self._process.kill()

    def shutdown(self, timeout_s: float = 5.0) -> None:
        """Graceful stop: ask politely, then escalate to SIGKILL."""
        try:
            self.request("shutdown", timeout_s=timeout_s)
        except WorkerError:
            pass
        self._process.join(timeout=timeout_s)
        if self._process.is_alive():
            self._process.kill()
            self._process.join(timeout=timeout_s)
        self.close()

    def close(self) -> None:
        """Release the parent end of the pipe."""
        try:
            self._conn.close()
        except OSError:
            pass
