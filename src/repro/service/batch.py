"""Batch identification engine — many Algorithm-2 queries at once.

The serving workload is not one query at a time: the eavesdropping
attacker scrapes outputs by the thousand and the supply-chain attacker
replays whole interception logs.  This engine takes a batch of queries
— raw ``(approx, exact)`` pairs or prebuilt error strings — and runs
the full paper loop over them:

1. error strings are computed **vectorized** (one stacked-XOR numpy
   pass via :func:`repro.core.errors.mark_errors_batch`) for all pair
   queries;
2. every store shard loads and scans the whole batch in a
   :class:`concurrent.futures.ThreadPoolExecutor` worker pool, each
   producing its earliest below-threshold match per query;
3. per-query shard answers are merged by **global sequence number**,
   reproducing exactly the first-match decision a linear scan over one
   flat database in ingest order would make;
4. unmatched residuals are routed, in arrival order, to an
   Algorithm 4 :class:`~repro.core.cluster.OnlineClusterer` — the
   eavesdropper's "open a new suspect" step — and reported with their
   suspect ids.

The shard fan-out **degrades instead of failing**: a shard whose
segments will not load (corruption, transient IO errors) is retried
with exponential backoff, bounded by an optional per-shard timeout,
and on persistent failure the batch still answers from every healthy
shard — results are tagged ``degraded`` and the report names the
unreadable shards with the key ranges they own, so a caller knows
exactly which fingerprints could not have been consulted.  Shards the
manifest already marks as quarantined/salvaged are reported the same
way.

Every stage is timed into the shared
:class:`~repro.service.metrics.ServiceMetrics`; retries, shard
failures, timeouts and degraded queries are counted there too.  When a
tracer is installed (``--obs-dir``, benchmarks) the same stages emit
:mod:`repro.obs.trace` spans; each shard-scan worker runs under a copy
of the submitting context, so its ``batch.shard_scan`` spans nest
under the batch that spawned them.
"""

from __future__ import annotations

import concurrent.futures
import contextvars
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.bits import BitVector
from repro.core.cluster import OnlineClusterer
from repro.core.distance import DEFAULT_THRESHOLD, probable_cause_distance
from repro.core.errors import mark_errors_batch
from repro.core.identify import Identification
from repro.obs.trace import span as obs_span
from repro.reliability.breaker import BreakerBoard
from repro.service.indexed import IndexedFingerprintDatabase
from repro.service.metrics import ServiceMetrics
from repro.service.store import LoadedShard, ShardedFingerprintStore

#: Version stamped into every serialized report and checkpoint payload
#: (:meth:`BatchReport.to_json`, :meth:`DegradedShard.to_json`, the
#: streaming results/checkpoint files).  Bump on breaking layout
#: changes; readers reject versions they do not understand instead of
#: misparsing them.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BatchQuery:
    """One identification request.

    Either carries a prebuilt ``error_string`` (the caller already ran
    :func:`~repro.core.errors.mark_errors`, e.g. inside an attack
    pipeline) or an ``(approx, exact)`` pair for the engine to mark
    vectorized.  ``query_id`` is echoed into the result.
    """

    query_id: str
    error_string: Optional[BitVector] = None
    approx: Optional[BitVector] = None
    exact: Optional[BitVector] = None

    def __post_init__(self) -> None:
        has_errors = self.error_string is not None
        has_pair = self.approx is not None and self.exact is not None
        if has_errors == has_pair:
            raise ValueError(
                "provide either error_string or both approx and exact"
            )

    @classmethod
    def from_errors(cls, query_id: str, error_string: BitVector) -> "BatchQuery":
        """Query from an already-extracted error string."""
        return cls(query_id=query_id, error_string=error_string)

    @classmethod
    def from_pair(
        cls, query_id: str, approx: BitVector, exact: BitVector
    ) -> "BatchQuery":
        """Query from an approximate output and its exact value."""
        return cls(query_id=query_id, approx=approx, exact=exact)


@dataclass(frozen=True)
class DegradedShard:
    """One shard the batch could not (fully) consult.

    ``key_range`` is the ``(low_exclusive, high_inclusive)`` slice of
    key space the shard owns (``None`` = open end): any stored
    fingerprint whose key falls in it may have been skipped, so a
    no-match answer for such a key is advisory, not authoritative.
    ``attempts`` counts how many times the shard was actually tried
    (0 when a circuit breaker skipped it without touching disk); a
    shard failing repeatedly across retries or stream micro-batches is
    reported once with its attempts summed, not once per failure.
    """

    shard: int
    key_range: Tuple[Optional[str], Optional[str]]
    reason: str
    attempts: int = 1

    def to_json(self) -> Dict[str, object]:
        """JSON rendering for reports and checkpoints."""
        return {
            "schema_version": SCHEMA_VERSION,
            "shard": self.shard,
            "key_range": list(self.key_range),
            "reason": self.reason,
            "attempts": self.attempts,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "DegradedShard":
        """Inverse of :meth:`to_json`; rejects unknown schema versions."""
        version = payload.get("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported DegradedShard schema_version {version!r}"
            )
        low, high = payload["key_range"]
        return cls(
            shard=int(payload["shard"]),
            key_range=(
                None if low is None else str(low),
                None if high is None else str(high),
            ),
            reason=str(payload["reason"]),
            attempts=int(payload.get("attempts", 1)),
        )

    def merged_with(self, other: "DegradedShard") -> "DegradedShard":
        """Combine two entries for the same shard into one.

        Attempts add up; a repeated reason is kept once, distinct
        reasons are joined so no information is dropped.
        """
        if other.shard != self.shard:
            raise ValueError(
                f"cannot merge shard {other.shard} into shard {self.shard}"
            )
        if other.reason == self.reason:
            reason = self.reason
        else:
            reason = f"{self.reason}; {other.reason}"
        return DegradedShard(
            shard=self.shard,
            key_range=self.key_range,
            reason=reason,
            attempts=self.attempts + other.attempts,
        )


def merge_degraded(entries: Sequence[DegradedShard]) -> List[DegradedShard]:
    """Deduplicate degraded-shard entries by shard id.

    Used wherever degradation accumulates across attempts — within one
    batch (a shard both quarantined and timing out) and across stream
    micro-batches (the same shard failing every batch): one entry per
    shard, attempts summed, ordered by shard id.
    """
    merged: Dict[int, DegradedShard] = {}
    for entry in entries:
        existing = merged.get(entry.shard)
        merged[entry.shard] = (
            entry if existing is None else existing.merged_with(entry)
        )
    return [merged[shard] for shard in sorted(merged)]


def merge_first_match(
    per_source: Sequence[Sequence[Optional[Tuple[int, Identification]]]],
    n_queries: int,
) -> List[Identification]:
    """Merge per-source answers into one decision per query.

    Each source (a shard scan here, a partition-group reply in the
    cluster driver) answers every query with either None or a
    ``(global_sequence, identification)`` pair; the winner is the
    match with the smallest global sequence — Algorithm 2's
    first-enrolled-wins priority, preserved across any partitioning of
    the key space.  Sources may legitimately overlap (replica fan-out,
    hedged requests): duplicates carry the same sequence, so the merge
    is idempotent by construction.
    """
    merged: List[Identification] = []
    for position in range(n_queries):
        best: Optional[Tuple[int, Identification]] = None
        for answers in per_source:
            answer = answers[position]
            if answer is None:
                continue
            if best is None or answer[0] < best[0]:
                best = answer
        merged.append(best[1] if best is not None else Identification.failed())
    return merged


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one batch query.

    ``identification`` is the Algorithm 2 decision; when it failed,
    ``suspect_key`` names the online cluster the residual was routed to
    (None when residual routing is disabled) and ``new_suspect`` tells
    whether that cluster was freshly opened by this query.
    ``degraded`` is set when any store shard was unreadable or known
    incomplete while this batch ran — the decision stands, but a miss
    might have matched inside the degraded key ranges.
    """

    query_id: str
    identification: Identification
    suspect_key: Optional[str] = None
    new_suspect: bool = False
    degraded: bool = False

    @property
    def matched(self) -> bool:
        """True when the query matched a stored fingerprint."""
        return self.identification.matched


@dataclass(frozen=True)
class BatchReport:
    """Results plus a metrics snapshot for one batch."""

    results: List[QueryResult]
    stats: Dict[str, object]
    degraded_shards: List[DegradedShard] = field(default_factory=list)

    @property
    def matched_count(self) -> int:
        """Queries attributed to a stored fingerprint."""
        return sum(1 for result in self.results if result.matched)

    @property
    def unmatched_count(self) -> int:
        """Queries that fell through to residual handling."""
        return len(self.results) - self.matched_count

    @property
    def degraded(self) -> bool:
        """True when any shard was unreadable or incomplete."""
        return bool(self.degraded_shards)

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable report (CLI and benchmark output)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "matched": self.matched_count,
            "unmatched": self.unmatched_count,
            "degraded": self.degraded,
            "degraded_shards": [
                entry.to_json() for entry in self.degraded_shards
            ],
            "results": [
                {
                    "query_id": result.query_id,
                    "matched": result.matched,
                    "key": result.identification.key,
                    "distance": result.identification.distance,
                    "suspect_key": result.suspect_key,
                    "new_suspect": result.new_suspect,
                    "degraded": result.degraded,
                }
                for result in self.results
            ],
            "metrics": self.stats,
        }


class BatchIdentificationService:
    """Batch front end over a sharded store or a single database.

    Parameters
    ----------
    backend:
        A :class:`~repro.service.store.ShardedFingerprintStore` (shards
        are fanned out over the worker pool) or a single
        :class:`~repro.service.indexed.IndexedFingerprintDatabase`.
    threshold:
        Algorithm 2 match threshold.
    max_workers:
        Worker pool width for the shard fan-out (None lets
        ``concurrent.futures`` pick).
    cluster_residuals:
        When True (default) unmatched queries feed an Algorithm 4
        online clusterer and their results carry suspect ids.
    shard_retries:
        How many times a failing shard load/scan is retried (with
        exponential backoff) before the shard is declared degraded.
    retry_backoff_s:
        Base of the exponential backoff between shard retries.
    shard_timeout_s:
        Wall-clock budget to wait for any one shard's answer; a shard
        exceeding it is declared degraded (None = wait forever).
    breakers:
        Optional :class:`~repro.reliability.breaker.BreakerBoard` of
        per-shard circuit breakers layered *over* the retry/timeout
        path: a shard whose breaker is open is skipped without being
        loaded (reported degraded with ``attempts=0``), successes and
        failures feed the breaker state machine.  Share one board
        across batches (the streaming pipeline does) so persistent
        shard failure stops burning the retry budget.
    metrics:
        Instrumentation sink; defaults to the backend's own.
    """

    def __init__(
        self,
        backend: Union[ShardedFingerprintStore, IndexedFingerprintDatabase],
        threshold: float = DEFAULT_THRESHOLD,
        max_workers: Optional[int] = None,
        cluster_residuals: bool = True,
        suspect_prefix: str = "suspect",
        shard_retries: int = 2,
        retry_backoff_s: float = 0.05,
        shard_timeout_s: Optional[float] = None,
        breakers: Optional[BreakerBoard] = None,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        if shard_retries < 0:
            raise ValueError(f"shard_retries must be >= 0, got {shard_retries}")
        if retry_backoff_s < 0.0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}"
            )
        self._backend = backend
        self._threshold = threshold
        self._max_workers = max_workers
        self._metrics = metrics if metrics is not None else backend.metrics
        self._suspect_prefix = suspect_prefix
        self._shard_retries = shard_retries
        self._retry_backoff_s = retry_backoff_s
        self._shard_timeout_s = shard_timeout_s
        self._breakers = breakers
        self._clusterer: Optional[OnlineClusterer] = (
            OnlineClusterer(threshold=threshold) if cluster_residuals else None
        )

    @property
    def threshold(self) -> float:
        """Match threshold on the Algorithm 3 distance."""
        return self._threshold

    @property
    def metrics(self) -> ServiceMetrics:
        """Shared instrumentation sink."""
        return self._metrics

    @property
    def clusterer(self) -> Optional[OnlineClusterer]:
        """Residual clusterer (None when residual routing is off)."""
        return self._clusterer

    @property
    def breakers(self) -> Optional[BreakerBoard]:
        """Per-shard circuit breaker board (None when disabled)."""
        return self._breakers

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------

    def run(self, queries: Sequence[BatchQuery]) -> BatchReport:
        """Identify a whole batch; returns results in query order.

        Never raises on shard damage: every healthy shard still
        answers, and the report's ``degraded_shards`` names what could
        not be consulted.
        """
        self._metrics.count("batch.batches")
        self._metrics.count("batch.queries", len(queries))
        with obs_span("batch.run", queries=len(queries)):
            with self._metrics.time("batch.total"):
                with self._metrics.time("batch.mark_errors"), obs_span(
                    "batch.mark_errors"
                ):
                    error_strings = self._error_strings(queries)
                with self._metrics.time("batch.identify"), obs_span(
                    "batch.identify"
                ):
                    identifications, degraded = self._identify_all(
                        error_strings
                    )
                with self._metrics.time("batch.residuals"), obs_span(
                    "batch.residuals"
                ):
                    results = self._route_residuals(
                        queries, error_strings, identifications, bool(degraded)
                    )
        if degraded:
            self._metrics.count("batch.degraded_queries", len(queries))
        return BatchReport(
            results=results,
            stats=self._metrics.stats(),
            degraded_shards=degraded,
        )

    def _error_strings(self, queries: Sequence[BatchQuery]) -> List[BitVector]:
        prebuilt: List[Optional[BitVector]] = []
        pair_positions: List[int] = []
        pairs: List[Tuple[BitVector, BitVector]] = []
        for position, query in enumerate(queries):
            if query.error_string is not None:
                prebuilt.append(query.error_string)
            else:
                prebuilt.append(None)
                pair_positions.append(position)
                pairs.append((query.approx, query.exact))
        if pairs:
            marked = mark_errors_batch(
                [approx for approx, _exact in pairs],
                [exact for _approx, exact in pairs],
            )
            for position, error_string in zip(pair_positions, marked):
                prebuilt[position] = error_string
        return prebuilt  # type: ignore[return-value]  # every slot filled

    def _identify_all(
        self, error_strings: Sequence[BitVector]
    ) -> Tuple[List[Identification], List[DegradedShard]]:
        if isinstance(self._backend, ShardedFingerprintStore):
            return self._identify_sharded(self._backend, error_strings)
        database = self._backend
        return [
            database.identify_error_string(error_string, self._threshold)
            for error_string in error_strings
        ], []

    def _identify_sharded(
        self,
        store: ShardedFingerprintStore,
        error_strings: Sequence[BitVector],
    ) -> Tuple[List[Identification], List[DegradedShard]]:
        degraded: List[DegradedShard] = []
        # Shards the manifest already knows to be incomplete: they still
        # serve what survived, but their answers are advisory.
        for shard in store.degraded_shards():
            degraded.append(
                DegradedShard(
                    shard=shard,
                    key_range=store.shard_key_range(shard),
                    reason="quarantined segments: stored fingerprints lost",
                )
            )
        shards = [
            shard
            for shard in range(store.n_shards)
            if any(segment.shard == shard for segment in store.segments)
        ]
        if not shards:
            return (
                [Identification.failed() for _ in error_strings],
                merge_degraded(degraded),
            )
        admitted: List[int] = []
        for shard in shards:
            if self._breakers is not None and not self._breakers.allow(shard):
                # Open breaker: the shard has failed persistently, skip
                # it without paying the load/retry budget at all.
                self._metrics.count("batch.shard_short_circuits")
                degraded.append(
                    DegradedShard(
                        shard=shard,
                        key_range=store.shard_key_range(shard),
                        reason="circuit breaker open: shard skipped",
                        attempts=0,
                    )
                )
            else:
                admitted.append(shard)
        if not admitted:
            return (
                [Identification.failed() for _ in error_strings],
                merge_degraded(degraded),
            )
        pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self._max_workers
        )
        try:
            # Each worker runs under a copy of this context so its
            # shard-scan spans parent onto the enclosing batch span.
            futures = {
                shard: pool.submit(
                    contextvars.copy_context().run,
                    self._load_and_scan,
                    store,
                    shard,
                    error_strings,
                )
                for shard in admitted
            }
            per_shard: List[List[Optional[Tuple[int, Identification]]]] = []
            deadline = (
                time.monotonic() + self._shard_timeout_s
                if self._shard_timeout_s is not None
                else None
            )
            for shard, future in futures.items():
                remaining: Optional[float] = None
                if deadline is not None:
                    remaining = max(0.0, deadline - time.monotonic())
                try:
                    per_shard.append(future.result(timeout=remaining))
                except concurrent.futures.TimeoutError:
                    self._metrics.count("batch.shard_timeouts")
                    if self._breakers is not None:
                        self._breakers.record_failure(shard)
                    degraded.append(
                        DegradedShard(
                            shard=shard,
                            key_range=store.shard_key_range(shard),
                            reason=(
                                f"timed out after {self._shard_timeout_s}s"
                            ),
                        )
                    )
                except Exception as error:  # noqa: BLE001 - degrade, never fail
                    self._metrics.count("batch.shard_failures")
                    if self._breakers is not None:
                        self._breakers.record_failure(shard)
                    degraded.append(
                        DegradedShard(
                            shard=shard,
                            key_range=store.shard_key_range(shard),
                            reason=f"unreadable after retries: {error}",
                            attempts=self._shard_retries + 1,
                        )
                    )
                else:
                    if self._breakers is not None:
                        self._breakers.record_success(shard)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        # Merge: per query, the match with the smallest global sequence.
        merged = merge_first_match(per_shard, len(error_strings))
        return merged, merge_degraded(degraded)

    def _load_and_scan(
        self,
        store: ShardedFingerprintStore,
        shard: int,
        error_strings: Sequence[BitVector],
    ) -> List[Optional[Tuple[int, Identification]]]:
        """Load one shard and scan the batch, retrying with backoff.

        Transient IO errors heal across retries; persistent damage
        exhausts the retry budget and propagates for the caller to
        translate into a :class:`DegradedShard`.
        """
        attempts = self._shard_retries + 1
        for attempt in range(attempts):
            try:
                with obs_span(
                    "batch.shard_scan", shard=shard, attempt=attempt
                ):
                    replica = store.load_shard(shard)
                    return self._scan_shard(replica, error_strings)
            except Exception:
                # Drop any half-built replica so the retry reloads.
                store.evict(shard)
                if attempt + 1 == attempts:
                    raise
                self._metrics.count("batch.shard_retries")
                if self._retry_backoff_s:
                    time.sleep(self._retry_backoff_s * (2 ** attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def _scan_shard(
        self,
        replica: LoadedShard,
        error_strings: Sequence[BitVector],
    ) -> List[Optional[Tuple[int, Identification]]]:
        """Earliest in-shard match per query, tagged with global sequence."""
        answers: List[Optional[Tuple[int, Identification]]] = []
        for error_string in error_strings:
            identification = replica.database.identify_error_string(
                error_string, self._threshold
            )
            if identification.matched:
                sequence = replica.sequences[identification.key]
                answers.append((sequence, identification))
            else:
                answers.append(None)
        return answers

    def _route_residuals(
        self,
        queries: Sequence[BatchQuery],
        error_strings: Sequence[BitVector],
        identifications: Sequence[Identification],
        degraded: bool = False,
    ) -> List[QueryResult]:
        results: List[QueryResult] = []
        for query, error_string, identification in zip(
            queries, error_strings, identifications
        ):
            if identification.matched or self._clusterer is None:
                results.append(
                    QueryResult(
                        query_id=query.query_id,
                        identification=identification,
                        degraded=degraded,
                    )
                )
                continue
            self._metrics.count("batch.residuals_clustered")
            before = len(self._clusterer)
            cluster_index = self._clusterer.add(error_string)
            results.append(
                QueryResult(
                    query_id=query.query_id,
                    identification=identification,
                    suspect_key=f"{self._suspect_prefix}-{cluster_index}",
                    new_suspect=len(self._clusterer) > before,
                    degraded=degraded,
                )
            )
        return results


def verify_against_linear(
    service_results: Sequence[QueryResult],
    database_items: Sequence[Tuple[str, "object"]],
    error_strings: Sequence[BitVector],
    threshold: float = DEFAULT_THRESHOLD,
) -> int:
    """Count disagreements between service results and a linear scan.

    Debug/validation helper used by tests and the benchmark: replays
    each query with the plain Algorithm 2 loop over ``database_items``
    (in order) and compares the match/no-match decision and matched
    key.  Returns the number of disagreeing queries (0 means the index
    is exact on this workload).
    """
    disagreements = 0
    for result, error_string in zip(service_results, error_strings):
        expected_key = None
        if error_string.any():
            for key, fingerprint in database_items:
                if probable_cause_distance(error_string, fingerprint) < threshold:
                    expected_key = key
                    break
        actual_key = result.identification.key if result.matched else None
        if expected_key != actual_key:
            disagreements += 1
    return disagreements
