"""Persistent, sharded fingerprint store with append-only segments.

The supply-chain attacker accumulates fingerprints for years; the §4
model puts the database at a fingerprint per device — 10^5-10^6
entries and beyond.  Loading all of that to answer one query is
wasteful, and rewriting one monolithic file per interception batch is
worse.  This store borrows the standard LSM-ish layout used by
storage engines:

* fingerprints live in **append-only segment files**, each an ordinary
  :func:`repro.core.serialize.dump_database` stream — one new segment
  per ingested batch per shard, never rewritten in place;
* a JSON **manifest** records the schema version, the shard split
  keys, every segment (shard, file, entry count, starting global
  sequence number) and the next sequence to assign;
* entries are **key-range sharded**: the first ingested batch picks
  balanced lexicographic split keys, and every later key routes to the
  shard owning its range, so point lookups and ingests touch one
  shard while batch queries fan out over all of them.

Global **sequence numbers** (assigned at ingest, recorded per segment)
preserve Algorithm 2's "first fingerprint below threshold" semantics
across shards: per-shard answers carry the sequence of their match and
the merge step takes the minimum — identical to a linear scan over one
big database in ingest order.

Shards load lazily into :class:`IndexedFingerprintDatabase` replicas
and are cached; :class:`~repro.service.metrics.ServiceMetrics` counts
loads and cache hits.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.fingerprint import Fingerprint
from repro.core.identify import FingerprintDatabase
from repro.core.serialize import dump_database, load_database
from repro.service.indexed import IndexedFingerprintDatabase, IndexParams
from repro.service.metrics import ServiceMetrics

_MANIFEST_NAME = "manifest.json"
_STORE_VERSION = 1


class StoreError(ValueError):
    """Raised on a malformed store directory or an invalid ingest."""


@dataclass(frozen=True)
class SegmentRecord:
    """One append-only segment file as recorded in the manifest."""

    shard: int
    filename: str
    count: int
    start_sequence: int

    def to_json(self) -> Dict[str, object]:
        """Manifest representation of this segment."""
        return {
            "shard": self.shard,
            "filename": self.filename,
            "count": self.count,
            "start_sequence": self.start_sequence,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "SegmentRecord":
        """Inverse of :meth:`to_json`."""
        return cls(
            shard=int(payload["shard"]),
            filename=str(payload["filename"]),
            count=int(payload["count"]),
            start_sequence=int(payload["start_sequence"]),
        )


@dataclass
class LoadedShard:
    """An in-memory replica of one shard.

    ``database`` preserves the shard's ingest order (so its indexed
    identification returns the shard's earliest match), ``sequences``
    maps each key to its global sequence for the cross-shard merge.
    """

    database: IndexedFingerprintDatabase
    sequences: Dict[str, int]


class ShardedFingerprintStore:
    """Durable fingerprint store: manifest + shards + segments.

    Open an existing store (or create an empty one) by constructing
    with its directory path; ingest batches with :meth:`ingest`; get a
    queryable shard replica with :meth:`load_shard`.  All mutation is
    append-plus-manifest-rewrite, so a crash between the two leaves at
    worst an orphaned segment file the manifest never references.
    """

    def __init__(
        self,
        root: Union[str, Path],
        n_shards: int = 8,
        index_params: IndexParams = IndexParams(),
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        self._root = Path(root)
        self._index_params = index_params
        self._metrics = metrics if metrics is not None else ServiceMetrics()
        self._cache: Dict[int, LoadedShard] = {}
        manifest_path = self._root / _MANIFEST_NAME
        if manifest_path.exists():
            self._load_manifest(manifest_path)
        else:
            if n_shards < 1:
                raise StoreError(f"n_shards must be >= 1, got {n_shards}")
            self._root.mkdir(parents=True, exist_ok=True)
            self._n_shards = n_shards
            self._boundaries: List[str] = []
            self._segments: List[SegmentRecord] = []
            self._next_sequence = 0
            self._write_manifest()

    # ------------------------------------------------------------------
    # Manifest handling
    # ------------------------------------------------------------------

    def _load_manifest(self, path: Path) -> None:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise StoreError(f"unreadable manifest at {path}: {error}") from error
        if payload.get("version") != _STORE_VERSION:
            raise StoreError(
                f"unsupported store version {payload.get('version')!r}"
            )
        self._n_shards = int(payload["n_shards"])
        self._boundaries = [str(boundary) for boundary in payload["boundaries"]]
        self._segments = [
            SegmentRecord.from_json(record) for record in payload["segments"]
        ]
        self._next_sequence = int(payload["next_sequence"])

    def _write_manifest(self) -> None:
        payload = {
            "version": _STORE_VERSION,
            "n_shards": self._n_shards,
            "boundaries": self._boundaries,
            "segments": [segment.to_json() for segment in self._segments],
            "next_sequence": self._next_sequence,
        }
        path = self._root / _MANIFEST_NAME
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        tmp.replace(path)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def root(self) -> Path:
        """Store directory."""
        return self._root

    @property
    def n_shards(self) -> int:
        """Number of key-range shards."""
        return self._n_shards

    @property
    def boundaries(self) -> List[str]:
        """Lexicographic split keys (``n_shards - 1`` of them, once set)."""
        return list(self._boundaries)

    @property
    def segments(self) -> List[SegmentRecord]:
        """Every segment in manifest (= ingest) order."""
        return list(self._segments)

    def __len__(self) -> int:
        return sum(segment.count for segment in self._segments)

    @property
    def metrics(self) -> ServiceMetrics:
        """Shared instrumentation sink."""
        return self._metrics

    def shard_for_key(self, key: str) -> int:
        """Shard owning ``key``'s range (0 before boundaries exist).

        Shard ``i`` owns keys in ``(boundaries[i-1], boundaries[i]]``
        with open ends at the extremes.
        """
        if not self._boundaries:
            return 0
        return bisect.bisect_left(self._boundaries, key)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def ingest(
        self,
        entries: Union[FingerprintDatabase, Iterable[Tuple[str, Fingerprint]]],
    ) -> List[SegmentRecord]:
        """Append a batch of fingerprints; returns the new segments.

        ``entries`` is a database or an iterable of ``(key,
        fingerprint)`` pairs; their order defines the global sequence
        numbers assigned (and therefore Algorithm 2 priority).  The
        first non-empty ingest of a fresh store also fixes the shard
        boundaries from the batch's sorted keys.  Keys already present
        in the store (or repeated within the batch) are rejected.
        """
        if isinstance(entries, FingerprintDatabase):
            batch = list(entries.items())
        else:
            batch = list(entries)
        if not batch:
            return []
        keys = [key for key, _fingerprint in batch]
        if len(set(keys)) != len(keys):
            raise StoreError("duplicate keys within ingest batch")
        existing = self._known_keys()
        clashes = existing.intersection(keys)
        if clashes:
            raise StoreError(
                f"keys already stored: {sorted(clashes)[:5]}"
                f"{'...' if len(clashes) > 5 else ''}"
            )
        if not self._boundaries and self._n_shards > 1:
            self._boundaries = _balanced_boundaries(keys, self._n_shards)

        per_shard: Dict[int, List[Tuple[int, str, Fingerprint]]] = {}
        for offset, (key, fingerprint) in enumerate(batch):
            sequence = self._next_sequence + offset
            per_shard.setdefault(self.shard_for_key(key), []).append(
                (sequence, key, fingerprint)
            )

        created: List[SegmentRecord] = []
        for shard in sorted(per_shard):
            rows = per_shard[shard]
            shard_dir = self._root / f"shard-{shard:03d}"
            shard_dir.mkdir(parents=True, exist_ok=True)
            segment_id = sum(1 for s in self._segments if s.shard == shard)
            filename = f"shard-{shard:03d}/segment-{segment_id:06d}.pcfp"
            segment_db = FingerprintDatabase()
            for _sequence, key, fingerprint in rows:
                segment_db.add(key, fingerprint)
            dump_database(segment_db, self._root / filename)
            record = SegmentRecord(
                shard=shard,
                filename=filename,
                count=len(rows),
                start_sequence=rows[0][0],
            )
            self._segments.append(record)
            created.append(record)
            # Keep a warm cache coherent instead of dropping it.
            cached = self._cache.get(shard)
            if cached is not None:
                for sequence, key, fingerprint in rows:
                    cached.database.add(key, fingerprint)
                    cached.sequences[key] = sequence
        self._next_sequence += len(batch)
        self._write_manifest()
        return created

    def _known_keys(self) -> set:
        known: set = set()
        for shard in range(self._n_shards):
            cached = self._cache.get(shard)
            if cached is not None:
                known.update(cached.sequences)
            else:
                for segment in self._segments:
                    if segment.shard == shard:
                        database = load_database(self._root / segment.filename)
                        known.update(database.keys())
        return known

    # ------------------------------------------------------------------
    # Lazy loading
    # ------------------------------------------------------------------

    def load_shard(self, shard: int) -> LoadedShard:
        """Replica of one shard, reading its segments on first access.

        Entries are inserted in segment order (= ingest order within
        the shard); the per-key global sequence map supports the
        cross-shard first-match merge.  Replicas are cached; cache hits
        and cold loads are counted in the metrics.
        """
        if not 0 <= shard < self._n_shards:
            raise StoreError(
                f"shard {shard} out of range for {self._n_shards} shards"
            )
        cached = self._cache.get(shard)
        if cached is not None:
            self._metrics.count("store.shard_cache_hits")
            return cached
        self._metrics.count("store.shard_loads")
        with self._metrics.time("store.shard_load"):
            database = IndexedFingerprintDatabase(
                params=self._index_params, metrics=self._metrics
            )
            sequences: Dict[str, int] = {}
            for segment in self._segments:
                if segment.shard != shard:
                    continue
                segment_db = load_database(self._root / segment.filename)
                for offset, (key, fingerprint) in enumerate(segment_db.items()):
                    database.add(key, fingerprint)
                    sequences[key] = segment.start_sequence + offset
        replica = LoadedShard(database=database, sequences=sequences)
        self._cache[shard] = replica
        return replica

    def loaded_shards(self) -> List[int]:
        """Shard ids currently resident in the cache."""
        return sorted(self._cache)

    def evict(self, shard: Optional[int] = None) -> None:
        """Drop one shard replica (or all of them) from the cache."""
        if shard is None:
            self._cache.clear()
        else:
            self._cache.pop(shard, None)

    def all_keys(self) -> List[str]:
        """Every stored key in global sequence order (loads all shards)."""
        rows: List[Tuple[int, str]] = []
        for shard in range(self._n_shards):
            replica = self.load_shard(shard)
            rows.extend(
                (sequence, key) for key, sequence in replica.sequences.items()
            )
        rows.sort()
        return [key for _sequence, key in rows]


def _balanced_boundaries(keys: Sequence[str], n_shards: int) -> List[str]:
    """Split keys partitioning ``keys`` into ``n_shards`` even ranges.

    The boundaries are drawn from the sorted key sample itself (the
    classic range-sharding bootstrap); each boundary is the last key of
    its shard's range (see :meth:`ShardedFingerprintStore.shard_for_key`).
    """
    ordered = sorted(set(keys))
    if len(ordered) < n_shards:
        # Too few distinct keys to split evenly; duplicate the tail so
        # later keys still route deterministically.
        return ordered[:-1] if len(ordered) > 1 else []
    boundaries = []
    for index in range(1, n_shards):
        position = index * len(ordered) // n_shards - 1
        boundaries.append(ordered[max(position, 0)])
    return boundaries
