"""Persistent, sharded fingerprint store with append-only segments.

The supply-chain attacker accumulates fingerprints for years; the §4
model puts the database at a fingerprint per device — 10^5-10^6
entries and beyond.  Loading all of that to answer one query is
wasteful, and rewriting one monolithic file per interception batch is
worse.  This store borrows the standard LSM-ish layout used by
storage engines:

* fingerprints live in **append-only segment files**, each an ordinary
  :func:`repro.core.serialize.dump_database` stream — one new segment
  per ingested batch per shard, never rewritten in place, written in
  the checksummed v2 frame format (legacy v1 segments stay readable);
* a JSON **manifest** records the schema version, the shard split
  keys, every segment (shard, file, entry count, starting global
  sequence number), any quarantined segments, and the next sequence to
  assign;
* entries are **key-range sharded**: the first ingested batch picks
  balanced lexicographic split keys, and every later key routes to the
  shard owning its range, so point lookups and ingests touch one
  shard while batch queries fan out over all of them.

Global **sequence numbers** (assigned at ingest, recorded per segment)
preserve Algorithm 2's "first fingerprint below threshold" semantics
across shards: per-shard answers carry the sequence of their match and
the merge step takes the minimum — identical to a linear scan over one
big database in ingest order.

Ingest is **crash-safe**: a write-ahead journal naming the planned
segments is made durable before any segment byte lands, every file is
fsynced before the manifest swap publishes it, the swap itself is an
fsync + atomic ``os.replace`` + directory fsync, and the journal is
only then retired.  :meth:`ShardedFingerprintStore.recover` (run
automatically on open) resolves any crash point by rolling the journal
forward (all planned segments verified on disk) or back (planned files
deleted) — never a hybrid, and never touching previously committed
segments.  All filesystem traffic goes through a
:class:`repro.reliability.faults.StorageIO` seam so the chaos tests
can enumerate crash points deterministically.

Shards load lazily into :class:`IndexedFingerprintDatabase` replicas
and are cached; :class:`~repro.service.metrics.ServiceMetrics` counts
loads, cache hits, recoveries and quarantines.

Two scale features ride on top of the append-only core:

* every ingested segment carries a **bloom filter** trailer (see
  :mod:`repro.reliability.bloom`) so :meth:`ShardedFingerprintStore.lookup`
  can answer point queries on a cold shard without reading every
  segment body;
* :meth:`ShardedFingerprintStore.commit_compaction` merges segments
  through its own write-ahead **compaction journal** — journal →
  output segment (tmp + fsync + atomic rename) → manifest swap →
  source deletion → journal retirement — so background compaction
  (see :mod:`repro.reliability.compaction`) inherits the same
  crash-anywhere recovery guarantees as ingest.  Compacted segments
  record their surviving global sequences as ``runs``; sequence spans
  whose records were dropped (tombstoned devices) move to the
  manifest's ``reclaimed`` list so the sequence space stays fully
  accounted for.
"""

from __future__ import annotations

import bisect
import io
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.fingerprint import Fingerprint
from repro.core.identify import FingerprintDatabase
from repro.core.serialize import dump_database, load_database
from repro.obs.trace import span as obs_span
from repro.reliability.bloom import (
    BloomFilter,
    append_trailer,
    build_filter,
    load_segment_bloom,
)
from repro.reliability.faults import StorageIO
from repro.service.indexed import IndexedFingerprintDatabase, IndexParams
from repro.service.metrics import ServiceMetrics

_MANIFEST_NAME = "manifest.json"
_MANIFEST_TMP_NAME = "manifest.json.tmp"
_JOURNAL_NAME = "ingest-journal.json"
_COMPACTION_JOURNAL_NAME = "compaction-journal.json"
_QUARANTINE_DIR = "quarantine"
_STORE_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)
_SEGMENT_ID_PATTERN = re.compile(r"segment-(\d+)")


class StoreError(ValueError):
    """Raised on a malformed store directory or an invalid ingest."""


@dataclass(frozen=True)
class SegmentRecord:
    """One append-only segment file as recorded in the manifest.

    ``omitted`` lists the original record offsets a repair dropped from
    a salvaged segment: the k-th surviving record's global sequence is
    ``start_sequence +`` its *original* offset, so sequence numbers —
    and therefore Algorithm 2 priority — survive salvage intact.

    A *compacted* segment carries ``runs`` instead: coalesced
    ``(start, count)`` spans of the global sequences its records hold,
    in stored order.  A merge output's sequences are rarely contiguous
    (tombstoned records were dropped between survivors), and runs keep
    the manifest entry small no matter how fragmented the survivors
    are.  When ``runs`` is set, ``count`` equals the total run length
    and ``start_sequence`` equals ``runs[0][0]``.
    """

    shard: int
    filename: str
    count: int
    start_sequence: int
    omitted: Tuple[int, ...] = ()
    runs: Tuple[Tuple[int, int], ...] = ()

    @property
    def original_count(self) -> int:
        """Record count before any salvage dropped corrupt records."""
        return self.count + len(self.omitted)

    def offsets(self) -> List[int]:
        """Original offsets of the surviving records, in stored order."""
        if not self.omitted:
            return list(range(self.count))
        dropped = set(self.omitted)
        return [
            offset
            for offset in range(self.original_count)
            if offset not in dropped
        ]

    def sequences(self) -> List[int]:
        """Global sequence of each stored record, in stored order."""
        if self.runs:
            expanded: List[int] = []
            for start, count in self.runs:
                expanded.extend(range(start, start + count))
            return expanded
        return [self.start_sequence + offset for offset in self.offsets()]

    def to_json(self) -> Dict[str, object]:
        """Manifest representation of this segment."""
        payload: Dict[str, object] = {
            "shard": self.shard,
            "filename": self.filename,
            "count": self.count,
            "start_sequence": self.start_sequence,
        }
        if self.omitted:
            payload["omitted"] = list(self.omitted)
        if self.runs:
            payload["runs"] = [list(run) for run in self.runs]
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "SegmentRecord":
        """Inverse of :meth:`to_json`."""
        return cls(
            shard=int(payload["shard"]),
            filename=str(payload["filename"]),
            count=int(payload["count"]),
            start_sequence=int(payload["start_sequence"]),
            omitted=tuple(int(o) for o in payload.get("omitted", ())),
            runs=tuple(
                (int(start), int(count))
                for start, count in payload.get("runs", ())
            ),
        )


@dataclass(frozen=True)
class QuarantinedSegment:
    """A segment pulled from serving because its content is damaged."""

    record: SegmentRecord
    reason: str

    def to_json(self) -> Dict[str, object]:
        """Manifest representation."""
        return {"record": self.record.to_json(), "reason": self.reason}

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "QuarantinedSegment":
        """Inverse of :meth:`to_json`."""
        return cls(
            record=SegmentRecord.from_json(payload["record"]),
            reason=str(payload["reason"]),
        )


@dataclass
class RecoveryReport:
    """What :meth:`ShardedFingerprintStore.recover` did.

    ``action`` covers the ingest journal; ``compaction_action`` covers
    the compaction journal — the two protocols are independent (a
    background merge can crash while an ingest journal is also
    pending) and each resolves on its own.
    """

    action: str = "none"  # none | committed | rolled_forward | rolled_back
    journal_found: bool = False
    orphans_removed: List[str] = field(default_factory=list)
    detail: str = ""
    # none | compaction_committed | compaction_rolled_forward |
    # compaction_rolled_back
    compaction_action: str = "none"
    compaction_journal_found: bool = False


@dataclass
class LoadedShard:
    """An in-memory replica of one shard.

    ``database`` preserves the shard's ingest order (so its indexed
    identification returns the shard's earliest match), ``sequences``
    maps each key to its global sequence for the cross-shard merge.
    """

    database: IndexedFingerprintDatabase
    sequences: Dict[str, int]


@dataclass(frozen=True)
class StoreLookup:
    """Answer to one point lookup, with its read-path accounting.

    ``segments_scanned`` / ``segments_skipped`` count segment bodies
    read vs. skipped on bloom-filter evidence; both are zero when the
    shard replica was already warm in the cache.
    """

    key: str
    fingerprint: Fingerprint
    sequence: int
    segments_scanned: int = 0
    segments_skipped: int = 0


class ShardedFingerprintStore:
    """Durable fingerprint store: manifest + journal + shards + segments.

    Open an existing store (or create an empty one) by constructing
    with its directory path; ingest batches with :meth:`ingest`; get a
    queryable shard replica with :meth:`load_shard`.  A pending ingest
    journal found at open is resolved by :meth:`recover` before the
    store serves anything.
    """

    def __init__(
        self,
        root: Union[str, Path],
        n_shards: int = 8,
        index_params: IndexParams = IndexParams(),
        metrics: Optional[ServiceMetrics] = None,
        storage_io: Optional[StorageIO] = None,
    ) -> None:
        self._root = Path(root)
        self._index_params = index_params
        self._metrics = metrics if metrics is not None else ServiceMetrics()
        self._io = storage_io if storage_io is not None else StorageIO()
        self._cache: Dict[int, LoadedShard] = {}
        self._blooms: Dict[str, Optional[BloomFilter]] = {}
        self._quarantined: List[QuarantinedSegment] = []
        self._tombstones: Dict[str, int] = {}
        self._reclaimed: List[Tuple[int, int]] = []
        self._needs_recovery = False
        self._last_recovery: Optional[RecoveryReport] = None
        manifest_path = self._root / _MANIFEST_NAME
        if manifest_path.exists():
            self._apply_manifest(self._read_manifest(manifest_path))
            if self.journal_path.exists() or self.compaction_journal_path.exists():
                self.recover()
        else:
            if n_shards < 1:
                raise StoreError(f"n_shards must be >= 1, got {n_shards}")
            self._root.mkdir(parents=True, exist_ok=True)
            self._n_shards = n_shards
            self._boundaries: List[str] = []
            self._segments: List[SegmentRecord] = []
            self._next_sequence = 0
            self._write_manifest()

    # ------------------------------------------------------------------
    # Manifest handling
    # ------------------------------------------------------------------

    def _read_manifest(self, path: Path) -> Dict[str, object]:
        try:
            payload = json.loads(self._io.read_bytes(path).decode("utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as error:
            raise StoreError(f"unreadable manifest at {path}: {error}") from error
        if payload.get("version") not in _SUPPORTED_VERSIONS:
            raise StoreError(
                f"unsupported store version {payload.get('version')!r}"
            )
        return payload

    def _apply_manifest(self, payload: Dict[str, object]) -> None:
        self._n_shards = int(payload["n_shards"])
        self._boundaries = [str(boundary) for boundary in payload["boundaries"]]
        self._segments = [
            SegmentRecord.from_json(record) for record in payload["segments"]
        ]
        self._next_sequence = int(payload["next_sequence"])
        self._quarantined = [
            QuarantinedSegment.from_json(record)
            for record in payload.get("quarantined", [])
        ]
        self._tombstones = {
            str(entry["key"]): int(entry["sequence"])
            for entry in payload.get("tombstones", [])
        }
        self._reclaimed = coalesce_runs(
            (int(start), int(count))
            for start, count in payload.get("reclaimed", [])
        )

    def _manifest_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "version": _STORE_VERSION,
            "n_shards": self._n_shards,
            "boundaries": self._boundaries,
            "segments": [segment.to_json() for segment in self._segments],
            "quarantined": [entry.to_json() for entry in self._quarantined],
            "next_sequence": self._next_sequence,
        }
        # Additive fields: absent on stores that never tombstoned or
        # compacted, so pre-compaction manifests round-trip unchanged.
        if self._tombstones:
            payload["tombstones"] = [
                {"key": key, "sequence": sequence}
                for key, sequence in sorted(self._tombstones.items())
            ]
        if self._reclaimed:
            payload["reclaimed"] = [list(run) for run in self._reclaimed]
        return payload

    def _write_manifest(self) -> None:
        """Durably publish the in-memory manifest state.

        fsync the temporary before the atomic replace (so a power cut
        can never publish a manifest whose bytes are not on disk) and
        fsync the directory after it (so the rename itself survives).
        """
        payload = self._manifest_payload()
        path = self._root / _MANIFEST_NAME
        tmp = self._root / _MANIFEST_TMP_NAME
        data = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
        self._io.write_bytes(tmp, data, sync=True)
        self._io.replace(tmp, path)
        self._io.fsync_dir(self._root)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def root(self) -> Path:
        """Store directory."""
        return self._root

    @property
    def journal_path(self) -> Path:
        """Location of the write-ahead ingest journal."""
        return self._root / _JOURNAL_NAME

    @property
    def compaction_journal_path(self) -> Path:
        """Location of the write-ahead compaction journal."""
        return self._root / _COMPACTION_JOURNAL_NAME

    @property
    def quarantine_dir(self) -> Path:
        """Directory quarantined segment files are moved into."""
        return self._root / _QUARANTINE_DIR

    @property
    def n_shards(self) -> int:
        """Number of key-range shards."""
        return self._n_shards

    @property
    def boundaries(self) -> List[str]:
        """Lexicographic split keys (``n_shards - 1`` of them, once set)."""
        return list(self._boundaries)

    @property
    def segments(self) -> List[SegmentRecord]:
        """Every live segment in manifest (= ingest) order."""
        return list(self._segments)

    @property
    def quarantined(self) -> List[QuarantinedSegment]:
        """Segments pulled from serving by :meth:`quarantine_segment`."""
        return list(self._quarantined)

    @property
    def tombstones(self) -> Dict[str, int]:
        """Keys marked for deletion (key -> global sequence).

        A tombstoned key stops serving immediately; its bytes are
        reclaimed by the next compaction of its segment.
        """
        return dict(self._tombstones)

    @property
    def reclaimed(self) -> List[Tuple[int, int]]:
        """Sequence ``(start, count)`` runs dropped by compaction.

        Together with live and quarantined segments these account for
        the whole ``[0, next_sequence)`` space — the invariant
        ``verify-store`` checks.
        """
        return list(self._reclaimed)

    def __len__(self) -> int:
        return (
            sum(segment.count for segment in self._segments)
            - len(self._tombstones)
        )

    @property
    def metrics(self) -> ServiceMetrics:
        """Shared instrumentation sink."""
        return self._metrics

    @property
    def storage_io(self) -> StorageIO:
        """The IO seam all durable operations go through."""
        return self._io

    def shard_for_key(self, key: str) -> int:
        """Shard owning ``key``'s range (0 before boundaries exist).

        Shard ``i`` owns keys in ``(boundaries[i-1], boundaries[i]]``
        with open ends at the extremes.
        """
        if not self._boundaries:
            return 0
        return bisect.bisect_left(self._boundaries, key)

    def shard_key_range(self, shard: int) -> Tuple[Optional[str], Optional[str]]:
        """Key range ``(low_exclusive, high_inclusive)`` a shard owns.

        ``None`` marks an open end; with no boundaries fixed yet, shard
        0 owns everything.
        """
        if not 0 <= shard < self._n_shards:
            raise StoreError(
                f"shard {shard} out of range for {self._n_shards} shards"
            )
        if not self._boundaries:
            return (None, None)
        low = self._boundaries[shard - 1] if shard > 0 else None
        high = (
            self._boundaries[shard]
            if shard < len(self._boundaries)
            else None
        )
        return (low, high)

    def degraded_shards(self) -> List[int]:
        """Shards known to be missing data (quarantined or salvaged).

        Answers from these shards may be incomplete: a fingerprint
        ingested into them might have been lost to corruption, so a
        query that should match it will fall through.
        """
        shards = {entry.record.shard for entry in self._quarantined}
        shards.update(
            segment.shard for segment in self._segments if segment.omitted
        )
        return sorted(shards)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def _check_serviceable(self) -> None:
        if self._needs_recovery:
            raise StoreError(
                "a crashed ingest left this store handle inconsistent; "
                "call recover() or reopen the store"
            )

    def _next_segment_id(self, shard: int) -> int:
        """Next unused segment number for a shard.

        Derived from filenames across live *and* quarantined segments,
        so a quarantine never frees a number for reuse (reuse would let
        a new segment collide with a file sitting in quarantine's
        history).
        """
        used = [-1]
        for record in self._segments + [q.record for q in self._quarantined]:
            if record.shard != shard:
                continue
            match = _SEGMENT_ID_PATTERN.search(record.filename)
            if match:
                used.append(int(match.group(1)))
        return max(used) + 1

    def ingest(
        self,
        entries: Union[FingerprintDatabase, Iterable[Tuple[str, Fingerprint]]],
    ) -> List[SegmentRecord]:
        """Append a batch of fingerprints; returns the new segments.

        ``entries`` is a database or an iterable of ``(key,
        fingerprint)`` pairs; their order defines the global sequence
        numbers assigned (and therefore Algorithm 2 priority).  The
        first non-empty ingest of a fresh store also fixes the shard
        boundaries from the batch's sorted keys.  Keys already present
        in the store (or repeated within the batch) are rejected.

        The write protocol — journal, then segments, then the manifest
        swap, then journal retirement, every step durable — means a
        crash at any point either commits the whole batch or none of
        it; previously committed fingerprints are never at risk.
        """
        self._check_serviceable()
        if isinstance(entries, FingerprintDatabase):
            batch = list(entries.items())
        else:
            batch = list(entries)
        if not batch:
            return []
        keys = [key for key, _fingerprint in batch]
        if len(set(keys)) != len(keys):
            raise StoreError("duplicate keys within ingest batch")
        clashes = self._find_existing(keys)
        if clashes:
            raise StoreError(
                f"keys already stored: {sorted(clashes)[:5]}"
                f"{'...' if len(clashes) > 5 else ''}"
            )
        new_boundaries = list(self._boundaries)
        if not new_boundaries and self._n_shards > 1:
            new_boundaries = _balanced_boundaries(keys, self._n_shards)

        def route(key: str) -> int:
            if not new_boundaries:
                return 0
            return bisect.bisect_left(new_boundaries, key)

        per_shard: Dict[int, List[Tuple[int, str, Fingerprint]]] = {}
        for offset, (key, fingerprint) in enumerate(batch):
            sequence = self._next_sequence + offset
            per_shard.setdefault(route(key), []).append(
                (sequence, key, fingerprint)
            )

        planned: List[Tuple[SegmentRecord, bytes]] = []
        for shard in sorted(per_shard):
            rows = per_shard[shard]
            segment_id = self._next_segment_id(shard)
            filename = f"shard-{shard:03d}/segment-{segment_id:06d}.pcfp"
            segment_db = FingerprintDatabase()
            for _sequence, key, fingerprint in rows:
                segment_db.add(key, fingerprint)
            buffer = io.BytesIO()
            dump_database(segment_db, buffer)
            data = append_trailer(
                buffer.getvalue(), build_filter(segment_db.keys())
            )
            planned.append(
                (
                    SegmentRecord(
                        shard=shard,
                        filename=filename,
                        count=len(rows),
                        start_sequence=rows[0][0],
                    ),
                    data,
                )
            )

        try:
            self._commit_ingest(planned, new_boundaries, len(batch))
        except OSError:
            # Disk state is now at an unknown point of the protocol;
            # refuse further mutation from this handle until recovery.
            self._needs_recovery = True
            raise

        created = [record for record, _data in planned]
        self._segments.extend(created)
        self._boundaries = new_boundaries
        self._next_sequence += len(batch)
        for record, _data in planned:
            cached = self._cache.get(record.shard)
            if cached is None:
                continue
            # Keep a warm cache coherent instead of dropping it.
            for sequence, key, fingerprint in per_shard[record.shard]:
                cached.database.add(key, fingerprint)
                cached.sequences[key] = sequence
        return created

    def _commit_ingest(
        self,
        planned: List[Tuple[SegmentRecord, bytes]],
        new_boundaries: List[str],
        batch_size: int,
    ) -> None:
        """The durable half of :meth:`ingest` — journal → segments →
        manifest swap → journal retirement, every step fsynced."""
        journal = {
            "version": 1,
            "next_sequence_before": self._next_sequence,
            "next_sequence_after": self._next_sequence + batch_size,
            "boundaries": new_boundaries,
            "planned": [record.to_json() for record, _data in planned],
        }
        journal_data = (json.dumps(journal, indent=2) + "\n").encode("utf-8")
        self._io.write_bytes(self.journal_path, journal_data, sync=True)
        self._io.fsync_dir(self._root)

        for record, data in planned:
            path = self._root / record.filename
            path.parent.mkdir(parents=True, exist_ok=True)
            self._io.write_bytes(path, data, sync=True)

        manifest = self._manifest_payload()
        manifest["segments"] = [
            segment.to_json() for segment in self._segments
        ] + [record.to_json() for record, _data in planned]
        manifest["boundaries"] = new_boundaries
        manifest["next_sequence"] = self._next_sequence + batch_size
        data = (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode("utf-8")
        tmp = self._root / _MANIFEST_TMP_NAME
        self._io.write_bytes(tmp, data, sync=True)
        self._io.replace(tmp, self._root / _MANIFEST_NAME)
        self._io.fsync_dir(self._root)

        self._io.remove(self.journal_path)
        self._io.fsync_dir(self._root)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Resolve any interrupted ingest; idempotent, safe to re-run.

        Re-reads the manifest from disk, then: a journal whose batch
        already reached the manifest is simply retired ("committed"); a
        journal whose planned segments all exist and verify is rolled
        forward (manifest rewritten to include them); anything else is
        rolled back (planned files deleted).  A pending *compaction*
        journal resolves by the same rule: output verified on disk →
        roll the merge forward (manifest transform + source deletion),
        otherwise roll back (output deleted, sources untouched); a
        merge whose manifest swap already landed just finishes source
        cleanup.  Finally, segment files referenced by neither the
        manifest nor quarantine — orphans from a pre-journal crash or
        a torn rollback — are swept, along with stale ``.tmp``
        temporaries.  Committed fingerprints are never touched.
        """
        report = RecoveryReport()
        manifest_path = self._root / _MANIFEST_NAME
        if manifest_path.exists():
            self._apply_manifest(self._read_manifest(manifest_path))
        journal = None
        if self.journal_path.exists():
            report.journal_found = True
            try:
                journal = json.loads(
                    self._io.read_bytes(self.journal_path).decode("utf-8")
                )
            except (OSError, UnicodeDecodeError, json.JSONDecodeError):
                journal = None  # torn journal write: nothing was planned yet
        if journal is not None:
            planned = [
                SegmentRecord.from_json(record) for record in journal["planned"]
            ]
            if self._next_sequence >= int(journal["next_sequence_after"]):
                report.action = "committed"
                report.detail = "manifest swap had already completed"
            elif all(self._segment_verifies(record) for record in planned):
                self._segments.extend(planned)
                self._boundaries = [str(b) for b in journal["boundaries"]]
                self._next_sequence = int(journal["next_sequence_after"])
                self._write_manifest()
                report.action = "rolled_forward"
                report.detail = (
                    f"replayed {len(planned)} planned segment(s) into the manifest"
                )
                self._metrics.count("store.recovery_rolled_forward")
            else:
                for record in planned:
                    path = self._root / record.filename
                    if path.exists():
                        self._io.remove(path)
                report.action = "rolled_back"
                report.detail = (
                    f"dropped {len(planned)} incomplete planned segment(s)"
                )
                self._metrics.count("store.recovery_rolled_back")
        elif report.journal_found:
            report.action = "rolled_back"
            report.detail = "journal itself was torn; no segments were planned"
            self._metrics.count("store.recovery_rolled_back")
        if report.journal_found:
            if self.journal_path.exists():
                self._io.remove(self.journal_path)
            self._io.fsync_dir(self._root)
            self._metrics.count("store.recoveries")
        self._recover_compaction(report)
        # Sweep leftovers: a stale manifest temporary, any segment
        # file no manifest entry references, and segment temporaries a
        # crashed compaction left beside its output.
        tmp = self._root / _MANIFEST_TMP_NAME
        if tmp.exists():
            self._io.remove(tmp)
        referenced = {record.filename for record in self._segments}
        for orphan in sorted(self._root.glob("shard-*/*.pcfp")):
            relative = orphan.relative_to(self._root).as_posix()
            if relative not in referenced:
                self._io.remove(orphan)
                report.orphans_removed.append(relative)
        for leftover in sorted(self._root.glob("shard-*/*.pcfp.tmp")):
            relative = leftover.relative_to(self._root).as_posix()
            self._io.remove(leftover)
            report.orphans_removed.append(relative)
        self._cache.clear()
        self._blooms.clear()
        self._needs_recovery = False
        if (
            report.journal_found
            or report.compaction_journal_found
            or report.orphans_removed
        ):
            # Stash non-trivial outcomes so a later repair pass can
            # report a recovery that ran implicitly at open time.
            self._last_recovery = report
        return report

    def _recover_compaction(self, report: RecoveryReport) -> None:
        """Resolve a pending compaction journal into ``report``."""
        journal = None
        if self.compaction_journal_path.exists():
            report.compaction_journal_found = True
            try:
                journal = json.loads(
                    self._io.read_bytes(self.compaction_journal_path).decode(
                        "utf-8"
                    )
                )
            except (OSError, UnicodeDecodeError, json.JSONDecodeError):
                journal = None  # torn journal write: nothing was planned
        if journal is not None:
            sources = [str(name) for name in journal["sources"]]
            output = (
                SegmentRecord.from_json(journal["output"])
                if journal["output"] is not None
                else None
            )
            reclaimed = [
                (int(start), int(count))
                for start, count in journal.get("reclaimed", [])
            ]
            cleared = [str(key) for key in journal.get("cleared_tombstones", [])]
            live = {record.filename for record in self._segments}
            if all(name in live for name in sources):
                # Manifest swap never landed: the merge output decides.
                if output is None or self._segment_verifies(output):
                    self._apply_compaction(sources, output, reclaimed, cleared)
                    self._write_manifest()
                    for name in sources:
                        path = self._root / name
                        if path.exists():
                            self._io.remove(path)
                    report.compaction_action = "compaction_rolled_forward"
                    self._metrics.count("store.compaction_recovered_forward")
                else:
                    if output is not None:
                        path = self._root / output.filename
                        if path.exists():
                            self._io.remove(path)
                    report.compaction_action = "compaction_rolled_back"
                    self._metrics.count("store.compaction_recovered_back")
            else:
                # Manifest swap completed; only source cleanup remained.
                for name in sources:
                    path = self._root / name
                    if path.exists():
                        self._io.remove(path)
                report.compaction_action = "compaction_committed"
        elif report.compaction_journal_found:
            report.compaction_action = "compaction_rolled_back"
        if report.compaction_journal_found:
            if self.compaction_journal_path.exists():
                self._io.remove(self.compaction_journal_path)
            self._io.fsync_dir(self._root)
            self._metrics.count("store.recoveries")

    def take_recovery_report(self) -> Optional[RecoveryReport]:
        """Most recent non-trivial recovery, consumed exactly once.

        Opening a store auto-runs :meth:`recover`; this lets
        :func:`repro.reliability.repair.repair_store` attribute that
        open-time recovery in its own report instead of losing it.
        """
        report, self._last_recovery = self._last_recovery, None
        return report

    def _segment_verifies(self, record: SegmentRecord) -> bool:
        """True when a planned segment is fully, validly on disk."""
        path = self._root / record.filename
        if not path.exists():
            return False
        try:
            database = self._load_segment(record)
        except (OSError, ValueError):
            return False
        return len(database) == record.count

    # ------------------------------------------------------------------
    # Point lookups and tombstones
    # ------------------------------------------------------------------

    def lookup(self, key: str) -> Optional[StoreLookup]:
        """Point lookup of one key, or ``None`` when it is not stored.

        A warm shard replica answers from memory.  On a cold shard the
        per-segment bloom filters are consulted first and only the
        segments whose filter says *maybe* are read — the whole point
        of the trailer format — so a miss (or a hit in a recent
        segment) touches a fraction of the shard's bytes.
        """
        self._check_serviceable()
        self._metrics.count("store.point_lookups")
        if key in self._tombstones:
            return None
        shard = self.shard_for_key(key)
        cached = self._cache.get(shard)
        if cached is not None:
            self._metrics.count("store.shard_cache_hits")
            if key not in cached.sequences:
                return None
            return StoreLookup(
                key=key,
                fingerprint=cached.database.get(key),
                sequence=cached.sequences[key],
            )
        scanned = 0
        skipped = 0
        for segment in self._segments:
            if segment.shard != shard:
                continue
            bloom = self._segment_bloom(segment)
            if bloom is not None and key not in bloom:
                skipped += 1
                self._metrics.count("store.bloom_segment_skips")
                continue
            scanned += 1
            self._metrics.count("store.bloom_segment_loads")
            segment_db = self._load_segment(segment)
            if key in segment_db:
                for sequence, stored_key in zip(
                    segment.sequences(), segment_db.keys()
                ):
                    if stored_key == key:
                        return StoreLookup(
                            key=key,
                            fingerprint=segment_db.get(key),
                            sequence=sequence,
                            segments_scanned=scanned,
                            segments_skipped=skipped,
                        )
            elif bloom is not None:
                self._metrics.count("store.bloom_false_positives")
        return None

    def tombstone(self, keys: Iterable[str]) -> Dict[str, int]:
        """Mark keys as deleted; returns each key's global sequence.

        The tombstone set lives in the manifest (one atomic replace
        publishes it), queries stop serving the keys immediately, and
        the next compaction of each key's segment drops the record and
        moves its sequence into the ``reclaimed`` ledger.  Unknown or
        already-tombstoned keys are rejected before anything mutates.
        """
        self._check_serviceable()
        requested = list(keys)
        if len(set(requested)) != len(requested):
            raise StoreError("duplicate keys within tombstone request")
        located: Dict[str, int] = {}
        for key in requested:
            if key in self._tombstones:
                raise StoreError(f"key {key!r} is already tombstoned")
            found = self.lookup(key)
            if found is None:
                raise StoreError(f"key {key!r} is not stored")
            located[key] = found.sequence
        if not located:
            return {}
        self._tombstones.update(located)
        try:
            self._write_manifest()
        except OSError:
            self._needs_recovery = True
            raise
        for key in located:
            cached = self._cache.get(self.shard_for_key(key))
            if cached is not None and key in cached.sequences:
                cached.database.remove(key)
                del cached.sequences[key]
        self._metrics.count("store.tombstones_added", len(located))
        return located

    # ------------------------------------------------------------------
    # Compaction commit (used by repro.reliability.compaction)
    # ------------------------------------------------------------------

    def _apply_compaction(
        self,
        source_filenames: Sequence[str],
        output: Optional[SegmentRecord],
        reclaimed: Sequence[Tuple[int, int]],
        cleared_tombstones: Sequence[str],
    ) -> None:
        """In-memory manifest transform of one committed merge."""
        source_set = set(source_filenames)
        position = next(
            index
            for index, record in enumerate(self._segments)
            if record.filename in source_set
        )
        kept = [
            record
            for record in self._segments
            if record.filename not in source_set
        ]
        if output is not None:
            # Splice at the first source's manifest position (every
            # earlier entry is a non-source) to preserve global order.
            kept.insert(position, output)
        self._segments = kept
        self._reclaimed = coalesce_runs(self._reclaimed + list(reclaimed))
        for key in cleared_tombstones:
            self._tombstones.pop(key, None)

    def commit_compaction(
        self,
        sources: Sequence[SegmentRecord],
        output: Optional[SegmentRecord],
        data: Optional[bytes],
        reclaimed: Sequence[Tuple[int, int]] = (),
        cleared_tombstones: Sequence[str] = (),
    ) -> None:
        """Durably replace ``sources`` with one merged ``output`` segment.

        The write protocol mirrors ingest, with its own journal so the
        two can crash independently: (1) compaction journal durable →
        (2) output written to ``.tmp``, fsynced, atomically renamed
        into place → (3) manifest swap publishes the merge → (4)
        source files deleted → (5) journal retired.  A crash at any
        step is resolved by :meth:`recover` into exactly the pre- or
        post-merge store, never a hybrid.  ``output=None`` commits a
        merge that dropped every record (a manifest-only change).
        """
        self._check_serviceable()
        if not sources:
            raise StoreError("compaction needs at least one source segment")
        if (output is None) != (data is None):
            raise StoreError("output record and data must be supplied together")
        live = {record.filename: record for record in self._segments}
        for record in sources:
            if live.get(record.filename) != record:
                raise StoreError(
                    f"segment {record.filename} is not in the live manifest"
                )
        shards = {record.shard for record in sources}
        if len(shards) != 1:
            raise StoreError("compaction sources must share one shard")
        if output is not None:
            if output.shard != sources[0].shard:
                raise StoreError("output segment must live in the source shard")
            if output.filename in live:
                raise StoreError(
                    f"output filename {output.filename} is already live"
                )
        source_filenames = [record.filename for record in sources]
        journal = {
            "version": 1,
            "shard": sources[0].shard,
            "sources": source_filenames,
            "output": output.to_json() if output is not None else None,
            "reclaimed": [list(run) for run in reclaimed],
            "cleared_tombstones": sorted(cleared_tombstones),
        }
        try:
            journal_data = (json.dumps(journal, indent=2) + "\n").encode("utf-8")
            self._io.write_bytes(
                self.compaction_journal_path, journal_data, sync=True
            )
            self._io.fsync_dir(self._root)

            if output is not None and data is not None:
                path = self._root / output.filename
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.parent / (path.name + ".tmp")
                self._io.write_bytes(tmp, data, sync=True)
                self._io.replace(tmp, path)
                self._io.fsync_dir(path.parent)

            self._apply_compaction(
                source_filenames, output, reclaimed, cleared_tombstones
            )
            self._write_manifest()

            for record in sources:
                source_path = self._root / record.filename
                if source_path.exists():
                    self._io.remove(source_path)
            self._io.fsync_dir(self._root / f"shard-{sources[0].shard:03d}")

            self._io.remove(self.compaction_journal_path)
            self._io.fsync_dir(self._root)
        except OSError:
            # Disk state is at an unknown point of the protocol; block
            # further mutation from this handle until recovery runs.
            self._needs_recovery = True
            raise

        for name in source_filenames:
            self._blooms.pop(name, None)
        if output is not None:
            self._blooms.pop(output.filename, None)
        self._metrics.count("store.compaction_commits")

    # ------------------------------------------------------------------
    # Quarantine (used by repro.reliability.repair)
    # ------------------------------------------------------------------

    def _quarantine_destination(self, filename: str) -> Path:
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        base = filename.replace("/", "__")
        destination = self.quarantine_dir / base
        suffix = 0
        while destination.exists():
            suffix += 1
            destination = self.quarantine_dir / f"{base}.{suffix}"
        return destination

    def quarantine_segment(
        self,
        record: SegmentRecord,
        reason: str,
        replacement: Optional[Tuple[SegmentRecord, bytes]] = None,
    ) -> None:
        """Pull a damaged segment from serving, optionally salvaged.

        The file moves into ``quarantine/`` (it is evidence, not
        garbage), the manifest entry moves to the quarantined list, and
        when a salvage replacement is supplied its file is written
        durably and spliced in at the original manifest position so
        per-shard ingest order is preserved.
        """
        try:
            position = self._segments.index(record)
        except ValueError:
            raise StoreError(
                f"segment {record.filename} is not in the live manifest"
            ) from None
        if replacement is not None:
            new_record, data = replacement
            path = self._root / new_record.filename
            path.parent.mkdir(parents=True, exist_ok=True)
            self._io.write_bytes(path, data, sync=True)
        source = self._root / record.filename
        if source.exists():
            # This replace archives the *damaged* segment as evidence; it
            # never publishes freshly written bytes (the salvage payload
            # above is written sync=True before the manifest flips).
            self._io.replace(  # repro-lint: disable=REP009 -- evidence move, not a durable publish
                source, self._quarantine_destination(record.filename)
            )
        if replacement is not None:
            self._segments[position] = replacement[0]
        else:
            del self._segments[position]
        self._quarantined.append(QuarantinedSegment(record=record, reason=reason))
        self._write_manifest()
        self._cache.pop(record.shard, None)
        self._blooms.pop(record.filename, None)
        if replacement is not None:
            self._blooms.pop(replacement[0].filename, None)
        self._metrics.count("store.segments_quarantined")

    def drop_quarantined(self, entries: Sequence[QuarantinedSegment]) -> None:
        """Remove quarantine manifest entries (retention pruning).

        Each dropped entry's sequence span moves into the ``reclaimed``
        ledger so global sequence coverage stays fully accounted for;
        one atomic manifest replace publishes the change.  Deleting the
        quarantined *files* is the caller's job (see
        :func:`repro.reliability.repair.prune_quarantine`).
        """
        self._check_serviceable()
        if not entries:
            return
        for entry in entries:
            if entry not in self._quarantined:
                raise StoreError(
                    f"segment {entry.record.filename} is not quarantined"
                )
        spans: List[Tuple[int, int]] = []
        for entry in entries:
            self._quarantined.remove(entry)
            record = entry.record
            if record.runs:
                spans.extend(record.runs)
            else:
                spans.append((record.start_sequence, record.original_count))
        self._reclaimed = coalesce_runs(self._reclaimed + spans)
        try:
            self._write_manifest()
        except OSError:
            self._needs_recovery = True
            raise
        self._metrics.count("store.quarantine_pruned", len(entries))

    def rewrite_manifest(self) -> None:
        """Durably re-publish the current in-memory manifest state."""
        self._write_manifest()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def _load_segment(self, record: SegmentRecord) -> FingerprintDatabase:
        """Strictly load one segment through the IO seam."""
        data = self._io.read_bytes(self._root / record.filename)
        return load_database(io.BytesIO(data))

    def read_segment(self, record: SegmentRecord) -> FingerprintDatabase:
        """Strictly load one live segment (compaction's merge input)."""
        return self._load_segment(record)

    def segment_path(self, record: SegmentRecord) -> Path:
        """On-disk location of a segment file."""
        return self._root / record.filename

    def next_segment_filename(self, shard: int) -> str:
        """Store-relative filename the next segment of ``shard`` gets."""
        if not 0 <= shard < self._n_shards:
            raise StoreError(
                f"shard {shard} out of range for {self._n_shards} shards"
            )
        return f"shard-{shard:03d}/segment-{self._next_segment_id(shard):06d}.pcfp"

    def _segment_bloom(self, record: SegmentRecord) -> Optional[BloomFilter]:
        """Cached bloom filter of a segment (``None`` when it has none)."""
        if record.filename not in self._blooms:
            self._blooms[record.filename] = load_segment_bloom(
                self._io, self._root / record.filename
            )
        return self._blooms[record.filename]

    def _known_keys(self) -> set:
        known: set = set()
        for shard in range(self._n_shards):
            cached = self._cache.get(shard)
            if cached is not None:
                known.update(cached.sequences)
            else:
                for segment in self._segments:
                    if segment.shard == shard:
                        known.update(self._load_segment(segment).keys())
        known.update(self._tombstones)
        return known

    def _find_existing(self, keys: Sequence[str]) -> set:
        """Subset of ``keys`` already present in the store.

        The bloom-accelerated replacement for intersecting against
        :meth:`_known_keys`: per shard, a warm replica answers from
        memory, and a cold shard only loads the segments whose filter
        admits at least one of the probed keys.  Tombstoned keys count
        as present — their sequence is still assigned, so the key
        cannot be re-ingested until compaction reclaims it.
        """
        clashes = {key for key in keys if key in self._tombstones}
        by_shard: Dict[int, List[str]] = {}
        for key in keys:
            by_shard.setdefault(self.shard_for_key(key), []).append(key)
        for shard, shard_keys in by_shard.items():
            cached = self._cache.get(shard)
            if cached is not None:
                clashes.update(
                    key for key in shard_keys if key in cached.sequences
                )
                continue
            for segment in self._segments:
                if segment.shard != shard:
                    continue
                bloom = self._segment_bloom(segment)
                if bloom is None:
                    candidates = shard_keys
                else:
                    candidates = [key for key in shard_keys if key in bloom]
                if not candidates:
                    self._metrics.count("store.bloom_segment_skips")
                    continue
                stored = set(self._load_segment(segment).keys())
                clashes.update(key for key in candidates if key in stored)
        return clashes

    def load_shard(self, shard: int) -> LoadedShard:
        """Replica of one shard, reading its segments on first access.

        Entries are inserted in sequence order (= ingest order within
        the shard); the per-key global sequence map supports the
        cross-shard first-match merge.  Salvaged segments map their
        surviving records back to original offsets, so sequences are
        stable across repair.  Replicas are cached; cache hits and cold
        loads are counted in the metrics.
        """
        self._check_serviceable()
        if not 0 <= shard < self._n_shards:
            raise StoreError(
                f"shard {shard} out of range for {self._n_shards} shards"
            )
        cached = self._cache.get(shard)
        if cached is not None:
            self._metrics.count("store.shard_cache_hits")
            return cached
        self._metrics.count("store.shard_loads")
        with self._metrics.time("store.shard_load"), obs_span(
            "store.shard_load", shard=shard
        ):
            database = IndexedFingerprintDatabase(
                params=self._index_params, metrics=self._metrics
            )
            sequences: Dict[str, int] = {}
            shard_segments = sorted(
                (s for s in self._segments if s.shard == shard),
                key=lambda record: record.start_sequence,
            )
            for segment in shard_segments:
                segment_db = self._load_segment(segment)
                if len(segment_db) != segment.count:
                    raise StoreError(
                        f"segment {segment.filename} holds {len(segment_db)} "
                        f"records, manifest says {segment.count}"
                    )
                for sequence, (key, fingerprint) in zip(
                    segment.sequences(), segment_db.items()
                ):
                    if key in self._tombstones:
                        # Deleted but not yet compacted away: the replica
                        # must answer as if the record were gone.
                        continue
                    database.add(key, fingerprint)
                    sequences[key] = sequence
        replica = LoadedShard(database=database, sequences=sequences)
        self._cache[shard] = replica
        return replica

    def loaded_shards(self) -> List[int]:
        """Shard ids currently resident in the cache."""
        return sorted(self._cache)

    def evict(self, shard: Optional[int] = None) -> None:
        """Drop one shard replica (or all of them) from the cache."""
        if shard is None:
            self._cache.clear()
        else:
            self._cache.pop(shard, None)

    def all_keys(self) -> List[str]:
        """Every stored key in global sequence order (loads all shards)."""
        rows: List[Tuple[int, str]] = []
        for shard in range(self._n_shards):
            replica = self.load_shard(shard)
            rows.extend(
                (sequence, key) for key, sequence in replica.sequences.items()
            )
        rows.sort()
        return [key for _sequence, key in rows]


def coalesce_runs(runs: Iterable[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Sort ``(start, count)`` sequence runs and merge the contiguous ones.

    Zero-length runs are dropped; overlapping and adjacent runs fuse,
    so the result is the canonical minimal representation — the
    manifest's ``reclaimed`` ledger and compacted segments' ``runs``
    both go through here.
    """
    ordered = sorted(
        (int(start), int(count)) for start, count in runs if int(count) > 0
    )
    merged: List[Tuple[int, int]] = []
    for start, count in ordered:
        if merged and start <= merged[-1][0] + merged[-1][1]:
            last_start, last_count = merged[-1]
            merged[-1] = (
                last_start,
                max(last_count, start + count - last_start),
            )
        else:
            merged.append((start, count))
    return merged


def _balanced_boundaries(keys: Sequence[str], n_shards: int) -> List[str]:
    """Split keys partitioning ``keys`` into ``n_shards`` even ranges.

    The boundaries are drawn from the sorted key sample itself (the
    classic range-sharding bootstrap); each boundary is the last key of
    its shard's range (see :meth:`ShardedFingerprintStore.shard_for_key`).
    """
    ordered = sorted(set(keys))
    if len(ordered) < n_shards:
        # Too few distinct keys to split evenly; duplicate the tail so
        # later keys still route deterministically.
        return ordered[:-1] if len(ordered) > 1 else []
    boundaries = []
    for index in range(1, n_shards):
        position = index * len(ordered) // n_shards - 1
        boundaries.append(ordered[max(position, 0)])
    return boundaries
