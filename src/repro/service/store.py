"""Persistent, sharded fingerprint store with append-only segments.

The supply-chain attacker accumulates fingerprints for years; the §4
model puts the database at a fingerprint per device — 10^5-10^6
entries and beyond.  Loading all of that to answer one query is
wasteful, and rewriting one monolithic file per interception batch is
worse.  This store borrows the standard LSM-ish layout used by
storage engines:

* fingerprints live in **append-only segment files**, each an ordinary
  :func:`repro.core.serialize.dump_database` stream — one new segment
  per ingested batch per shard, never rewritten in place, written in
  the checksummed v2 frame format (legacy v1 segments stay readable);
* a JSON **manifest** records the schema version, the shard split
  keys, every segment (shard, file, entry count, starting global
  sequence number), any quarantined segments, and the next sequence to
  assign;
* entries are **key-range sharded**: the first ingested batch picks
  balanced lexicographic split keys, and every later key routes to the
  shard owning its range, so point lookups and ingests touch one
  shard while batch queries fan out over all of them.

Global **sequence numbers** (assigned at ingest, recorded per segment)
preserve Algorithm 2's "first fingerprint below threshold" semantics
across shards: per-shard answers carry the sequence of their match and
the merge step takes the minimum — identical to a linear scan over one
big database in ingest order.

Ingest is **crash-safe**: a write-ahead journal naming the planned
segments is made durable before any segment byte lands, every file is
fsynced before the manifest swap publishes it, the swap itself is an
fsync + atomic ``os.replace`` + directory fsync, and the journal is
only then retired.  :meth:`ShardedFingerprintStore.recover` (run
automatically on open) resolves any crash point by rolling the journal
forward (all planned segments verified on disk) or back (planned files
deleted) — never a hybrid, and never touching previously committed
segments.  All filesystem traffic goes through a
:class:`repro.reliability.faults.StorageIO` seam so the chaos tests
can enumerate crash points deterministically.

Shards load lazily into :class:`IndexedFingerprintDatabase` replicas
and are cached; :class:`~repro.service.metrics.ServiceMetrics` counts
loads, cache hits, recoveries and quarantines.
"""

from __future__ import annotations

import bisect
import io
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.fingerprint import Fingerprint
from repro.core.identify import FingerprintDatabase
from repro.core.serialize import dump_database, load_database
from repro.obs.trace import span as obs_span
from repro.reliability.faults import StorageIO
from repro.service.indexed import IndexedFingerprintDatabase, IndexParams
from repro.service.metrics import ServiceMetrics

_MANIFEST_NAME = "manifest.json"
_MANIFEST_TMP_NAME = "manifest.json.tmp"
_JOURNAL_NAME = "ingest-journal.json"
_QUARANTINE_DIR = "quarantine"
_STORE_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)
_SEGMENT_ID_PATTERN = re.compile(r"segment-(\d+)")


class StoreError(ValueError):
    """Raised on a malformed store directory or an invalid ingest."""


@dataclass(frozen=True)
class SegmentRecord:
    """One append-only segment file as recorded in the manifest.

    ``omitted`` lists the original record offsets a repair dropped from
    a salvaged segment: the k-th surviving record's global sequence is
    ``start_sequence +`` its *original* offset, so sequence numbers —
    and therefore Algorithm 2 priority — survive salvage intact.
    """

    shard: int
    filename: str
    count: int
    start_sequence: int
    omitted: Tuple[int, ...] = ()

    @property
    def original_count(self) -> int:
        """Record count before any salvage dropped corrupt records."""
        return self.count + len(self.omitted)

    def offsets(self) -> List[int]:
        """Original offsets of the surviving records, in stored order."""
        if not self.omitted:
            return list(range(self.count))
        dropped = set(self.omitted)
        return [
            offset
            for offset in range(self.original_count)
            if offset not in dropped
        ]

    def to_json(self) -> Dict[str, object]:
        """Manifest representation of this segment."""
        payload: Dict[str, object] = {
            "shard": self.shard,
            "filename": self.filename,
            "count": self.count,
            "start_sequence": self.start_sequence,
        }
        if self.omitted:
            payload["omitted"] = list(self.omitted)
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "SegmentRecord":
        """Inverse of :meth:`to_json`."""
        return cls(
            shard=int(payload["shard"]),
            filename=str(payload["filename"]),
            count=int(payload["count"]),
            start_sequence=int(payload["start_sequence"]),
            omitted=tuple(int(o) for o in payload.get("omitted", ())),
        )


@dataclass(frozen=True)
class QuarantinedSegment:
    """A segment pulled from serving because its content is damaged."""

    record: SegmentRecord
    reason: str

    def to_json(self) -> Dict[str, object]:
        """Manifest representation."""
        return {"record": self.record.to_json(), "reason": self.reason}

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "QuarantinedSegment":
        """Inverse of :meth:`to_json`."""
        return cls(
            record=SegmentRecord.from_json(payload["record"]),
            reason=str(payload["reason"]),
        )


@dataclass
class RecoveryReport:
    """What :meth:`ShardedFingerprintStore.recover` did."""

    action: str = "none"  # none | committed | rolled_forward | rolled_back
    journal_found: bool = False
    orphans_removed: List[str] = field(default_factory=list)
    detail: str = ""


@dataclass
class LoadedShard:
    """An in-memory replica of one shard.

    ``database`` preserves the shard's ingest order (so its indexed
    identification returns the shard's earliest match), ``sequences``
    maps each key to its global sequence for the cross-shard merge.
    """

    database: IndexedFingerprintDatabase
    sequences: Dict[str, int]


class ShardedFingerprintStore:
    """Durable fingerprint store: manifest + journal + shards + segments.

    Open an existing store (or create an empty one) by constructing
    with its directory path; ingest batches with :meth:`ingest`; get a
    queryable shard replica with :meth:`load_shard`.  A pending ingest
    journal found at open is resolved by :meth:`recover` before the
    store serves anything.
    """

    def __init__(
        self,
        root: Union[str, Path],
        n_shards: int = 8,
        index_params: IndexParams = IndexParams(),
        metrics: Optional[ServiceMetrics] = None,
        storage_io: Optional[StorageIO] = None,
    ) -> None:
        self._root = Path(root)
        self._index_params = index_params
        self._metrics = metrics if metrics is not None else ServiceMetrics()
        self._io = storage_io if storage_io is not None else StorageIO()
        self._cache: Dict[int, LoadedShard] = {}
        self._quarantined: List[QuarantinedSegment] = []
        self._needs_recovery = False
        self._last_recovery: Optional[RecoveryReport] = None
        manifest_path = self._root / _MANIFEST_NAME
        if manifest_path.exists():
            self._apply_manifest(self._read_manifest(manifest_path))
            if self.journal_path.exists():
                self.recover()
        else:
            if n_shards < 1:
                raise StoreError(f"n_shards must be >= 1, got {n_shards}")
            self._root.mkdir(parents=True, exist_ok=True)
            self._n_shards = n_shards
            self._boundaries: List[str] = []
            self._segments: List[SegmentRecord] = []
            self._next_sequence = 0
            self._write_manifest()

    # ------------------------------------------------------------------
    # Manifest handling
    # ------------------------------------------------------------------

    def _read_manifest(self, path: Path) -> Dict[str, object]:
        try:
            payload = json.loads(self._io.read_bytes(path).decode("utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as error:
            raise StoreError(f"unreadable manifest at {path}: {error}") from error
        if payload.get("version") not in _SUPPORTED_VERSIONS:
            raise StoreError(
                f"unsupported store version {payload.get('version')!r}"
            )
        return payload

    def _apply_manifest(self, payload: Dict[str, object]) -> None:
        self._n_shards = int(payload["n_shards"])
        self._boundaries = [str(boundary) for boundary in payload["boundaries"]]
        self._segments = [
            SegmentRecord.from_json(record) for record in payload["segments"]
        ]
        self._next_sequence = int(payload["next_sequence"])
        self._quarantined = [
            QuarantinedSegment.from_json(record)
            for record in payload.get("quarantined", [])
        ]

    def _manifest_payload(self) -> Dict[str, object]:
        return {
            "version": _STORE_VERSION,
            "n_shards": self._n_shards,
            "boundaries": self._boundaries,
            "segments": [segment.to_json() for segment in self._segments],
            "quarantined": [entry.to_json() for entry in self._quarantined],
            "next_sequence": self._next_sequence,
        }

    def _write_manifest(self) -> None:
        """Durably publish the in-memory manifest state.

        fsync the temporary before the atomic replace (so a power cut
        can never publish a manifest whose bytes are not on disk) and
        fsync the directory after it (so the rename itself survives).
        """
        payload = self._manifest_payload()
        path = self._root / _MANIFEST_NAME
        tmp = self._root / _MANIFEST_TMP_NAME
        data = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
        self._io.write_bytes(tmp, data, sync=True)
        self._io.replace(tmp, path)
        self._io.fsync_dir(self._root)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def root(self) -> Path:
        """Store directory."""
        return self._root

    @property
    def journal_path(self) -> Path:
        """Location of the write-ahead ingest journal."""
        return self._root / _JOURNAL_NAME

    @property
    def quarantine_dir(self) -> Path:
        """Directory quarantined segment files are moved into."""
        return self._root / _QUARANTINE_DIR

    @property
    def n_shards(self) -> int:
        """Number of key-range shards."""
        return self._n_shards

    @property
    def boundaries(self) -> List[str]:
        """Lexicographic split keys (``n_shards - 1`` of them, once set)."""
        return list(self._boundaries)

    @property
    def segments(self) -> List[SegmentRecord]:
        """Every live segment in manifest (= ingest) order."""
        return list(self._segments)

    @property
    def quarantined(self) -> List[QuarantinedSegment]:
        """Segments pulled from serving by :meth:`quarantine_segment`."""
        return list(self._quarantined)

    def __len__(self) -> int:
        return sum(segment.count for segment in self._segments)

    @property
    def metrics(self) -> ServiceMetrics:
        """Shared instrumentation sink."""
        return self._metrics

    @property
    def storage_io(self) -> StorageIO:
        """The IO seam all durable operations go through."""
        return self._io

    def shard_for_key(self, key: str) -> int:
        """Shard owning ``key``'s range (0 before boundaries exist).

        Shard ``i`` owns keys in ``(boundaries[i-1], boundaries[i]]``
        with open ends at the extremes.
        """
        if not self._boundaries:
            return 0
        return bisect.bisect_left(self._boundaries, key)

    def shard_key_range(self, shard: int) -> Tuple[Optional[str], Optional[str]]:
        """Key range ``(low_exclusive, high_inclusive)`` a shard owns.

        ``None`` marks an open end; with no boundaries fixed yet, shard
        0 owns everything.
        """
        if not 0 <= shard < self._n_shards:
            raise StoreError(
                f"shard {shard} out of range for {self._n_shards} shards"
            )
        if not self._boundaries:
            return (None, None)
        low = self._boundaries[shard - 1] if shard > 0 else None
        high = (
            self._boundaries[shard]
            if shard < len(self._boundaries)
            else None
        )
        return (low, high)

    def degraded_shards(self) -> List[int]:
        """Shards known to be missing data (quarantined or salvaged).

        Answers from these shards may be incomplete: a fingerprint
        ingested into them might have been lost to corruption, so a
        query that should match it will fall through.
        """
        shards = {entry.record.shard for entry in self._quarantined}
        shards.update(
            segment.shard for segment in self._segments if segment.omitted
        )
        return sorted(shards)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def _check_serviceable(self) -> None:
        if self._needs_recovery:
            raise StoreError(
                "a crashed ingest left this store handle inconsistent; "
                "call recover() or reopen the store"
            )

    def _next_segment_id(self, shard: int) -> int:
        """Next unused segment number for a shard.

        Derived from filenames across live *and* quarantined segments,
        so a quarantine never frees a number for reuse (reuse would let
        a new segment collide with a file sitting in quarantine's
        history).
        """
        used = [-1]
        for record in self._segments + [q.record for q in self._quarantined]:
            if record.shard != shard:
                continue
            match = _SEGMENT_ID_PATTERN.search(record.filename)
            if match:
                used.append(int(match.group(1)))
        return max(used) + 1

    def ingest(
        self,
        entries: Union[FingerprintDatabase, Iterable[Tuple[str, Fingerprint]]],
    ) -> List[SegmentRecord]:
        """Append a batch of fingerprints; returns the new segments.

        ``entries`` is a database or an iterable of ``(key,
        fingerprint)`` pairs; their order defines the global sequence
        numbers assigned (and therefore Algorithm 2 priority).  The
        first non-empty ingest of a fresh store also fixes the shard
        boundaries from the batch's sorted keys.  Keys already present
        in the store (or repeated within the batch) are rejected.

        The write protocol — journal, then segments, then the manifest
        swap, then journal retirement, every step durable — means a
        crash at any point either commits the whole batch or none of
        it; previously committed fingerprints are never at risk.
        """
        self._check_serviceable()
        if isinstance(entries, FingerprintDatabase):
            batch = list(entries.items())
        else:
            batch = list(entries)
        if not batch:
            return []
        keys = [key for key, _fingerprint in batch]
        if len(set(keys)) != len(keys):
            raise StoreError("duplicate keys within ingest batch")
        existing = self._known_keys()
        clashes = existing.intersection(keys)
        if clashes:
            raise StoreError(
                f"keys already stored: {sorted(clashes)[:5]}"
                f"{'...' if len(clashes) > 5 else ''}"
            )
        new_boundaries = list(self._boundaries)
        if not new_boundaries and self._n_shards > 1:
            new_boundaries = _balanced_boundaries(keys, self._n_shards)

        def route(key: str) -> int:
            if not new_boundaries:
                return 0
            return bisect.bisect_left(new_boundaries, key)

        per_shard: Dict[int, List[Tuple[int, str, Fingerprint]]] = {}
        for offset, (key, fingerprint) in enumerate(batch):
            sequence = self._next_sequence + offset
            per_shard.setdefault(route(key), []).append(
                (sequence, key, fingerprint)
            )

        planned: List[Tuple[SegmentRecord, bytes]] = []
        for shard in sorted(per_shard):
            rows = per_shard[shard]
            segment_id = self._next_segment_id(shard)
            filename = f"shard-{shard:03d}/segment-{segment_id:06d}.pcfp"
            segment_db = FingerprintDatabase()
            for _sequence, key, fingerprint in rows:
                segment_db.add(key, fingerprint)
            buffer = io.BytesIO()
            dump_database(segment_db, buffer)
            planned.append(
                (
                    SegmentRecord(
                        shard=shard,
                        filename=filename,
                        count=len(rows),
                        start_sequence=rows[0][0],
                    ),
                    buffer.getvalue(),
                )
            )

        try:
            self._commit_ingest(planned, new_boundaries, len(batch))
        except OSError:
            # Disk state is now at an unknown point of the protocol;
            # refuse further mutation from this handle until recovery.
            self._needs_recovery = True
            raise

        created = [record for record, _data in planned]
        self._segments.extend(created)
        self._boundaries = new_boundaries
        self._next_sequence += len(batch)
        for record, _data in planned:
            cached = self._cache.get(record.shard)
            if cached is None:
                continue
            # Keep a warm cache coherent instead of dropping it.
            for sequence, key, fingerprint in per_shard[record.shard]:
                cached.database.add(key, fingerprint)
                cached.sequences[key] = sequence
        return created

    def _commit_ingest(
        self,
        planned: List[Tuple[SegmentRecord, bytes]],
        new_boundaries: List[str],
        batch_size: int,
    ) -> None:
        """The durable half of :meth:`ingest` — journal → segments →
        manifest swap → journal retirement, every step fsynced."""
        journal = {
            "version": 1,
            "next_sequence_before": self._next_sequence,
            "next_sequence_after": self._next_sequence + batch_size,
            "boundaries": new_boundaries,
            "planned": [record.to_json() for record, _data in planned],
        }
        journal_data = (json.dumps(journal, indent=2) + "\n").encode("utf-8")
        self._io.write_bytes(self.journal_path, journal_data, sync=True)
        self._io.fsync_dir(self._root)

        for record, data in planned:
            path = self._root / record.filename
            path.parent.mkdir(parents=True, exist_ok=True)
            self._io.write_bytes(path, data, sync=True)

        manifest = self._manifest_payload()
        manifest["segments"] = [
            segment.to_json() for segment in self._segments
        ] + [record.to_json() for record, _data in planned]
        manifest["boundaries"] = new_boundaries
        manifest["next_sequence"] = self._next_sequence + batch_size
        data = (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode("utf-8")
        tmp = self._root / _MANIFEST_TMP_NAME
        self._io.write_bytes(tmp, data, sync=True)
        self._io.replace(tmp, self._root / _MANIFEST_NAME)
        self._io.fsync_dir(self._root)

        self._io.remove(self.journal_path)
        self._io.fsync_dir(self._root)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Resolve any interrupted ingest; idempotent, safe to re-run.

        Re-reads the manifest from disk, then: a journal whose batch
        already reached the manifest is simply retired ("committed"); a
        journal whose planned segments all exist and verify is rolled
        forward (manifest rewritten to include them); anything else is
        rolled back (planned files deleted).  Finally, segment files
        referenced by neither the manifest nor quarantine — orphans
        from a pre-journal crash or a torn rollback — are swept.
        Committed fingerprints are never touched.
        """
        report = RecoveryReport()
        manifest_path = self._root / _MANIFEST_NAME
        if manifest_path.exists():
            self._apply_manifest(self._read_manifest(manifest_path))
        journal = None
        if self.journal_path.exists():
            report.journal_found = True
            try:
                journal = json.loads(
                    self._io.read_bytes(self.journal_path).decode("utf-8")
                )
            except (OSError, UnicodeDecodeError, json.JSONDecodeError):
                journal = None  # torn journal write: nothing was planned yet
        if journal is not None:
            planned = [
                SegmentRecord.from_json(record) for record in journal["planned"]
            ]
            if self._next_sequence >= int(journal["next_sequence_after"]):
                report.action = "committed"
                report.detail = "manifest swap had already completed"
            elif all(self._segment_verifies(record) for record in planned):
                self._segments.extend(planned)
                self._boundaries = [str(b) for b in journal["boundaries"]]
                self._next_sequence = int(journal["next_sequence_after"])
                self._write_manifest()
                report.action = "rolled_forward"
                report.detail = (
                    f"replayed {len(planned)} planned segment(s) into the manifest"
                )
                self._metrics.count("store.recovery_rolled_forward")
            else:
                for record in planned:
                    path = self._root / record.filename
                    if path.exists():
                        self._io.remove(path)
                report.action = "rolled_back"
                report.detail = (
                    f"dropped {len(planned)} incomplete planned segment(s)"
                )
                self._metrics.count("store.recovery_rolled_back")
        elif report.journal_found:
            report.action = "rolled_back"
            report.detail = "journal itself was torn; no segments were planned"
            self._metrics.count("store.recovery_rolled_back")
        if report.journal_found:
            if self.journal_path.exists():
                self._io.remove(self.journal_path)
            self._io.fsync_dir(self._root)
            self._metrics.count("store.recoveries")
        # Sweep leftovers: a stale manifest temporary and any segment
        # file no manifest entry references.
        tmp = self._root / _MANIFEST_TMP_NAME
        if tmp.exists():
            self._io.remove(tmp)
        referenced = {record.filename for record in self._segments}
        for orphan in sorted(self._root.glob("shard-*/*.pcfp")):
            relative = orphan.relative_to(self._root).as_posix()
            if relative not in referenced:
                self._io.remove(orphan)
                report.orphans_removed.append(relative)
        self._cache.clear()
        self._needs_recovery = False
        if report.journal_found or report.orphans_removed:
            # Stash non-trivial outcomes so a later repair pass can
            # report a recovery that ran implicitly at open time.
            self._last_recovery = report
        return report

    def take_recovery_report(self) -> Optional[RecoveryReport]:
        """Most recent non-trivial recovery, consumed exactly once.

        Opening a store auto-runs :meth:`recover`; this lets
        :func:`repro.reliability.repair.repair_store` attribute that
        open-time recovery in its own report instead of losing it.
        """
        report, self._last_recovery = self._last_recovery, None
        return report

    def _segment_verifies(self, record: SegmentRecord) -> bool:
        """True when a planned segment is fully, validly on disk."""
        path = self._root / record.filename
        if not path.exists():
            return False
        try:
            database = self._load_segment(record)
        except (OSError, ValueError):
            return False
        return len(database) == record.count

    # ------------------------------------------------------------------
    # Quarantine (used by repro.reliability.repair)
    # ------------------------------------------------------------------

    def _quarantine_destination(self, filename: str) -> Path:
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        base = filename.replace("/", "__")
        destination = self.quarantine_dir / base
        suffix = 0
        while destination.exists():
            suffix += 1
            destination = self.quarantine_dir / f"{base}.{suffix}"
        return destination

    def quarantine_segment(
        self,
        record: SegmentRecord,
        reason: str,
        replacement: Optional[Tuple[SegmentRecord, bytes]] = None,
    ) -> None:
        """Pull a damaged segment from serving, optionally salvaged.

        The file moves into ``quarantine/`` (it is evidence, not
        garbage), the manifest entry moves to the quarantined list, and
        when a salvage replacement is supplied its file is written
        durably and spliced in at the original manifest position so
        per-shard ingest order is preserved.
        """
        try:
            position = self._segments.index(record)
        except ValueError:
            raise StoreError(
                f"segment {record.filename} is not in the live manifest"
            ) from None
        if replacement is not None:
            new_record, data = replacement
            path = self._root / new_record.filename
            path.parent.mkdir(parents=True, exist_ok=True)
            self._io.write_bytes(path, data, sync=True)
        source = self._root / record.filename
        if source.exists():
            self._io.replace(source, self._quarantine_destination(record.filename))
        if replacement is not None:
            self._segments[position] = replacement[0]
        else:
            del self._segments[position]
        self._quarantined.append(QuarantinedSegment(record=record, reason=reason))
        self._write_manifest()
        self._cache.pop(record.shard, None)
        self._metrics.count("store.segments_quarantined")

    def rewrite_manifest(self) -> None:
        """Durably re-publish the current in-memory manifest state."""
        self._write_manifest()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def _load_segment(self, record: SegmentRecord) -> FingerprintDatabase:
        """Strictly load one segment through the IO seam."""
        data = self._io.read_bytes(self._root / record.filename)
        return load_database(io.BytesIO(data))

    def _known_keys(self) -> set:
        known: set = set()
        for shard in range(self._n_shards):
            cached = self._cache.get(shard)
            if cached is not None:
                known.update(cached.sequences)
            else:
                for segment in self._segments:
                    if segment.shard == shard:
                        known.update(self._load_segment(segment).keys())
        return known

    def load_shard(self, shard: int) -> LoadedShard:
        """Replica of one shard, reading its segments on first access.

        Entries are inserted in sequence order (= ingest order within
        the shard); the per-key global sequence map supports the
        cross-shard first-match merge.  Salvaged segments map their
        surviving records back to original offsets, so sequences are
        stable across repair.  Replicas are cached; cache hits and cold
        loads are counted in the metrics.
        """
        self._check_serviceable()
        if not 0 <= shard < self._n_shards:
            raise StoreError(
                f"shard {shard} out of range for {self._n_shards} shards"
            )
        cached = self._cache.get(shard)
        if cached is not None:
            self._metrics.count("store.shard_cache_hits")
            return cached
        self._metrics.count("store.shard_loads")
        with self._metrics.time("store.shard_load"), obs_span(
            "store.shard_load", shard=shard
        ):
            database = IndexedFingerprintDatabase(
                params=self._index_params, metrics=self._metrics
            )
            sequences: Dict[str, int] = {}
            shard_segments = sorted(
                (s for s in self._segments if s.shard == shard),
                key=lambda record: record.start_sequence,
            )
            for segment in shard_segments:
                segment_db = self._load_segment(segment)
                if len(segment_db) != segment.count:
                    raise StoreError(
                        f"segment {segment.filename} holds {len(segment_db)} "
                        f"records, manifest says {segment.count}"
                    )
                offsets = segment.offsets()
                for offset, (key, fingerprint) in zip(
                    offsets, segment_db.items()
                ):
                    database.add(key, fingerprint)
                    sequences[key] = segment.start_sequence + offset
        replica = LoadedShard(database=database, sequences=sequences)
        self._cache[shard] = replica
        return replica

    def loaded_shards(self) -> List[int]:
        """Shard ids currently resident in the cache."""
        return sorted(self._cache)

    def evict(self, shard: Optional[int] = None) -> None:
        """Drop one shard replica (or all of them) from the cache."""
        if shard is None:
            self._cache.clear()
        else:
            self._cache.pop(shard, None)

    def all_keys(self) -> List[str]:
        """Every stored key in global sequence order (loads all shards)."""
        rows: List[Tuple[int, str]] = []
        for shard in range(self._n_shards):
            replica = self.load_shard(shard)
            rows.extend(
                (sequence, key) for key, sequence in replica.sequences.items()
            )
        rows.sort()
        return [key for _sequence, key in rows]


def _balanced_boundaries(keys: Sequence[str], n_shards: int) -> List[str]:
    """Split keys partitioning ``keys`` into ``n_shards`` even ranges.

    The boundaries are drawn from the sorted key sample itself (the
    classic range-sharding bootstrap); each boundary is the last key of
    its shard's range (see :meth:`ShardedFingerprintStore.shard_for_key`).
    """
    ordered = sorted(set(keys))
    if len(ordered) < n_shards:
        # Too few distinct keys to split evenly; duplicate the tail so
        # later keys still route deterministically.
        return ordered[:-1] if len(ordered) > 1 else []
    boundaries = []
    for index in range(1, n_shards):
        position = index * len(ordered) // n_shards - 1
        boundaries.append(ordered[max(position, 0)])
    return boundaries
