"""Batch identification service — the attacker at nation-state scale.

The paper's §4 attacker model assumes a fingerprint per device —
millions of system-level fingerprints queried continuously as
approximate outputs are scraped.  :mod:`repro.core` provides the
*algorithms* (Algorithm 2 identification, Algorithm 3 distance,
Algorithm 4 clustering); this subpackage provides the *serving layer*
that makes them answer at that scale:

* :mod:`repro.service.metrics` — counters and latency histograms so
  every stage of the service is observable;
* :mod:`repro.service.indexed` — :class:`IndexedFingerprintDatabase`,
  a drop-in :class:`~repro.core.identify.FingerprintDatabase` that
  answers Algorithm-2 queries through a MinHash/LSH candidate filter
  plus exact re-verification instead of a linear scan;
* :mod:`repro.service.store` — a persistent, sharded, append-only
  fingerprint store layered on :mod:`repro.core.serialize`: journaled
  crash-safe ingest, idempotent recovery, checksummed v2 segments,
  quarantine bookkeeping, lazy per-shard loading;
* :mod:`repro.service.batch` — a batch query engine that fans shards
  out over a worker pool (with retry, backoff and per-shard timeouts,
  degrading instead of failing when shards are unreadable) and routes
  unmatched residuals to the online clusterer.

Fault injection and offline verify/repair live in
:mod:`repro.reliability`.  The CLI front ends are ``python -m repro
serve-batch`` / ``verify-store`` / ``repair``.
"""

from repro.service.batch import (
    BatchQuery,
    BatchReport,
    BatchIdentificationService,
    DegradedShard,
    QueryResult,
)
from repro.service.indexed import IndexedFingerprintDatabase, IndexParams
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.store import (
    QuarantinedSegment,
    RecoveryReport,
    SegmentRecord,
    ShardedFingerprintStore,
    StoreError,
)

__all__ = [
    "BatchQuery",
    "BatchReport",
    "BatchIdentificationService",
    "DegradedShard",
    "QueryResult",
    "IndexedFingerprintDatabase",
    "IndexParams",
    "LatencyHistogram",
    "QuarantinedSegment",
    "RecoveryReport",
    "SegmentRecord",
    "ServiceMetrics",
    "ShardedFingerprintStore",
    "StoreError",
]
