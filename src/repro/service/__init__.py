"""Batch identification service — the attacker at nation-state scale.

The paper's §4 attacker model assumes a fingerprint per device —
millions of system-level fingerprints queried continuously as
approximate outputs are scraped.  :mod:`repro.core` provides the
*algorithms* (Algorithm 2 identification, Algorithm 3 distance,
Algorithm 4 clustering); this subpackage provides the *serving layer*
that makes them answer at that scale:

* :mod:`repro.service.metrics` — counters and latency histograms so
  every stage of the service is observable;
* :mod:`repro.service.indexed` — :class:`IndexedFingerprintDatabase`,
  a drop-in :class:`~repro.core.identify.FingerprintDatabase` that
  answers Algorithm-2 queries through a MinHash/LSH candidate filter
  plus exact re-verification instead of a linear scan;
* :mod:`repro.service.store` — a persistent, sharded, append-only
  fingerprint store layered on :mod:`repro.core.serialize`: journaled
  crash-safe ingest, idempotent recovery, checksummed v2 segments,
  quarantine bookkeeping, lazy per-shard loading;
* :mod:`repro.service.batch` — a batch query engine that fans shards
  out over a worker pool (with retry, backoff and per-shard timeouts,
  degrading instead of failing when shards are unreadable) and routes
  unmatched residuals to the online clusterer;
* :mod:`repro.service.supervisor` — worker supervision: crashed
  workers restart in fresh threads with capped exponential backoff and
  escalate to a machine-readable fatal report when the budget runs out;
* :mod:`repro.service.stream` — the supervised streaming pipeline:
  bounded-queue ingest with backpressure and admission control,
  validation quarantine, per-shard circuit breaking, checkpointed
  exactly-once ``--resume`` and graceful SIGTERM drain;
* :mod:`repro.service.placement` / :mod:`repro.service.rpc` /
  :mod:`repro.service.cluster` — the process-parallel tier:
  consistent-hash placement of partitions onto worker *processes*
  with R-way replication, a journaled crash-safe placement store,
  pipe-RPC workers that survive SIGKILL chaos, hedged replica reads,
  health-checked failover and jittered restarts.

Fault injection and offline verify/repair live in
:mod:`repro.reliability`.  The CLI front ends are ``python -m repro
serve-batch`` / ``stream`` / ``quarantine`` / ``verify-store`` /
``repair``.
"""

from repro.service.batch import (
    SCHEMA_VERSION,
    BatchQuery,
    BatchReport,
    BatchIdentificationService,
    DegradedShard,
    QueryResult,
    merge_degraded,
)
from repro.service.indexed import IndexedFingerprintDatabase, IndexParams
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.store import (
    QuarantinedSegment,
    RecoveryReport,
    SegmentRecord,
    ShardedFingerprintStore,
    StoreError,
)
from repro.service.supervisor import SupervisorEscalation, WorkerSupervisor

# stream imports from batch/store/supervisor; keep it last.
from repro.service.stream import (
    Admission,
    BoundedObservationQueue,
    IdentificationEngine,
    ObservationError,
    QuarantineEntry,
    QuarantineRetryReport,
    StreamCheckpoint,
    StreamError,
    StreamReport,
    StreamSession,
    StreamingIdentificationService,
    install_signal_handlers,
    list_quarantine,
    observation_records,
    retry_quarantine,
    validate_observation,
)

# cluster imports from batch/placement/rpc/store/supervisor; after stream.
from repro.service.cluster import (
    ClusterConfig,
    ClusterService,
    ClusterVerification,
    build_cluster,
    verify_cluster,
)
from repro.service.placement import (
    PlacementError,
    PlacementMap,
    PlacementStore,
    stable_key_hash,
)
from repro.service.rpc import (
    WorkerDied,
    WorkerError,
    WorkerHandle,
    WorkerTimeout,
)

__all__ = [
    "SCHEMA_VERSION",
    "Admission",
    "BatchQuery",
    "BatchReport",
    "BatchIdentificationService",
    "BoundedObservationQueue",
    "ClusterConfig",
    "ClusterService",
    "ClusterVerification",
    "DegradedShard",
    "IdentificationEngine",
    "ObservationError",
    "PlacementError",
    "PlacementMap",
    "PlacementStore",
    "QueryResult",
    "IndexedFingerprintDatabase",
    "IndexParams",
    "LatencyHistogram",
    "QuarantinedSegment",
    "QuarantineEntry",
    "QuarantineRetryReport",
    "RecoveryReport",
    "SegmentRecord",
    "ServiceMetrics",
    "ShardedFingerprintStore",
    "StoreError",
    "StreamCheckpoint",
    "StreamError",
    "StreamReport",
    "StreamSession",
    "StreamingIdentificationService",
    "SupervisorEscalation",
    "WorkerDied",
    "WorkerError",
    "WorkerHandle",
    "WorkerSupervisor",
    "WorkerTimeout",
    "build_cluster",
    "install_signal_handlers",
    "list_quarantine",
    "merge_degraded",
    "observation_records",
    "retry_quarantine",
    "stable_key_hash",
    "verify_cluster",
]
