"""Worker supervision: restart crashed workers, escalate when hopeless.

A long-running interception pipeline cannot treat a worker crash as a
pipeline crash: a poisoned observation, a transient allocator failure
or an injected chaos fault should cost one retry, not the whole
campaign.  :class:`WorkerSupervisor` runs each unit of work in a fresh
worker thread and applies the classic supervision policy:

* a crashed worker (any exception escaping the task) is **restarted**
  in a brand-new thread — a dead thread cannot be revived, so restart
  means respawn;
* restarts back off **exponentially** from ``backoff_base_s`` up to a
  cap, so a hot crash loop does not spin the CPU; with an injected
  ``jitter_rng`` each delay is drawn uniformly from ``[0, ceiling]``
  (*full jitter*), so a whole fleet of workers killed in the same
  instant does not restart in lockstep and re-stampede the store;
* after ``max_restarts`` restarts the supervisor **escalates**:
  :class:`SupervisorEscalation` carries a machine-readable fatal
  report (label, attempts, backoff schedule, last error) for the
  pipeline to persist before it dies.

The supervisor is policy only — it knows nothing about identification.
The streaming pipeline hands it micro-batch closures; the chaos tests
hand it tasks rigged with
:class:`~repro.reliability.faults.WorkerFaultInjector` kill plans.
"""

from __future__ import annotations

import contextvars
import threading
import time
from typing import Callable, Dict, List, Optional, TypeVar

from repro.obs.trace import span as obs_span
from repro.service.metrics import ServiceMetrics

T = TypeVar("T")

try:  # pragma: no cover - Protocol exists on every supported Python
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]


class UniformRng(Protocol):
    """Anything with ``uniform(low, high)`` — ``random.Random`` and
    ``numpy.random.Generator`` both qualify; tests inject seeded ones
    (lint rule REP001 forbids unseeded randomness in ``src/``)."""

    def uniform(self, low: float, high: float) -> float:
        """A float drawn uniformly from ``[low, high)``."""


def full_jitter_backoff(
    attempt: int,
    base_s: float,
    cap_s: float,
    rng: Optional[UniformRng] = None,
) -> float:
    """Backoff delay before restart ``attempt`` (1-based).

    Without ``rng`` this is the deterministic capped exponential
    ``min(cap, base * 2**(attempt-1))``.  With ``rng`` it applies the
    AWS "full jitter" policy: a delay drawn uniformly from
    ``[0, ceiling]``, which decorrelates simultaneously-crashed
    workers (thundering herd) while keeping the same expected-ceiling
    growth.  Shared by thread supervision here and process restarts in
    :mod:`repro.service.cluster`.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    ceiling = min(cap_s, base_s * (2 ** (attempt - 1)))
    if rng is None or ceiling <= 0.0:
        return ceiling
    return rng.uniform(0.0, ceiling)


class SupervisorEscalation(RuntimeError):
    """A worker kept dying after exhausting its restart budget.

    ``fatal_report()`` is the machine-readable post-mortem the pipeline
    writes to disk before aborting, so an operator (or a test) can see
    exactly what died, how often, and with what error.
    """

    def __init__(
        self,
        label: str,
        attempts: int,
        backoffs_s: List[float],
        cause: BaseException,
    ) -> None:
        super().__init__(
            f"worker {label!r} failed {attempts} time(s), "
            f"restart budget exhausted: {cause!r}"
        )
        self.label = label
        self.attempts = attempts
        self.backoffs_s = list(backoffs_s)
        self.cause = cause

    def fatal_report(self) -> Dict[str, object]:
        """JSON-serializable description of the escalation."""
        return {
            "schema_version": 1,
            "label": self.label,
            "attempts": self.attempts,
            "backoffs_s": self.backoffs_s,
            "error_type": type(self.cause).__name__,
            "error": str(self.cause),
        }


class WorkerSupervisor:
    """Run tasks in supervised worker threads with capped-backoff restarts.

    Parameters
    ----------
    max_restarts:
        Restarts granted per task (so a task runs at most
        ``max_restarts + 1`` times) before escalation.
    backoff_base_s:
        Delay before the first restart; doubles per subsequent restart.
    backoff_cap_s:
        Upper bound on any single backoff delay.
    metrics:
        Counter sink: ``supervisor.restarts``, ``supervisor.escalations``
        and per-run ``supervisor.crashes`` are recorded here.
    sleep:
        Injectable sleep (tests pass a recorder to assert the schedule
        without waiting).
    jitter_rng:
        Optional seeded RNG (``uniform(low, high)``) enabling full
        jitter: each restart delay is drawn uniformly from
        ``[0, capped-exponential ceiling]``.  ``None`` keeps the
        deterministic schedule.
    """

    def __init__(
        self,
        max_restarts: int = 3,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        metrics: Optional[ServiceMetrics] = None,
        sleep: Callable[[float], None] = time.sleep,
        jitter_rng: Optional[UniformRng] = None,
    ) -> None:
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        if backoff_base_s < 0.0 or backoff_cap_s < 0.0:
            raise ValueError("backoff delays must be >= 0")
        self._max_restarts = max_restarts
        self._backoff_base_s = backoff_base_s
        self._backoff_cap_s = backoff_cap_s
        self._metrics = metrics if metrics is not None else ServiceMetrics()
        self._sleep = sleep
        self._jitter_rng = jitter_rng

    @property
    def max_restarts(self) -> int:
        """Restart budget per supervised task."""
        return self._max_restarts

    @property
    def metrics(self) -> ServiceMetrics:
        """Instrumentation sink."""
        return self._metrics

    def backoff_schedule(self) -> List[float]:
        """The capped-exponential delay *ceilings* a fully failing task
        would see (jitter, when enabled, draws below each ceiling)."""
        return [
            min(self._backoff_cap_s, self._backoff_base_s * (2 ** attempt))
            for attempt in range(self._max_restarts)
        ]

    def run(self, task: Callable[[], T], label: str = "worker") -> T:
        """Execute ``task`` under supervision and return its result.

        Each attempt runs in a fresh worker thread; the calling thread
        blocks for the outcome (the pipeline's parallelism lives inside
        the task's shard fan-out, not here).  Raises
        :class:`SupervisorEscalation` when the restart budget runs out.
        """
        backoffs: List[float] = []
        last_error: Optional[BaseException] = None
        for attempt in range(self._max_restarts + 1):
            if attempt:
                delay = full_jitter_backoff(
                    attempt,
                    self._backoff_base_s,
                    self._backoff_cap_s,
                    rng=self._jitter_rng,
                )
                backoffs.append(delay)
                self._metrics.count("supervisor.restarts")
                if delay:
                    self._sleep(delay)
            outcome: Dict[str, object] = {}
            # A fresh copy of the calling context per attempt carries
            # the caller's open span into the worker thread: attempt
            # spans nest under the submitting batch, and a worker dying
            # mid-span still closes it (status ``error``) on its way
            # out — the trace never holds an orphan.
            ctx = contextvars.copy_context()

            def attempt_body(attempt_index: int = attempt) -> T:
                with obs_span(
                    "supervisor.attempt",
                    label=label,
                    attempt=attempt_index,
                ):
                    return task()

            def body() -> None:
                try:
                    outcome["value"] = ctx.run(attempt_body)
                except BaseException as error:  # noqa: BLE001 - supervised
                    outcome["error"] = error

            worker = threading.Thread(
                target=body,
                name=f"{label}-attempt-{attempt}",
                daemon=True,
            )
            with self._metrics.time("supervisor.attempt"):
                worker.start()
                worker.join()
            if "error" not in outcome:
                return outcome["value"]  # type: ignore[return-value]
            last_error = outcome["error"]  # type: ignore[assignment]
            self._metrics.count("supervisor.crashes")
        self._metrics.count("supervisor.escalations")
        assert last_error is not None
        raise SupervisorEscalation(
            label=label,
            attempts=self._max_restarts + 1,
            backoffs_s=backoffs,
            cause=last_error,
        )
