"""Process-parallel clustered identification with replication and failover.

The batch engine fans a query batch across shards as *threads in one
process*; a wedged or killed shard scan takes the whole service with
it.  This module moves each shard replica into its own supervised
worker **process** so the failure domain is one worker, not the fleet:

* **placement** — the key space is split into partitions and placed on
  workers by the consistent-hash map in
  :mod:`repro.service.placement`, R replicas per partition (primary
  first);
* **storage** — every ``(worker, partition)`` pair owns an ordinary
  crash-safe :class:`~repro.service.store.ShardedFingerprintStore`
  directory plus a global-sequence sidecar, so a replica is recoverable
  with the exact same journal protocol as any store;
* **read path** — queries fan out to one live, breaker-admitted
  replica per partition, with a *hedged* duplicate request to the next
  replica when the primary dawdles past ``hedge_delay_s``; answers
  merge by minimum global sequence
  (:func:`~repro.service.batch.merge_first_match`), so replica overlap
  and hedging can never duplicate a result;
* **health** — a monitor thread heartbeats every worker against a
  liveness deadline, feeds the per-worker
  :class:`~repro.reliability.breaker.CircuitBreaker`, and restarts
  dead workers with full-jitter capped-exponential backoff
  (:func:`~repro.service.supervisor.full_jitter_backoff`);
* **failover** — a dead worker's partitions are served by their
  surviving replicas immediately (the fan-out simply skips dead or
  tripped workers), and :meth:`ClusterService.rebalance` rebuilds lost
  replicas onto the survivors, committing the new placement through
  the crash-enumerable placement journal.

The driver side (:meth:`ClusterService.run`) implements the streaming
pipeline's engine contract, so ``repro cluster serve`` can put the
existing admission / backpressure / quarantine / checkpoint machinery
of :mod:`repro.service.stream` in front of the cluster unchanged.

Metrics all live under ``cluster.*`` (exported as
``repro_cluster_*``); spans under ``cluster.identify`` /
``cluster.rebalance`` / ``cluster.health``.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.distance import DEFAULT_THRESHOLD
from repro.core.errors import mark_errors_batch
from repro.core.fingerprint import Fingerprint
from repro.core.identify import Identification
from repro.bits import BitVector
from repro.obs.trace import span as obs_span
from repro.reliability.breaker import BreakerBoard
from repro.reliability.faults import StorageIO
from repro.service.batch import (
    BatchQuery,
    BatchReport,
    DegradedShard,
    QueryResult,
    merge_degraded,
    merge_first_match,
)
from repro.service.metrics import ServiceMetrics
from repro.service.placement import PlacementMap, PlacementStore
from repro.service.rpc import (
    WorkerDied,
    WorkerError,
    WorkerHandle,
    WorkerTimeout,
    encode_query,
    partition_dir,
    read_sequence_map,
    write_sequence_map,
)
from repro.service.store import ShardedFingerprintStore
from repro.service.supervisor import full_jitter_backoff

#: Answers on the wire: (global sequence, key, distance).
WireAnswer = Optional[Tuple[int, str, float]]


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of one cluster instance (all durations in seconds)."""

    n_partitions: int = 8
    replication: int = 2
    threshold: float = DEFAULT_THRESHOLD
    heartbeat_interval_s: float = 0.2
    liveness_timeout_s: float = 2.0
    request_timeout_s: float = 30.0
    hedge_delay_s: Optional[float] = 0.05
    breaker_failure_threshold: int = 3
    breaker_reset_s: float = 1.0
    max_restarts: int = 3
    restart_backoff_base_s: float = 0.05
    restart_backoff_cap_s: float = 2.0
    jitter_seed: Optional[int] = None
    start_method: str = "fork"


def default_worker_ids(n_workers: int) -> List[str]:
    """Conventional worker ids ``worker-000`` … ``worker-NNN``."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    return [f"worker-{index:03d}" for index in range(n_workers)]


def build_cluster(
    root: Path,
    entries: Iterable[Tuple[str, Fingerprint]],
    n_workers: int,
    n_partitions: int = 8,
    replication: int = 2,
    storage_io: Optional[StorageIO] = None,
) -> PlacementMap:
    """Create a cluster directory from enrollment ``entries``.

    Enrollment order defines the global sequence numbers (Algorithm
    2's first-match priority); each replica of a partition ingests the
    partition's fingerprints in that global order and records the
    key → global-sequence sidecar, so every replica answers with
    identical sequences.
    """
    io = storage_io if storage_io is not None else StorageIO()
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    placement = PlacementMap.build(
        default_worker_ids(n_workers),
        n_partitions=n_partitions,
        replication=replication,
    )
    store = PlacementStore(root, io)
    store.initialize(placement)
    per_partition: Dict[int, List[Tuple[int, str, Fingerprint]]] = {}
    for sequence, (key, fingerprint) in enumerate(entries):
        partition = placement.partition_for_key(key)
        per_partition.setdefault(partition, []).append(
            (sequence, key, fingerprint)
        )
    # Every partition is materialized, including ones no key hashed
    # into: a worker must be able to serve (and answer "no match" for)
    # an empty partition instead of failing both replicas at query
    # time on a missing directory.
    for partition in range(n_partitions):
        rows = per_partition.get(partition, [])
        for worker_id in placement.replicas(partition):
            _build_replica(root, worker_id, partition, rows, io)
    return placement


def _build_replica(
    root: Path,
    worker_id: str,
    partition: int,
    rows: Sequence[Tuple[int, str, Fingerprint]],
    io: StorageIO,
) -> None:
    """Materialize one partition replica store plus its sidecar."""
    directory = partition_dir(root, worker_id, partition)
    directory.mkdir(parents=True, exist_ok=True)
    replica = ShardedFingerprintStore(directory, n_shards=1, storage_io=io)
    ordered = sorted(rows)
    replica.ingest((key, fingerprint) for _seq, key, fingerprint in ordered)
    write_sequence_map(
        directory,
        {key: sequence for sequence, key, _fingerprint in ordered},
        storage_io=io,
    )


class ClusterService:
    """Driver for one cluster of worker processes.

    Thread-safe; all mutable coordination state (worker handles,
    restart bookkeeping, the current placement) lives under one lock,
    while worker RPCs and disk IO always happen outside it.
    Implements the streaming engine contract via :meth:`run`.
    """

    def __init__(
        self,
        root: Path,
        config: ClusterConfig = ClusterConfig(),
        metrics: Optional[ServiceMetrics] = None,
        storage_io: Optional[StorageIO] = None,
    ) -> None:
        self._root = Path(root)
        self._config = config
        self._metrics = metrics if metrics is not None else ServiceMetrics()
        self._io = storage_io if storage_io is not None else StorageIO()
        self._placement_store = PlacementStore(self._root, self._io)
        if self._placement_store.journal_pending():
            action = self._placement_store.recover()
            self._metrics.count(f"cluster.placement_recovered_{action}")
        self._placement = self._placement_store.load()
        self._breakers = BreakerBoard(
            failure_threshold=config.breaker_failure_threshold,
            reset_timeout_s=config.breaker_reset_s,
            metrics=self._metrics,
        )
        self._jitter_rng = (
            np.random.default_rng(config.jitter_seed)
            if config.jitter_seed is not None
            else None
        )
        self._lock = threading.Lock()
        self._workers: Dict[str, Optional[WorkerHandle]] = {}
        self._breaker_ids: Dict[str, int] = {}
        self._restarts: Dict[str, int] = {}
        self._restart_due: Dict[str, float] = {}
        self._started = False
        self._health_stop = threading.Event()
        self._health_thread: Optional[threading.Thread] = None
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(8, 2 * len(self._placement.workers)),
            thread_name_prefix="cluster-io",
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def root(self) -> Path:
        """Cluster root directory."""
        return self._root

    @property
    def placement(self) -> PlacementMap:
        """The committed placement currently driving routing."""
        with self._lock:
            return self._placement

    @property
    def metrics(self) -> ServiceMetrics:
        """Instrumentation sink (``cluster.*`` namespace)."""
        return self._metrics

    @property
    def breakers(self) -> BreakerBoard:
        """Per-worker circuit breakers."""
        return self._breakers

    def worker_handle(self, worker_id: str) -> Optional[WorkerHandle]:
        """The live handle for ``worker_id`` (None when dead)."""
        with self._lock:
            return self._workers.get(worker_id)

    def _breaker_index(self, worker_id: str) -> int:
        with self._lock:
            index = self._breaker_ids.get(worker_id)
            if index is None:
                index = len(self._breaker_ids)
                self._breaker_ids[worker_id] = index
            return index

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn every placed worker and the health monitor thread."""
        with self._lock:
            if self._started:
                return
            self._started = True
            placement = self._placement
        for worker_id in placement.workers:
            self._spawn(worker_id, placement)
        thread = threading.Thread(
            target=self._health_loop, name="cluster-health", daemon=True
        )
        with self._lock:
            self._health_thread = thread
        thread.start()

    def stop(self) -> None:
        """Stop the health monitor and shut every worker down."""
        self._health_stop.set()
        with self._lock:
            thread = self._health_thread
            self._health_thread = None
        if thread is not None:
            thread.join(timeout=10.0)
        with self._lock:
            handles = [h for h in self._workers.values() if h is not None]
            self._workers = {}
            self._started = False
        for handle in handles:
            handle.shutdown()
        self._pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ClusterService":
        self.start()
        return self

    def __exit__(self, *_exc: object) -> None:
        self.stop()

    def _spawn(self, worker_id: str, placement: PlacementMap) -> None:
        """Start one worker process for its placed partitions."""
        handle = WorkerHandle(
            worker_id,
            self._root,
            placement.partitions_of(worker_id),
            self._config.threshold,
            start_method=self._config.start_method,
        )
        with self._lock:
            self._workers[worker_id] = handle
        self._metrics.count("cluster.workers_spawned")

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------

    def _health_loop(self) -> None:
        while not self._health_stop.wait(self._config.heartbeat_interval_s):
            try:
                self.check_health()
            except Exception:  # noqa: BLE001 - the monitor must survive
                self._metrics.count("cluster.health_errors")

    def check_health(self) -> Dict[str, bool]:
        """One heartbeat round; returns worker id → alive.

        Public so tests and the chaos benchmark can drive health
        deterministically without depending on monitor thread timing.
        """
        with self._lock:
            workers = dict(self._workers)
            placement = self._placement
        now = time.monotonic()
        liveness: Dict[str, bool] = {}
        with obs_span("cluster.health", workers=len(workers)):
            for worker_id, handle in workers.items():
                breaker_id = self._breaker_index(worker_id)
                if handle is not None and handle.alive():
                    try:
                        handle.ping(
                            timeout_s=self._config.liveness_timeout_s
                        )
                    except (WorkerDied, WorkerTimeout, WorkerError):
                        self._metrics.count("cluster.heartbeat_failures")
                        self._breakers.record_failure(breaker_id)
                        self._note_death(worker_id, handle)
                    else:
                        self._breakers.record_success(breaker_id)
                        with self._lock:
                            self._restarts[worker_id] = 0
                        liveness[worker_id] = True
                        continue
                else:
                    if handle is not None:
                        self._breakers.record_failure(breaker_id)
                        self._note_death(worker_id, handle)
                liveness[worker_id] = False
                self._maybe_restart(worker_id, placement, now)
        return liveness

    def _note_death(self, worker_id: str, handle: WorkerHandle) -> None:
        """Mark a worker dead exactly once; failover is implicit (the
        fan-out skips dead workers from the next request on)."""
        with self._lock:
            if self._workers.get(worker_id) is not handle:
                return
            self._workers[worker_id] = None
        handle.close()
        self._metrics.count("cluster.worker_deaths")

    def _maybe_restart(
        self, worker_id: str, placement: PlacementMap, now: float
    ) -> None:
        """Restart a dead worker once its jittered backoff elapses."""
        spawn = False
        with self._lock:
            if self._workers.get(worker_id) is not None or not self._started:
                return
            attempts = self._restarts.get(worker_id, 0)
            if attempts >= self._config.max_restarts:
                return
            due = self._restart_due.get(worker_id)
            if due is None:
                delay = full_jitter_backoff(
                    attempts + 1,
                    self._config.restart_backoff_base_s,
                    self._config.restart_backoff_cap_s,
                    rng=self._jitter_rng,
                )
                self._restart_due[worker_id] = now + delay
            elif now >= due:
                self._restarts[worker_id] = attempts + 1
                del self._restart_due[worker_id]
                spawn = True
        if spawn:
            self._spawn(worker_id, placement)
            self._metrics.count("cluster.worker_restarts")

    # ------------------------------------------------------------------
    # Identification (the read path)
    # ------------------------------------------------------------------

    def run(self, queries: Sequence[BatchQuery]) -> BatchReport:
        """Streaming-engine contract: answer one micro-batch."""
        return self.identify(queries)

    def identify(self, queries: Sequence[BatchQuery]) -> BatchReport:
        """Fan a batch across the cluster and merge the replies."""
        self._metrics.count("cluster.requests")
        self._metrics.count("cluster.queries", len(queries))
        with self._metrics.time("cluster.identify"), obs_span(
            "cluster.identify", queries=len(queries)
        ):
            error_strings = self._error_strings(queries)
            wire = [
                encode_query(query.query_id, error_string)
                for query, error_string in zip(queries, error_strings)
            ]
            per_source, degraded = self._fan_out(wire, len(queries))
            identifications = merge_first_match(per_source, len(queries))
        if degraded:
            self._metrics.count("cluster.degraded_partitions", len(degraded))
        results = [
            QueryResult(
                query_id=query.query_id,
                identification=identification,
                degraded=bool(degraded),
            )
            for query, identification in zip(queries, identifications)
        ]
        return BatchReport(
            results=results,
            stats=self._metrics.stats(),
            degraded_shards=merge_degraded(degraded),
        )

    def _error_strings(
        self, queries: Sequence[BatchQuery]
    ) -> List[BitVector]:
        prebuilt: List[Optional[BitVector]] = []
        pair_positions: List[int] = []
        pairs: List[Tuple[BitVector, BitVector]] = []
        for position, query in enumerate(queries):
            if query.error_string is not None:
                prebuilt.append(query.error_string)
            else:
                prebuilt.append(None)
                pair_positions.append(position)
                pairs.append((query.approx, query.exact))
        if pairs:
            marked = mark_errors_batch(
                [approx for approx, _exact in pairs],
                [exact for _approx, exact in pairs],
            )
            for position, error_string in zip(pair_positions, marked):
                prebuilt[position] = error_string
        return prebuilt  # type: ignore[return-value]  # every slot filled

    def _eligible_replica(
        self,
        placement: PlacementMap,
        partition: int,
        tried: Set[str],
    ) -> Optional[str]:
        """Next live, breaker-admitted replica for ``partition``."""
        with self._lock:
            workers = dict(self._workers)
        for worker_id in placement.replicas(partition):
            if worker_id in tried:
                continue
            handle = workers.get(worker_id)
            if handle is None or not handle.alive():
                continue
            if not self._breakers.allow(self._breaker_index(worker_id)):
                self._metrics.count("cluster.breaker_skips")
                continue
            return worker_id
        return None

    def _request_answers(
        self,
        worker_id: str,
        partitions: Sequence[int],
        wire: Sequence[Dict[str, object]],
    ) -> List[WireAnswer]:
        with self._lock:
            handle = self._workers.get(worker_id)
        if handle is None:
            raise WorkerDied(f"worker {worker_id} is down")
        return handle.identify(
            wire,
            partitions,
            timeout_s=self._config.request_timeout_s,
        )

    def _fan_out(
        self,
        wire: Sequence[Dict[str, object]],
        n_queries: int,
    ) -> Tuple[
        List[List[Optional[Tuple[int, Identification]]]],
        List[DegradedShard],
    ]:
        """Fan queries over partitions; hedged first round, then failover.

        Returns per-source answer lists (for
        :func:`~repro.service.batch.merge_first_match`) plus degraded
        partitions no replica could serve.  Sources may overlap
        (hedges); the sequence-based merge makes that harmless.
        """
        with self._lock:
            placement = self._placement
        pending: Set[int] = set(range(placement.n_partitions))
        tried: Dict[int, Set[str]] = {p: set() for p in pending}
        per_source: List[List[Optional[Tuple[int, Identification]]]] = []
        # Up to `replication` rounds of failover plus the hedged first
        # round: with R replicas, every replica gets one chance.
        for round_index in range(placement.replication + 1):
            if not pending:
                break
            groups: Dict[str, List[int]] = {}
            for partition in sorted(pending):
                target = self._eligible_replica(
                    placement, partition, tried[partition]
                )
                if target is not None:
                    groups.setdefault(target, []).append(partition)
            if not groups:
                break
            if round_index > 0:
                self._metrics.count("cluster.failover_rounds")
            submitted: List[Tuple[str, List[int], bool, concurrent.futures.Future]] = []
            for worker_id, partitions in groups.items():
                for partition in partitions:
                    tried[partition].add(worker_id)
                submitted.append(
                    (
                        worker_id,
                        partitions,
                        False,
                        self._pool.submit(
                            self._request_answers, worker_id, partitions, wire
                        ),
                    )
                )
            if round_index == 0 and self._config.hedge_delay_s is not None:
                submitted.extend(
                    self._hedge(placement, tried, wire, submitted)
                )
            for worker_id, partitions, hedged, future in submitted:
                try:
                    answers = future.result(
                        timeout=self._config.request_timeout_s
                    )
                except Exception as error:  # noqa: BLE001 - degrade, never fail
                    self._on_request_failure(worker_id, error)
                    continue
                self._breakers.record_success(
                    self._breaker_index(worker_id)
                )
                per_source.append(
                    [
                        None
                        if answer is None
                        else (
                            answer[0],
                            Identification(
                                matched=True,
                                key=answer[1],
                                distance=answer[2],
                            ),
                        )
                        for answer in answers
                    ]
                )
                won = pending.intersection(partitions)
                if hedged and won:
                    self._metrics.count("cluster.hedge_wins")
                pending.difference_update(partitions)
        degraded = [
            DegradedShard(
                shard=partition,
                key_range=(None, None),
                reason=(
                    "no live replica: "
                    f"tried {sorted(tried[partition]) or 'none'}"
                ),
                attempts=len(tried[partition]),
            )
            for partition in sorted(pending)
        ]
        return per_source, degraded

    def _hedge(
        self,
        placement: PlacementMap,
        tried: Dict[int, Set[str]],
        wire: Sequence[Dict[str, object]],
        submitted: Sequence[
            Tuple[str, List[int], bool, concurrent.futures.Future]
        ],
    ) -> List[Tuple[str, List[int], bool, concurrent.futures.Future]]:
        """Send duplicate requests for groups slower than the hedge delay."""
        futures = [future for _w, _p, _h, future in submitted]
        _done, not_done = concurrent.futures.wait(
            futures, timeout=self._config.hedge_delay_s
        )
        if not not_done:
            return []
        hedge_groups: Dict[str, List[int]] = {}
        for _worker_id, partitions, _hedged, future in submitted:
            if future not in not_done:
                continue
            for partition in partitions:
                backup = self._eligible_replica(
                    placement, partition, tried[partition]
                )
                if backup is not None:
                    hedge_groups.setdefault(backup, []).append(partition)
        hedges: List[Tuple[str, List[int], bool, concurrent.futures.Future]] = []
        for worker_id, partitions in hedge_groups.items():
            self._metrics.count("cluster.hedges")
            for partition in partitions:
                tried[partition].add(worker_id)
            hedges.append(
                (
                    worker_id,
                    partitions,
                    True,
                    self._pool.submit(
                        self._request_answers, worker_id, partitions, wire
                    ),
                )
            )
        return hedges

    def _on_request_failure(
        self, worker_id: str, error: Exception
    ) -> None:
        self._metrics.count("cluster.request_failures")
        self._breakers.record_failure(self._breaker_index(worker_id))
        if isinstance(error, WorkerDied):
            with self._lock:
                handle = self._workers.get(worker_id)
            if handle is not None and not handle.alive():
                self._note_death(worker_id, handle)

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------

    def rebalance(
        self,
        remove: Iterable[str] = (),
        add: Iterable[str] = (),
    ) -> PlacementMap:
        """Re-place partitions without ``remove`` / with ``add``.

        Builds any replica directory the new placement requires (by
        copying from a surviving replica of the same partition), then
        commits the new map through the journaled placement store —
        the only step that changes routing, and the step the chaos
        tests crash-enumerate.  Workers whose partition set changed
        are restarted onto the new placement.
        """
        removed = list(remove)
        added = list(add)
        with self._lock:
            placement = self._placement
        with self._metrics.time("cluster.rebalance"), obs_span(
            "cluster.rebalance", remove=removed, add=added
        ):
            new_placement = placement.rebalanced(removed, added)
            moved = self._build_missing_replicas(placement, new_placement)
            self._placement_store.commit(new_placement)
            with self._lock:
                self._placement = new_placement
                started = self._started
            self._metrics.count("cluster.rebalances")
            self._metrics.count("cluster.partitions_moved", moved)
            if started:
                self._restart_replaced_workers(placement, new_placement)
        return new_placement

    def _build_missing_replicas(
        self, old: PlacementMap, new: PlacementMap
    ) -> int:
        """Materialize replica dirs the new placement needs; returns
        how many partition replicas were copied."""
        moved = 0
        for partition in range(new.n_partitions):
            for worker_id in new.replicas(partition):
                destination = partition_dir(self._root, worker_id, partition)
                if (destination / "manifest.json").exists():
                    continue
                source_rows = self._read_partition(partition, old)
                destination.mkdir(parents=True, exist_ok=True)
                _build_replica(
                    self._root, worker_id, partition, source_rows, self._io
                )
                moved += 1
        return moved

    def _read_partition(
        self, partition: int, placement: PlacementMap
    ) -> List[Tuple[int, str, Fingerprint]]:
        """Rows of one partition from any intact surviving replica.

        Reads the replica *directory*, not the worker process — a dead
        worker's disk state is exactly as durable as a live one's.
        """
        last_error: Optional[Exception] = None
        for worker_id in placement.replicas(partition):
            directory = partition_dir(self._root, worker_id, partition)
            if not (directory / "manifest.json").exists():
                continue
            try:
                replica = ShardedFingerprintStore(
                    directory, n_shards=1, storage_io=self._io
                )
                loaded = replica.load_shard(0)
                sequences = read_sequence_map(directory, self._io)
                return sorted(
                    (sequences[key], key, fingerprint)
                    for key, fingerprint in loaded.database.items()
                )
            except Exception as error:  # noqa: BLE001 - try next replica
                last_error = error
        raise RuntimeError(
            f"partition {partition} has no readable replica: {last_error}"
        )

    def _restart_replaced_workers(
        self, old: PlacementMap, new: PlacementMap
    ) -> None:
        """Restart workers whose assigned partition set changed."""
        old_sets = {
            worker_id: set(old.partitions_of(worker_id))
            for worker_id in old.workers
        }
        for worker_id in new.workers:
            new_set = set(new.partitions_of(worker_id))
            if old_sets.get(worker_id) == new_set:
                continue
            with self._lock:
                handle = self._workers.pop(worker_id, None)
            if handle is not None:
                handle.shutdown()
            self._spawn(worker_id, new)
        for worker_id in old.workers:
            if worker_id in new.workers:
                continue
            with self._lock:
                handle = self._workers.pop(worker_id, None)
            if handle is not None:
                handle.shutdown()

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """JSON-friendly cluster status (placement, workers, breakers)."""
        with self._lock:
            placement = self._placement
            workers = dict(self._workers)
            restarts = dict(self._restarts)
            started = self._started
        worker_status = {}
        for worker_id in placement.workers:
            handle = workers.get(worker_id)
            worker_status[worker_id] = {
                "alive": handle is not None and handle.alive(),
                "pid": handle.pid if handle is not None else None,
                "restarts": restarts.get(worker_id, 0),
                "partitions": placement.partitions_of(worker_id),
            }
        return {
            "schema_version": 1,
            "root": str(self._root),
            "started": started,
            "placement": {
                "version": placement.version,
                "n_partitions": placement.n_partitions,
                "replication": placement.replication,
                "workers": list(placement.workers),
            },
            "journal_pending": self._placement_store.journal_pending(),
            "workers": worker_status,
            "breakers": self._breakers.snapshot(),
            "counters": self._metrics.counters_with_prefix("cluster."),
        }


# ----------------------------------------------------------------------
# Cluster-wide verification (repro verify-store --all-shards)
# ----------------------------------------------------------------------


def _replica_digest(directory: Path) -> Optional[str]:
    """Content digest of one replica: its global-sequence sidecar.

    Replicas of the same partition are byte-identical by construction
    in what matters for identification — the (key, global sequence)
    assignment — so digesting the canonical sidecar detects replica
    divergence without mutating (or even opening) the store.
    """
    path = Path(directory) / "sequence-map.json"
    if not path.exists():
        return None
    return hashlib.sha256(path.read_bytes()).hexdigest()


@dataclass
class ClusterVerification:
    """Aggregated fsck of every replica directory in a cluster."""

    root: str
    placement_version: int
    journal_pending: bool
    replicas: List[Dict[str, object]] = field(default_factory=list)
    divergent_partitions: List[int] = field(default_factory=list)
    missing_replicas: List[Dict[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every replica fscks clean and none diverge."""
        return (
            not self.divergent_partitions
            and not self.missing_replicas
            and not self.journal_pending
            and all(entry["ok"] for entry in self.replicas)
        )

    def to_json(self) -> Dict[str, object]:
        """One JSON report covering every shard replica."""
        return {
            "schema_version": 1,
            "root": self.root,
            "ok": self.ok,
            "placement_version": self.placement_version,
            "journal_pending": self.journal_pending,
            "replicas": self.replicas,
            "divergent_partitions": self.divergent_partitions,
            "missing_replicas": self.missing_replicas,
        }


def verify_cluster(
    root: Path, storage_io: Optional[StorageIO] = None
) -> ClusterVerification:
    """Read-only fsck of every partition replica in a cluster.

    Runs :func:`repro.reliability.repair.verify_store` on each replica
    store directory and compares replica content digests per
    partition, reporting divergence (replicas of one partition that no
    longer agree) in one aggregated JSON report.  Never mutates the
    cluster — safe on a live one.
    """
    from repro.reliability.repair import verify_store

    store = PlacementStore(Path(root), storage_io)
    placement = store.load()
    verification = ClusterVerification(
        root=str(root),
        placement_version=placement.version,
        journal_pending=store.journal_pending(),
    )
    for partition in range(placement.n_partitions):
        digests: Dict[str, Optional[str]] = {}
        for worker_id in placement.replicas(partition):
            directory = partition_dir(Path(root), worker_id, partition)
            if not (directory / "manifest.json").exists():
                verification.missing_replicas.append(
                    {"partition": partition, "worker": worker_id}
                )
                digests[worker_id] = None
                continue
            result = verify_store(directory)
            digest = _replica_digest(directory)
            digests[worker_id] = digest
            verification.replicas.append(
                {
                    "partition": partition,
                    "worker": worker_id,
                    "ok": result.ok,
                    "recoverable": result.recoverable,
                    "problems": result.problems(),
                    "digest": digest,
                }
            )
        present = {d for d in digests.values() if d is not None}
        if len(present) > 1:
            verification.divergent_partitions.append(partition)
    return verification
