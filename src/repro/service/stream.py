"""Supervised streaming identification — the §7 eavesdropper online.

The batch engine answers one fully-materialized batch and forgets; the
eavesdropper's reality is a *stream*: outputs arrive one at a time from
unknown devices, some malformed, for hours — and a crash three hours in
must not cost three hours of clustering state.  This module turns the
batch engine into a supervised, long-running pipeline:

* **Bounded ingest** — observations flow through a
  :class:`BoundedObservationQueue` with explicit backpressure (a
  blocking producer can never grow it past its depth) and admission
  control (:meth:`BoundedObservationQueue.offer` rejects with a
  machine-readable reason when full — see :class:`Admission` and the
  push-mode :class:`StreamSession`).
* **Validation + quarantine** — every observation passes
  :func:`validate_observation` first; malformed, truncated or
  out-of-spec records are diverted to an on-disk ``quarantine.jsonl``
  with a stable reason code instead of crashing a worker.  ``repro
  quarantine ls / retry`` triages them later.
* **Supervision** — each identification micro-batch runs under a
  :class:`~repro.service.supervisor.WorkerSupervisor`: a crashed
  worker is restarted in a fresh thread with capped exponential
  backoff, and after the restart budget the pipeline writes a
  machine-readable ``fatal.json`` and stops — with everything up to
  the last completed batch already checkpointed.
* **Circuit breaking** — the shard fan-out runs over the PR 2
  retry/timeout path guarded by a per-shard
  :class:`~repro.reliability.breaker.BreakerBoard`; a persistently
  failing shard trips open and is skipped for pennies instead of
  re-paying the retry budget every batch, so the stream degrades
  instead of stalling.
* **Checkpointed resume** — at batch boundaries the pipeline appends
  its buffered results/quarantine lines (fsynced) and atomically
  replaces ``checkpoint.json`` (processed offset, clusterer state,
  breaker states, counters).  ``run(..., resume=True)`` truncates any
  torn tail past the checkpoint and replays from the recorded offset:
  every observation is processed **exactly once**, and the results
  file of an interrupted-then-resumed run is byte-identical to an
  uninterrupted one.
* **Graceful shutdown** — a SIGTERM/SIGINT (or an explicit
  ``stop_event``) drains the in-flight micro-batch, checkpoints, and
  reports ``interrupted``; the next ``--resume`` picks up exactly
  there.

Determinism is the design invariant behind all of this: batches are
filled to a fixed size in arrival order, residual clustering happens
in arrival order on the pipeline thread, and result lines are
canonical JSON — so identification decisions are a pure function of
the store plus the observation stream, never of queue timing.
"""

from __future__ import annotations

import collections
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.bits import BitVector
from repro.core.cluster import OnlineClusterer
from repro.core.distance import DEFAULT_THRESHOLD
from repro.obs.trace import span as obs_span
from repro.reliability.breaker import BreakerBoard
from repro.reliability.faults import StorageIO
from repro.service.batch import (
    SCHEMA_VERSION,
    BatchIdentificationService,
    BatchQuery,
    BatchReport,
    DegradedShard,
    merge_degraded,
)
from repro.service.metrics import ServiceMetrics
from repro.service.store import ShardedFingerprintStore
from repro.service.supervisor import SupervisorEscalation, WorkerSupervisor

try:  # pragma: no cover - Protocol exists on every supported Python
    from typing import Protocol, Sequence
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]
    from typing import Sequence


class IdentificationEngine(Protocol):
    """Anything answering a batch of queries with a report.

    :class:`~repro.service.batch.BatchIdentificationService` is the
    in-process implementation; the cluster driver
    (:class:`repro.service.cluster.ClusterService`) satisfies the same
    contract over worker processes, so the streaming pipeline's
    admission, supervision and checkpointing wrap either transparently.
    """

    def run(self, queries: Sequence[BatchQuery]) -> BatchReport:
        """Answer one micro-batch."""

#: State-directory file names.
CHECKPOINT_NAME = "checkpoint.json"
RESULTS_NAME = "results.jsonl"
QUARANTINE_NAME = "quarantine.jsonl"
FATAL_NAME = "fatal.json"
REPORT_NAME = "report.json"
_CHECKPOINT_TMP = "checkpoint.json.tmp"

#: Largest observation ``nbits`` the validator admits by default.
DEFAULT_MAX_NBITS = 1 << 26

#: Longest raw-observation prefix preserved in a quarantine entry.  An
#: entry whose original record was longer is marked ``truncated`` and
#: cannot be retried from quarantine alone.
MAX_QUARANTINED_RAW = 65536

#: Stable machine-readable quarantine reason codes.
REASON_BAD_JSON = "bad-json"
REASON_NOT_OBJECT = "not-an-object"
REASON_BAD_NBITS = "bad-nbits"
REASON_NBITS_TOO_LARGE = "nbits-too-large"
REASON_MISSING_PAYLOAD = "missing-payload"
REASON_CONFLICTING_PAYLOAD = "conflicting-payload"
REASON_TRUNCATED_PAIR = "truncated-pair"
REASON_BAD_INDICES = "bad-indices"
REASON_INDEX_RANGE = "index-out-of-range"


class StreamError(ValueError):
    """Raised on stream misconfiguration (bad state dir, bad resume)."""


class ObservationError(ValueError):
    """A single observation failed validation.

    ``reason`` is one of the stable ``REASON_*`` codes (machine
    readable, written to quarantine); ``detail`` is the human half.
    """

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(f"{reason}: {detail}")
        self.reason = reason
        self.detail = detail


# ----------------------------------------------------------------------
# Validation front end
# ----------------------------------------------------------------------


def _checked_indices(
    record: Dict[str, object], key: str, nbits: int
) -> List[int]:
    raw = record[key]
    if not isinstance(raw, list):
        raise ObservationError(
            REASON_BAD_INDICES, f"{key!r} must be a list of bit indices"
        )
    indices: List[int] = []
    for value in raw:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ObservationError(
                REASON_BAD_INDICES,
                f"{key!r} holds a non-integer index {value!r}",
            )
        if not 0 <= value < nbits:
            raise ObservationError(
                REASON_INDEX_RANGE,
                f"{key!r} index {value} outside [0, {nbits})",
            )
        indices.append(value)
    return indices


def validate_observation(
    record: Union[str, bytes, Dict[str, object]],
    offset: int,
    max_nbits: int = DEFAULT_MAX_NBITS,
) -> BatchQuery:
    """Parse and validate one raw observation into a :class:`BatchQuery`.

    ``record`` is a JSON Lines string (the file/CLI path) or an
    already-decoded dict (the library path).  The wire format matches
    ``serve-batch`` queries: ``id`` (optional, defaults to
    ``obs-<offset>``), ``nbits``, and either ``errors`` (prebuilt error
    string) or ``approx`` + ``exact`` (marked by the engine), all as
    set-bit index lists.  Raises :class:`ObservationError` with a
    stable reason code on anything malformed — the caller quarantines,
    the pipeline never crashes on input.
    """
    if isinstance(record, (str, bytes)):
        try:
            record = json.loads(record)
        except json.JSONDecodeError as error:
            raise ObservationError(REASON_BAD_JSON, str(error)) from error
    if not isinstance(record, dict):
        raise ObservationError(
            REASON_NOT_OBJECT,
            f"observation must be a JSON object, got {type(record).__name__}",
        )
    query_id = str(record.get("id", f"obs-{offset}"))
    nbits = record.get("nbits")
    if isinstance(nbits, bool) or not isinstance(nbits, int) or nbits < 1:
        raise ObservationError(
            REASON_BAD_NBITS, f"'nbits' must be a positive integer, got {nbits!r}"
        )
    if nbits > max_nbits:
        raise ObservationError(
            REASON_NBITS_TOO_LARGE,
            f"'nbits' {nbits} exceeds the configured limit {max_nbits}",
        )
    has_errors = "errors" in record
    has_approx = "approx" in record
    has_exact = "exact" in record
    if has_errors and (has_approx or has_exact):
        raise ObservationError(
            REASON_CONFLICTING_PAYLOAD,
            "provide 'errors' or 'approx'+'exact', not both",
        )
    if has_errors:
        errors = _checked_indices(record, "errors", nbits)
        return BatchQuery.from_errors(
            query_id, BitVector.from_indices(nbits, errors)
        )
    if has_approx != has_exact:
        missing = "exact" if has_approx else "approx"
        raise ObservationError(
            REASON_TRUNCATED_PAIR,
            f"pair observation is missing {missing!r}",
        )
    if not has_approx:
        raise ObservationError(
            REASON_MISSING_PAYLOAD,
            "observation needs 'errors' or 'approx'+'exact'",
        )
    approx = _checked_indices(record, "approx", nbits)
    exact = _checked_indices(record, "exact", nbits)
    return BatchQuery.from_pair(
        query_id,
        BitVector.from_indices(nbits, approx),
        BitVector.from_indices(nbits, exact),
    )


def observation_records(
    source: Union[str, Path, Iterable[Union[str, Dict[str, object]]]],
) -> Iterator[Union[str, Dict[str, object]]]:
    """Yield raw observations from a file, a directory, or an iterable.

    A file is read as JSON Lines (blank lines skipped); a directory
    contributes its ``*.jsonl`` files in sorted name order (so the
    stream order is reproducible); any other iterable is passed
    through as-is — which is how generators and push-mode sessions
    plug in.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        if path.is_dir():
            files = sorted(path.glob("*.jsonl"))
            if not files:
                raise StreamError(f"no *.jsonl observation files in {path}")
        else:
            files = [path]
        for file_path in files:
            with open(file_path, "r", encoding="utf-8") as stream:
                for line in stream:
                    line = line.strip()
                    if line:
                        yield line
    else:
        yield from source


# ----------------------------------------------------------------------
# Bounded queue: backpressure + admission control
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Admission:
    """Outcome of offering an observation to a bounded queue."""

    accepted: bool
    reason: Optional[str] = None


class BoundedObservationQueue:
    """A bounded handoff queue that refuses rather than grows.

    Producers either apply **backpressure** (:meth:`put` blocks while
    full, aborting if the stop event fires) or get an explicit
    **admission decision** (:meth:`offer` returns a rejection with a
    reason once its timeout expires).  Consumers :meth:`get` until the
    queue is closed and drained.  Peak occupancy is tracked so tests
    can prove the bound held.
    """

    def __init__(
        self, depth: int, metrics: Optional[ServiceMetrics] = None
    ) -> None:
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        self._depth = depth
        self._metrics = metrics
        self._items: collections.deque = collections.deque()
        self._condition = threading.Condition()
        self._closed = False
        self._peak = 0

    @property
    def depth(self) -> int:
        """Maximum number of queued observations."""
        return self._depth

    @property
    def peak(self) -> int:
        """Highest occupancy ever observed (must never exceed depth)."""
        with self._condition:
            return self._peak

    def __len__(self) -> int:
        with self._condition:
            return len(self._items)

    def offer(self, item: object, timeout_s: float = 0.0) -> Admission:
        """Try to enqueue; reject with a reason when still full at timeout."""
        deadline = time.monotonic() + timeout_s
        with self._condition:
            while len(self._items) >= self._depth:
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    if self._metrics is not None:
                        self._metrics.count("stream.admissions_rejected")
                    return Admission(
                        accepted=False,
                        reason=(
                            f"queue full: {self._depth} observations pending, "
                            "backpressure engaged"
                        ),
                    )
                self._condition.wait(remaining)
            if self._closed:
                return Admission(accepted=False, reason="queue closed")
            self._items.append(item)
            self._peak = max(self._peak, len(self._items))
            self._condition.notify_all()
            return Admission(accepted=True)

    def put(
        self,
        item: object,
        stop: threading.Event,
        poll_s: float = 0.05,
    ) -> bool:
        """Blocking backpressure put; False when ``stop`` fired first."""
        while not stop.is_set():
            if self.offer(item, timeout_s=poll_s).accepted:
                return True
        return False

    def get(
        self, timeout_s: Optional[float] = None
    ) -> Tuple[Optional[object], bool]:
        """Dequeue one item.

        Returns ``(item, eof)``: ``(x, False)`` for an item, ``(None,
        True)`` when the queue is closed and drained, and ``(None,
        False)`` on timeout.
        """
        with self._condition:
            deadline = (
                time.monotonic() + timeout_s if timeout_s is not None else None
            )
            while not self._items:
                if self._closed:
                    return None, True
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        return None, False
                self._condition.wait(remaining)
            item = self._items.popleft()
            self._condition.notify_all()
            return item, False

    def close(self) -> None:
        """Mark the producer side finished; wakes blocked consumers."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()


# ----------------------------------------------------------------------
# Durable artifacts: quarantine entries and checkpoints
# ----------------------------------------------------------------------


def _canonical_line(payload: Dict[str, object]) -> bytes:
    """One canonical JSON line — key-sorted, minimal separators.

    Canonical bytes are what makes the exactly-once guarantee
    checkable: an interrupted-and-resumed run must reproduce the
    uninterrupted run's results file *byte for byte*.
    """
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


@dataclass(frozen=True)
class QuarantineEntry:
    """One rejected observation, as stored in ``quarantine.jsonl``."""

    offset: int
    reason: str
    detail: str
    observation: str
    truncated: bool = False

    @classmethod
    def from_rejection(
        cls,
        offset: int,
        error: ObservationError,
        record: Union[str, bytes, Dict[str, object]],
    ) -> "QuarantineEntry":
        """Build an entry from a validator rejection."""
        if isinstance(record, bytes):
            raw = record.decode("utf-8", errors="replace")
        elif isinstance(record, str):
            raw = record
        else:
            raw = json.dumps(record, sort_keys=True, default=str)
        truncated = len(raw) > MAX_QUARANTINED_RAW
        return cls(
            offset=offset,
            reason=error.reason,
            detail=error.detail,
            observation=raw[:MAX_QUARANTINED_RAW],
            truncated=truncated,
        )

    def to_json(self) -> Dict[str, object]:
        """JSON rendering (one quarantine file line)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "offset": self.offset,
            "reason": self.reason,
            "detail": self.detail,
            "observation": self.observation,
            "truncated": self.truncated,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "QuarantineEntry":
        """Inverse of :meth:`to_json`; rejects unknown versions."""
        version = payload.get("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise StreamError(
                f"unsupported quarantine schema_version {version!r}"
            )
        return cls(
            offset=int(payload["offset"]),
            reason=str(payload["reason"]),
            detail=str(payload["detail"]),
            observation=str(payload["observation"]),
            truncated=bool(payload.get("truncated", False)),
        )

    def line(self) -> bytes:
        """Canonical serialized line."""
        return _canonical_line(self.to_json())


@dataclass
class StreamCheckpoint:
    """Everything ``--resume`` needs to continue exactly once.

    ``offset`` is the index of the next unconsumed observation;
    ``results_bytes`` / ``quarantine_bytes`` are the durable lengths of
    the two append-only files at checkpoint time (resume truncates any
    torn tail back to them); ``clusterer`` is the full Algorithm 4
    state (None when residual clustering is off).
    """

    offset: int
    results_bytes: int
    quarantine_bytes: int
    clusterer: Optional[dict]
    counters: Dict[str, int] = field(default_factory=dict)
    breakers: Dict[str, dict] = field(default_factory=dict)
    completed: bool = False

    def to_json(self) -> Dict[str, object]:
        """JSON payload of ``checkpoint.json``."""
        return {
            "schema_version": SCHEMA_VERSION,
            "offset": self.offset,
            "results_bytes": self.results_bytes,
            "quarantine_bytes": self.quarantine_bytes,
            "clusterer": self.clusterer,
            "counters": dict(self.counters),
            "breakers": dict(self.breakers),
            "completed": self.completed,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "StreamCheckpoint":
        """Inverse of :meth:`to_json`; rejects unknown versions."""
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise StreamError(
                f"unsupported checkpoint schema_version {version!r}"
            )
        return cls(
            offset=int(payload["offset"]),
            results_bytes=int(payload["results_bytes"]),
            quarantine_bytes=int(payload["quarantine_bytes"]),
            clusterer=payload.get("clusterer"),
            counters={
                str(k): int(v)
                for k, v in dict(payload.get("counters", {})).items()
            },
            breakers=dict(payload.get("breakers", {})),
            completed=bool(payload.get("completed", False)),
        )


@dataclass
class StreamReport:
    """Summary of one streaming run (also written to ``report.json``)."""

    status: str  # completed | interrupted | failed
    start_offset: int
    final_offset: int
    observations: int
    matched: int
    unmatched: int
    quarantined: int
    batches: int
    checkpoints: int
    restarts: int
    degraded_shards: List[DegradedShard] = field(default_factory=list)
    breakers: Dict[str, dict] = field(default_factory=dict)
    fatal: Optional[Dict[str, object]] = None
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        """True when the source was fully consumed."""
        return self.status == "completed"

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable report."""
        return {
            "schema_version": SCHEMA_VERSION,
            "status": self.status,
            "start_offset": self.start_offset,
            "final_offset": self.final_offset,
            "observations": self.observations,
            "matched": self.matched,
            "unmatched": self.unmatched,
            "quarantined": self.quarantined,
            "batches": self.batches,
            "checkpoints": self.checkpoints,
            "restarts": self.restarts,
            "degraded_shards": [
                entry.to_json() for entry in self.degraded_shards
            ],
            "breakers": dict(self.breakers),
            "fatal": self.fatal,
            "metrics": self.stats,
        }


def install_signal_handlers(stop: threading.Event) -> Callable[[], None]:
    """Route SIGTERM/SIGINT into ``stop`` for a graceful drain.

    Returns a restore callable that reinstates the previous handlers.
    Only usable from the main thread (a Python signal constraint); the
    CLI calls this, library embedders pass ``stop_event`` directly.
    """
    import signal

    def _handler(signum: int, frame: object) -> None:  # noqa: ARG001
        stop.set()

    previous = {
        signum: signal.signal(signum, _handler)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }

    def restore() -> None:
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    return restore


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------

#: Internal marker distinguishing "no item yet" from end-of-stream.
_EOF = object()


class StreamingIdentificationService:
    """Supervised, checkpointed streaming front end over a sharded store.

    One instance owns a state directory and drives :meth:`run` over an
    observation source.  All the failure machinery — validation
    quarantine, worker supervision, per-shard circuit breaking,
    checkpointed exactly-once resume, graceful drain — lives here;
    identification semantics are delegated unchanged to
    :class:`~repro.service.batch.BatchIdentificationService`.

    Parameters
    ----------
    store:
        The sharded fingerprint store to identify against.
    state_dir:
        Directory owning this stream's durable state (checkpoint,
        results, quarantine, fatal report).  One stream per directory.
    batch_size:
        Valid observations per identification micro-batch (also the
        drain granularity: stop requests take effect at batch
        boundaries).
    queue_depth:
        Bound of the ingest queue (backpressure past this).
    checkpoint_every:
        Checkpoint cadence in consumed observations (a checkpoint is
        also written at drain and at end-of-stream).
    breakers / breaker_failure_threshold / breaker_reset_s:
        Pass a prebuilt :class:`BreakerBoard` to share, None to build
        one from the thresholds, or set ``breaker_failure_threshold=0``
        to disable circuit breaking entirely.
    supervisor / max_restarts:
        Pass a prebuilt :class:`WorkerSupervisor` or let the service
        build one with ``max_restarts``.
    worker_fault_hook:
        Zero-argument callable invoked at the start of every worker
        attempt; the chaos tests install a
        :class:`~repro.reliability.faults.WorkerFaultInjector` here.
    storage_io:
        IO seam for the state directory (fault-injectable separately
        from the store's own seam).
    """

    def __init__(
        self,
        store: Optional[ShardedFingerprintStore],
        state_dir: Union[str, Path],
        threshold: float = DEFAULT_THRESHOLD,
        batch_size: int = 64,
        queue_depth: int = 256,
        checkpoint_every: int = 500,
        max_workers: Optional[int] = None,
        cluster_residuals: bool = True,
        suspect_prefix: str = "suspect",
        shard_retries: int = 2,
        retry_backoff_s: float = 0.05,
        shard_timeout_s: Optional[float] = None,
        breakers: Optional[BreakerBoard] = None,
        breaker_failure_threshold: int = 3,
        breaker_reset_s: float = 5.0,
        supervisor: Optional[WorkerSupervisor] = None,
        max_restarts: int = 3,
        worker_fault_hook: Optional[Callable[[], None]] = None,
        max_nbits: int = DEFAULT_MAX_NBITS,
        storage_io: Optional[StorageIO] = None,
        metrics: Optional[ServiceMetrics] = None,
        engine: Optional["IdentificationEngine"] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if store is None and engine is None:
            raise ValueError("provide a store or an identification engine")
        self._store = store
        self._state_dir = Path(state_dir)
        self._threshold = threshold
        self._batch_size = batch_size
        self._queue_depth = queue_depth
        self._checkpoint_every = checkpoint_every
        self._cluster_residuals = cluster_residuals
        self._suspect_prefix = suspect_prefix
        self._max_nbits = max_nbits
        if metrics is not None:
            self._metrics = metrics
        elif store is not None:
            self._metrics = store.metrics
        else:
            self._metrics = ServiceMetrics()
        self._io = storage_io if storage_io is not None else StorageIO()
        if breakers is None and breaker_failure_threshold > 0:
            breakers = BreakerBoard(
                failure_threshold=breaker_failure_threshold,
                reset_timeout_s=breaker_reset_s,
                metrics=self._metrics,
            )
        self._breakers = breakers
        self._supervisor = (
            supervisor
            if supervisor is not None
            else WorkerSupervisor(
                max_restarts=max_restarts, metrics=self._metrics
            )
        )
        self._worker_fault_hook = worker_fault_hook
        if engine is not None:
            # An injected engine (the cluster driver) answers batches;
            # the stream keeps owning admission, supervision,
            # quarantine and checkpoints around it.
            self._engine: "IdentificationEngine" = engine
        else:
            assert store is not None
            self._engine = BatchIdentificationService(
                store,
                threshold=threshold,
                max_workers=max_workers,
                cluster_residuals=False,
                shard_retries=shard_retries,
                retry_backoff_s=retry_backoff_s,
                shard_timeout_s=shard_timeout_s,
                breakers=breakers,
                metrics=self._metrics,
            )
        # Mutable per-run state, (re)initialized by run().
        self._active_queue: Optional[BoundedObservationQueue] = None
        self._clusterer: Optional[OnlineClusterer] = None
        self._results_bytes = 0
        self._quarantine_bytes = 0
        self._pending_results: List[bytes] = []
        self._pending_quarantine: List[bytes] = []

    # -- properties ----------------------------------------------------

    @property
    def state_dir(self) -> Path:
        """The stream's durable state directory."""
        return self._state_dir

    @property
    def metrics(self) -> ServiceMetrics:
        """Shared instrumentation sink."""
        return self._metrics

    @property
    def breakers(self) -> Optional[BreakerBoard]:
        """Per-shard circuit breakers (None when disabled)."""
        return self._breakers

    @property
    def checkpoint_path(self) -> Path:
        """Location of ``checkpoint.json``."""
        return self._state_dir / CHECKPOINT_NAME

    @property
    def results_path(self) -> Path:
        """Location of the append-only results file."""
        return self._state_dir / RESULTS_NAME

    @property
    def quarantine_path(self) -> Path:
        """Location of the append-only quarantine file."""
        return self._state_dir / QUARANTINE_NAME

    def queue_load(self) -> float:
        """Fill fraction of the live ingest queue (0.0 when idle).

        Background maintenance — the store compactor's backpressure
        check — polls this to defer merges while the stream engine is
        busy; between runs (or before the first) there is no queue and
        the answer is 0.0.
        """
        queue = self._active_queue
        if queue is None:
            return 0.0
        return len(queue) / queue.depth

    # -- checkpoint plumbing -------------------------------------------

    def load_checkpoint(self) -> StreamCheckpoint:
        """Read and validate the state directory's checkpoint."""
        path = self.checkpoint_path
        if not path.exists():
            raise StreamError(f"no checkpoint at {path}; nothing to resume")
        try:
            payload = json.loads(self._io.read_bytes(path).decode("utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as error:
            raise StreamError(
                f"unreadable checkpoint at {path}: {error}"
            ) from error
        return StreamCheckpoint.from_json(payload)

    def _write_checkpoint(self, checkpoint: StreamCheckpoint) -> None:
        data = (
            json.dumps(checkpoint.to_json(), indent=2, sort_keys=True) + "\n"
        ).encode("utf-8")
        tmp = self._state_dir / _CHECKPOINT_TMP
        self._io.write_bytes(tmp, data, sync=True)
        self._io.replace(tmp, self.checkpoint_path)
        self._io.fsync_dir(self._state_dir)
        self._metrics.count("stream.checkpoints")

    def _flush_and_checkpoint(self, offset: int, completed: bool) -> None:
        """Append buffered lines durably, then publish the checkpoint.

        Ordering is the crash-safety contract: the appends are fsynced
        *before* the checkpoint replace, so a crash between them leaves
        a checkpoint that under-counts the files — and resume truncates
        the surplus tail, never the other way around.
        """
        with obs_span("stream.checkpoint", offset=offset):
            self._flush_and_checkpoint_body(offset, completed)

    def _flush_and_checkpoint_body(self, offset: int, completed: bool) -> None:
        if self._pending_results:
            data = b"".join(self._pending_results)
            self._io.append_bytes(self.results_path, data, sync=True)
            self._results_bytes += len(data)
            self._pending_results.clear()
        if self._pending_quarantine:
            data = b"".join(self._pending_quarantine)
            self._io.append_bytes(self.quarantine_path, data, sync=True)
            self._quarantine_bytes += len(data)
            self._pending_quarantine.clear()
        self._write_checkpoint(
            StreamCheckpoint(
                offset=offset,
                results_bytes=self._results_bytes,
                quarantine_bytes=self._quarantine_bytes,
                clusterer=(
                    self._clusterer.to_state()
                    if self._clusterer is not None
                    else None
                ),
                counters=self._metrics.counters_with_prefix("stream."),
                breakers=(
                    self._breakers.snapshot()
                    if self._breakers is not None
                    else {}
                ),
                completed=completed,
            )
        )

    def _truncate_to(self, path: Path, size: int) -> None:
        if not path.exists():
            if size:
                raise StreamError(
                    f"checkpoint references {size} bytes of missing {path}"
                )
            self._io.write_bytes(path, b"", sync=True)
            return
        actual = path.stat().st_size
        if actual < size:
            raise StreamError(
                f"{path} holds {actual} bytes but the checkpoint recorded "
                f"{size}: state directory is damaged"
            )
        if actual > size:
            self._io.truncate(path, size)

    def _write_fatal(self, report: Dict[str, object]) -> None:
        data = (json.dumps(report, indent=2, sort_keys=True) + "\n").encode(
            "utf-8"
        )
        tmp = self._state_dir / (FATAL_NAME + ".tmp")
        self._io.write_bytes(tmp, data, sync=True)
        self._io.replace(tmp, self._state_dir / FATAL_NAME)
        self._io.fsync_dir(self._state_dir)

    # -- ingest side ---------------------------------------------------

    def _reader(
        self,
        iterator: Iterator[Tuple[int, object]],
        queue: BoundedObservationQueue,
        halt: threading.Event,
        failure: List[BaseException],
    ) -> None:
        try:
            for item in iterator:
                if not queue.put(item, halt):
                    return
        except BaseException as error:  # noqa: BLE001 - reported to main loop
            failure.append(error)
        finally:
            queue.close()

    def _fill_batch(
        self,
        queue: BoundedObservationQueue,
        stop: threading.Event,
        start_offset: int,
    ) -> Tuple[List[Tuple[int, BatchQuery]], List[QuarantineEntry], int, bool]:
        """Consume observations until a full batch, EOF, or a stop.

        Returns ``(rows, rejected, n_consumed, eof)``.  Quarantine
        entries are *returned*, not committed — they only reach the
        pending buffers once the batch they interleave with has been
        processed, which is what keeps a mid-batch crash exactly-once.
        """
        rows: List[Tuple[int, BatchQuery]] = []
        rejected: List[QuarantineEntry] = []
        n_consumed = 0
        while len(rows) < self._batch_size:
            if stop.is_set():
                break
            item, eof = queue.get(timeout_s=0.1)
            if eof:
                return rows, rejected, n_consumed, True
            if item is None:
                continue
            offset, record = item
            n_consumed += 1
            self._metrics.count("stream.observations")
            try:
                query = validate_observation(
                    record, offset, max_nbits=self._max_nbits
                )
            except ObservationError as error:
                self._metrics.count("stream.quarantined")
                rejected.append(
                    QuarantineEntry.from_rejection(offset, error, record)
                )
                continue
            self._metrics.count("stream.valid")
            rows.append((offset, query))
        assert start_offset >= 0  # anchors the offset accounting contract
        return rows, rejected, n_consumed, False

    # -- the run loop --------------------------------------------------

    def run(
        self,
        source: Union[str, Path, Iterable[Union[str, Dict[str, object]]]],
        resume: bool = False,
        stop_event: Optional[threading.Event] = None,
        max_batches: Optional[int] = None,
    ) -> StreamReport:
        """Drive the stream to completion, a drain, or an escalation.

        ``resume=True`` continues from the state directory's checkpoint
        (truncating any torn tail past it); without it the state
        directory must be fresh.  ``stop_event`` (and SIGTERM/SIGINT
        when the CLI installed handlers) requests a graceful drain:
        the in-flight micro-batch finishes, a checkpoint is written,
        and the report says ``interrupted``.  ``max_batches`` bounds
        the run for tests and benchmarks — it drains identically.

        Never raises on malformed observations, worker crashes within
        the restart budget, or failing shards; a restart-budget
        escalation returns a ``failed`` report after persisting
        ``fatal.json`` and a final checkpoint.
        """
        self._state_dir.mkdir(parents=True, exist_ok=True)
        stop = stop_event if stop_event is not None else threading.Event()
        start_offset = self._prepare_state(resume)
        restarts_before = self._metrics.counter("supervisor.restarts")
        checkpoints_before = self._metrics.counter("stream.checkpoints")

        iterator = (
            (offset, record)
            for offset, record in enumerate(observation_records(source))
            if offset >= start_offset
        )
        queue = BoundedObservationQueue(self._queue_depth, self._metrics)
        self._active_queue = queue
        halt = threading.Event()
        reader_failure: List[BaseException] = []
        reader = threading.Thread(
            target=self._reader,
            args=(iterator, queue, halt, reader_failure),
            name="stream-reader",
            daemon=True,
        )
        reader.start()

        consumed = start_offset
        since_checkpoint = 0
        matched = unmatched = quarantined = batches = 0
        degraded_accum: List[DegradedShard] = []
        status = "completed"
        fatal: Optional[Dict[str, object]] = None
        try:
            while True:
                rows, rejected, n_consumed, eof = self._fill_batch(
                    queue, stop, start_offset
                )
                try:
                    if rows:
                        report = self._process_batch(rows, batches)
                        batches += 1
                        self._metrics.count("stream.batches")
                        matched += report.matched_count
                        unmatched += report.unmatched_count
                        degraded_accum.extend(report.degraded_shards)
                except SupervisorEscalation as escalation:
                    # The batch never completed: commit nothing from
                    # this window, persist the post-mortem, and stop at
                    # the last good boundary.
                    fatal = escalation.fatal_report()
                    self._write_fatal(fatal)
                    self._flush_and_checkpoint(consumed, completed=False)
                    status = "failed"
                    break
                # Batch done (or empty): its interleaved rejects are now
                # safe to commit alongside its results.
                for entry in rejected:
                    self._pending_quarantine.append(entry.line())
                quarantined += len(rejected)
                consumed += n_consumed
                since_checkpoint += n_consumed
                stopping = stop.is_set() or (
                    max_batches is not None and batches >= max_batches
                )
                if eof or stopping or since_checkpoint >= self._checkpoint_every:
                    self._flush_and_checkpoint(consumed, completed=eof)
                    since_checkpoint = 0
                if eof:
                    break
                if stopping:
                    status = "interrupted"
                    self._metrics.count("stream.drains")
                    break
        finally:
            halt.set()
            queue.close()
            # Unblock a reader stuck on a full queue, then collect it.
            while True:
                item, eof_flag = queue.get(timeout_s=0.0)
                if item is None:
                    break
            reader.join(timeout=5.0)
        if reader_failure and status == "completed":
            # The source itself died mid-stream: everything committed so
            # far is checkpointed; surface the IO error to the caller.
            self._flush_and_checkpoint(consumed, completed=False)
            raise reader_failure[0]

        report = StreamReport(
            status=status,
            start_offset=start_offset,
            final_offset=consumed,
            observations=consumed - start_offset,
            matched=matched,
            unmatched=unmatched,
            quarantined=quarantined,
            batches=batches,
            checkpoints=(
                self._metrics.counter("stream.checkpoints")
                - checkpoints_before
            ),
            restarts=(
                self._metrics.counter("supervisor.restarts") - restarts_before
            ),
            degraded_shards=merge_degraded(degraded_accum),
            breakers=(
                self._breakers.snapshot() if self._breakers is not None else {}
            ),
            fatal=fatal,
            stats=self._metrics.stats(),
        )
        self._write_report(report)
        return report

    def _prepare_state(self, resume: bool) -> int:
        if resume:
            checkpoint = self.load_checkpoint()
            self._truncate_to(self.results_path, checkpoint.results_bytes)
            self._truncate_to(self.quarantine_path, checkpoint.quarantine_bytes)
            self._results_bytes = checkpoint.results_bytes
            self._quarantine_bytes = checkpoint.quarantine_bytes
            if self._cluster_residuals:
                self._clusterer = (
                    OnlineClusterer.from_state(checkpoint.clusterer)
                    if checkpoint.clusterer is not None
                    else OnlineClusterer(threshold=self._threshold)
                )
            self._metrics.count("stream.resumes")
            return checkpoint.offset
        if self.checkpoint_path.exists():
            raise StreamError(
                f"{self._state_dir} already holds a checkpoint; pass "
                "resume=True to continue it or use a fresh state directory"
            )
        self._io.write_bytes(self.results_path, b"", sync=True)
        self._io.write_bytes(self.quarantine_path, b"", sync=True)
        self._results_bytes = 0
        self._quarantine_bytes = 0
        self._clusterer = (
            OnlineClusterer(threshold=self._threshold)
            if self._cluster_residuals
            else None
        )
        self._pending_results.clear()
        self._pending_quarantine.clear()
        return 0

    def _process_batch(
        self, rows: List[Tuple[int, BatchQuery]], batch_index: int
    ):
        """One supervised identification micro-batch plus residual routing."""
        queries = [query for _offset, query in rows]

        def task():
            if self._worker_fault_hook is not None:
                self._worker_fault_hook()
            return self._engine.run(queries)

        with self._metrics.time("stream.batch"), obs_span(
            "stream.batch", batch=batch_index, queries=len(queries)
        ):
            report = self._supervisor.run(
                task, label=f"identify-batch-{batch_index}"
            )
        degraded = bool(report.degraded_shards)
        for (offset, query), result in zip(rows, report.results):
            suspect_key: Optional[str] = None
            new_suspect = False
            if not result.matched and self._clusterer is not None:
                error_string = query.error_string
                if error_string is None:
                    error_string = query.approx ^ query.exact
                before = len(self._clusterer)
                cluster_index = self._clusterer.add(error_string)
                suspect_key = f"{self._suspect_prefix}-{cluster_index}"
                new_suspect = len(self._clusterer) > before
                self._metrics.count("stream.residuals_clustered")
            self._pending_results.append(
                _canonical_line(
                    {
                        "schema_version": SCHEMA_VERSION,
                        "offset": offset,
                        "id": result.query_id,
                        "matched": result.matched,
                        "key": result.identification.key,
                        "distance": result.identification.distance,
                        "suspect_key": suspect_key,
                        "new_suspect": new_suspect,
                        "degraded": degraded,
                    }
                )
            )
            self._metrics.count("stream.results")
        return report

    def _write_report(self, report: StreamReport) -> None:
        data = (
            json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n"
        ).encode("utf-8")
        tmp = self._state_dir / (REPORT_NAME + ".tmp")
        self._io.write_bytes(tmp, data, sync=True)
        self._io.replace(tmp, self._state_dir / REPORT_NAME)
        self._io.fsync_dir(self._state_dir)


# ----------------------------------------------------------------------
# Push mode
# ----------------------------------------------------------------------


class StreamSession:
    """Push-mode front end: submit observations, get admission decisions.

    Wraps a :class:`StreamingIdentificationService` run whose source is
    an internal bounded queue.  :meth:`submit` applies admission
    control — when the pipeline cannot keep up and the queue is full,
    the observation is **rejected with a reason** instead of buffered
    without bound; the producer decides whether to retry, shed, or
    slow down.  :meth:`close` drains the pipeline and returns the
    final report.
    """

    def __init__(
        self,
        service: StreamingIdentificationService,
        resume: bool = False,
        admission_timeout_s: float = 0.0,
    ) -> None:
        self._service = service
        self._admission_timeout_s = admission_timeout_s
        self._queue = BoundedObservationQueue(
            service._queue_depth, service.metrics
        )
        self._report: List[StreamReport] = []
        self._error: List[BaseException] = []

        def _drain_queue() -> Iterator[object]:
            while True:
                item, eof = self._queue.get(timeout_s=None)
                if eof:
                    return
                yield item

        def _run() -> None:
            try:
                self._report.append(
                    self._service.run(_drain_queue(), resume=resume)
                )
            except BaseException as error:  # noqa: BLE001 - rethrown in close
                self._error.append(error)

        self._thread = threading.Thread(
            target=_run, name="stream-session", daemon=True
        )
        self._thread.start()

    def submit(
        self, record: Union[str, Dict[str, object]]
    ) -> Admission:
        """Offer one observation; rejected with a reason when full."""
        if self._error:
            raise self._error[0]
        return self._queue.offer(record, timeout_s=self._admission_timeout_s)

    def close(self) -> StreamReport:
        """Finish the stream: drain, checkpoint, and return the report."""
        self._queue.close()
        self._thread.join()
        if self._error:
            raise self._error[0]
        return self._report[0]


# ----------------------------------------------------------------------
# Quarantine triage
# ----------------------------------------------------------------------


def list_quarantine(
    state_dir: Union[str, Path],
    storage_io: Optional[StorageIO] = None,
) -> List[QuarantineEntry]:
    """Parse every entry of a state directory's quarantine file."""
    path = Path(state_dir) / QUARANTINE_NAME
    if not path.exists():
        return []
    io_seam = storage_io if storage_io is not None else StorageIO()
    entries: List[QuarantineEntry] = []
    for line in io_seam.read_bytes(path).decode("utf-8").splitlines():
        line = line.strip()
        if line:
            entries.append(QuarantineEntry.from_json(json.loads(line)))
    return entries


@dataclass
class QuarantineRetryReport:
    """Outcome of a ``repro quarantine retry`` pass."""

    retried: int
    still_quarantined: int
    matched: int
    unmatched: int

    def to_json(self) -> Dict[str, object]:
        """JSON rendering for the CLI."""
        return {
            "schema_version": SCHEMA_VERSION,
            "retried": self.retried,
            "still_quarantined": self.still_quarantined,
            "matched": self.matched,
            "unmatched": self.unmatched,
        }


def retry_quarantine(
    store: ShardedFingerprintStore,
    state_dir: Union[str, Path],
    threshold: float = DEFAULT_THRESHOLD,
    max_nbits: int = DEFAULT_MAX_NBITS,
    storage_io: Optional[StorageIO] = None,
    metrics: Optional[ServiceMetrics] = None,
) -> QuarantineRetryReport:
    """Re-validate quarantined observations and identify the now-valid.

    Quarantine is triage, not a grave: an operator fixes an upstream
    producer (or relaxes ``max_nbits``) and replays.  Entries that now
    validate are identified against the store and appended to the
    stream's results file under their original offsets; the rest stay
    quarantined (entries whose raw record was stored truncated can
    never revalidate and always stay).  The quarantine file is
    rewritten atomically, and a present checkpoint has its byte
    accounts updated so a later ``--resume`` does not truncate the
    retried work away.
    """
    state = Path(state_dir)
    io_seam = storage_io if storage_io is not None else StorageIO()
    entries = list_quarantine(state, storage_io=io_seam)
    retriable: List[Tuple[QuarantineEntry, BatchQuery]] = []
    remaining: List[QuarantineEntry] = []
    for entry in entries:
        if entry.truncated:
            remaining.append(entry)
            continue
        try:
            query = validate_observation(
                entry.observation, entry.offset, max_nbits=max_nbits
            )
        except ObservationError:
            remaining.append(entry)
            continue
        retriable.append((entry, query))

    matched = unmatched = 0
    if retriable:
        engine = BatchIdentificationService(
            store,
            threshold=threshold,
            cluster_residuals=False,
            metrics=metrics if metrics is not None else store.metrics,
        )
        report = engine.run([query for _entry, query in retriable])
        degraded = bool(report.degraded_shards)
        lines: List[bytes] = []
        for (entry, _query), result in zip(retriable, report.results):
            if result.matched:
                matched += 1
            else:
                unmatched += 1
            lines.append(
                _canonical_line(
                    {
                        "schema_version": SCHEMA_VERSION,
                        "offset": entry.offset,
                        "id": result.query_id,
                        "matched": result.matched,
                        "key": result.identification.key,
                        "distance": result.identification.distance,
                        "suspect_key": None,
                        "new_suspect": False,
                        "degraded": degraded,
                        "retried": True,
                    }
                )
            )
        io_seam.append_bytes(state / RESULTS_NAME, b"".join(lines), sync=True)

    # Rewrite the quarantine file without the retried entries.
    remaining_data = b"".join(entry.line() for entry in remaining)
    tmp = state / (QUARANTINE_NAME + ".tmp")
    io_seam.write_bytes(tmp, remaining_data, sync=True)
    io_seam.replace(tmp, state / QUARANTINE_NAME)
    io_seam.fsync_dir(state)

    checkpoint_path = state / CHECKPOINT_NAME
    if checkpoint_path.exists():
        payload = json.loads(io_seam.read_bytes(checkpoint_path).decode("utf-8"))
        checkpoint = StreamCheckpoint.from_json(payload)
        checkpoint.results_bytes = (state / RESULTS_NAME).stat().st_size
        checkpoint.quarantine_bytes = len(remaining_data)
        data = (
            json.dumps(checkpoint.to_json(), indent=2, sort_keys=True) + "\n"
        ).encode("utf-8")
        tmp = state / _CHECKPOINT_TMP
        io_seam.write_bytes(tmp, data, sync=True)
        io_seam.replace(tmp, checkpoint_path)
        io_seam.fsync_dir(state)

    return QuarantineRetryReport(
        retried=len(retriable),
        still_quarantined=len(remaining),
        matched=matched,
        unmatched=unmatched,
    )
