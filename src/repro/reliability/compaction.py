"""LSM-style background compaction for the sharded fingerprint store.

The append-only store (:mod:`repro.service.store`) writes one segment
per ingested batch per shard and never rewrites anything — durable,
but at the §4 population scale segments accumulate forever, cold
lookups touch every one of them, and tombstoned devices keep their
bytes.  This module is the maintenance half of the LSM design:

* :func:`plan_compaction` picks, per shard, runs of small consecutive
  segments (size-tiered) and any segment holding tombstoned records;
* :class:`Compactor` executes merges — read the sources strictly,
  drop tombstoned and superseded records, write one checksummed v2
  output with a fresh bloom-filter trailer, and commit through
  :meth:`~repro.service.store.ShardedFingerprintStore.commit_compaction`,
  whose journal + fsync + atomic-rename protocol makes a crash at any
  point resolve to exactly the pre- or post-merge store;
* :class:`CompactionPolicy` bounds the work (merge fan-in, merges per
  run) and defers it entirely while a load probe — typically
  :meth:`repro.service.stream.StreamingIdentificationService.queue_load`
  — says the serving path needs the disk more;
* :class:`BackgroundCompactor` runs the loop on a daemon thread with
  an explicit stop event.

Query results are invariant under compaction: surviving records keep
their global sequences (recorded as ``runs`` on the output segment),
tombstoned records were already invisible, and dropped sequence spans
move to the manifest's ``reclaimed`` ledger so ``verify-store`` can
still account for the whole sequence space.
"""

from __future__ import annotations

import io
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.fingerprint import Fingerprint
from repro.core.identify import FingerprintDatabase
from repro.core.serialize import dump_database
from repro.obs.trace import span as obs_span
from repro.reliability.bloom import append_trailer, build_filter
from repro.service.store import (
    SegmentRecord,
    ShardedFingerprintStore,
    coalesce_runs,
)

#: Merge reasons, in planning priority order.
REASON_TOMBSTONES = "tombstones"
REASON_SIZE_TIER = "size_tier"


@dataclass(frozen=True)
class CompactionPolicy:
    """Knobs bounding what one compaction pass may do.

    Parameters
    ----------
    small_segment_records:
        Segments holding at most this many records are merge
        candidates; bigger segments are already "compacted enough"
        and rewriting them would be write amplification for nothing.
    min_merge_segments, max_merge_segments:
        Fan-in bounds of one size-tiered merge.  Segments holding
        tombstoned records are exempt from the minimum — reclaiming a
        deleted device may mean rewriting a single segment.
    trigger_segments_per_shard:
        A shard only enters size-tiered planning once it has at least
        this many small segments; below that, merging buys little.
    max_concurrent_merges:
        Merges one :meth:`Compactor.run_once` call may commit.
    backpressure_threshold:
        Defer the whole pass while the load probe reports at least
        this fill fraction (see :meth:`Compactor.run_once`).
    """

    small_segment_records: int = 2048
    min_merge_segments: int = 2
    max_merge_segments: int = 8
    trigger_segments_per_shard: int = 4
    max_concurrent_merges: int = 1
    backpressure_threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.small_segment_records < 1:
            raise ValueError("small_segment_records must be >= 1")
        if self.min_merge_segments < 2:
            raise ValueError("min_merge_segments must be >= 2")
        if self.max_merge_segments < self.min_merge_segments:
            raise ValueError(
                "max_merge_segments must be >= min_merge_segments"
            )
        if self.trigger_segments_per_shard < 1:
            raise ValueError("trigger_segments_per_shard must be >= 1")
        if self.max_concurrent_merges < 1:
            raise ValueError("max_concurrent_merges must be >= 1")
        if not 0.0 < self.backpressure_threshold <= 1.0:
            raise ValueError("backpressure_threshold must be in (0, 1]")


@dataclass(frozen=True)
class MergePlan:
    """One planned merge: consecutive segments of a single shard."""

    shard: int
    sources: Tuple[SegmentRecord, ...]
    reason: str

    def to_json(self) -> Dict[str, object]:
        """JSON representation (the ``--dry-run`` plan output)."""
        return {
            "shard": self.shard,
            "reason": self.reason,
            "sources": [record.filename for record in self.sources],
            "records": sum(record.count for record in self.sources),
        }


@dataclass(frozen=True)
class CompactionPlan:
    """Every merge one pass would perform, in execution order."""

    merges: Tuple[MergePlan, ...]

    def __len__(self) -> int:
        return len(self.merges)

    def to_json(self) -> Dict[str, object]:
        """JSON representation (the ``--dry-run`` plan output)."""
        return {
            "n_merges": len(self.merges),
            "merges": [merge.to_json() for merge in self.merges],
        }


@dataclass(frozen=True)
class MergeReport:
    """What one committed merge did."""

    shard: int
    reason: str
    sources: Tuple[str, ...]
    output: Optional[str]
    records_kept: int
    records_dropped: int
    bytes_before: int
    bytes_after: int

    @property
    def bytes_reclaimed(self) -> int:
        """Disk bytes freed by the merge (never negative)."""
        return max(0, self.bytes_before - self.bytes_after)

    def to_json(self) -> Dict[str, object]:
        """JSON representation for reports and the run ledger."""
        return {
            "shard": self.shard,
            "reason": self.reason,
            "sources": list(self.sources),
            "output": self.output,
            "records_kept": self.records_kept,
            "records_dropped": self.records_dropped,
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
            "bytes_reclaimed": self.bytes_reclaimed,
        }


@dataclass
class CompactionReport:
    """Outcome of one :meth:`Compactor.run_once` pass."""

    deferred: bool = False
    merges: List[MergeReport] = field(default_factory=list)

    @property
    def bytes_reclaimed(self) -> int:
        """Total disk bytes freed across the pass."""
        return sum(merge.bytes_reclaimed for merge in self.merges)

    @property
    def records_dropped(self) -> int:
        """Total records dropped across the pass."""
        return sum(merge.records_dropped for merge in self.merges)

    def to_json(self) -> Dict[str, object]:
        """JSON representation for reports and the run ledger."""
        return {
            "deferred": self.deferred,
            "n_merges": len(self.merges),
            "bytes_reclaimed": self.bytes_reclaimed,
            "records_dropped": self.records_dropped,
            "merges": [merge.to_json() for merge in self.merges],
        }


def _tombstoned_segments(
    store: ShardedFingerprintStore,
) -> Dict[str, int]:
    """Per-filename count of tombstoned records, for live segments."""
    tombstone_sequences = set(store.tombstones.values())
    if not tombstone_sequences:
        return {}
    counts: Dict[str, int] = {}
    for record in store.segments:
        hits = sum(
            1
            for sequence in record.sequences()
            if sequence in tombstone_sequences
        )
        if hits:
            counts[record.filename] = hits
    return counts


def plan_compaction(
    store: ShardedFingerprintStore,
    policy: CompactionPolicy = CompactionPolicy(),
) -> CompactionPlan:
    """Choose the merges one pass should perform.

    Per shard, in sequence order: size-tiered runs of consecutive
    small segments (only once the shard holds enough of them), then
    single-segment rewrites of any remaining segment carrying
    tombstoned records.  Merging only *consecutive* segments keeps
    every output's sequence runs disjoint from its neighbours, which
    is what lets ``verify-store`` keep checking span exclusivity.
    """
    merges: List[MergePlan] = []
    tombstoned = _tombstoned_segments(store)
    for shard in range(store.n_shards):
        segments = sorted(
            (record for record in store.segments if record.shard == shard),
            key=lambda record: record.start_sequence,
        )
        if not segments:
            continue
        planned: set = set()
        small = [
            record
            for record in segments
            if record.count <= policy.small_segment_records
        ]
        if len(small) >= policy.trigger_segments_per_shard:
            run: List[SegmentRecord] = []
            for record in segments:
                if record.count <= policy.small_segment_records:
                    run.append(record)
                    if len(run) == policy.max_merge_segments:
                        merges.append(
                            MergePlan(shard, tuple(run), REASON_SIZE_TIER)
                        )
                        planned.update(r.filename for r in run)
                        run = []
                    continue
                if len(run) >= policy.min_merge_segments:
                    merges.append(
                        MergePlan(shard, tuple(run), REASON_SIZE_TIER)
                    )
                    planned.update(r.filename for r in run)
                run = []
            if len(run) >= policy.min_merge_segments:
                merges.append(MergePlan(shard, tuple(run), REASON_SIZE_TIER))
                planned.update(r.filename for r in run)
        for record in segments:
            if record.filename in tombstoned and record.filename not in planned:
                merges.append(
                    MergePlan(shard, (record,), REASON_TOMBSTONES)
                )
                planned.add(record.filename)
    return CompactionPlan(merges=tuple(merges))


class Compactor:
    """Executes compaction passes against one store.

    Single-threaded by design: one compactor instance performs one
    merge at a time through the store's journalled commit path, so the
    store itself never needs internal locking for compaction.  Wrap in
    :class:`BackgroundCompactor` for a maintenance thread.
    """

    def __init__(
        self,
        store: ShardedFingerprintStore,
        policy: CompactionPolicy = CompactionPolicy(),
        load_probe: Optional[Callable[[], float]] = None,
    ) -> None:
        self._store = store
        self._policy = policy
        self._load_probe = load_probe

    @property
    def store(self) -> ShardedFingerprintStore:
        """The store this compactor maintains."""
        return self._store

    @property
    def policy(self) -> CompactionPolicy:
        """Active policy."""
        return self._policy

    def plan(self) -> CompactionPlan:
        """What the next pass would do (the ``--dry-run`` answer)."""
        return plan_compaction(self._store, self._policy)

    def _merge(self, plan: MergePlan) -> MergeReport:
        """Execute and commit one planned merge."""
        store = self._store
        tombstones = store.tombstones
        bytes_before = 0
        rows: List[Tuple[int, str, Fingerprint]] = []
        for record in plan.sources:
            bytes_before += store.segment_path(record).stat().st_size
            database = store.read_segment(record)
            for sequence, (key, fingerprint) in zip(
                record.sequences(), database.items()
            ):
                rows.append((sequence, key, fingerprint))
        rows.sort(key=lambda row: row[0])

        kept: List[Tuple[int, str, Fingerprint]] = []
        dropped_sequences: List[int] = []
        cleared: List[str] = []
        seen_keys: set = set()
        for sequence, key, fingerprint in rows:
            if key in tombstones:
                dropped_sequences.append(sequence)
                cleared.append(key)
                continue
            if key in seen_keys:
                # Superseded duplicate (first-match wins, so the
                # earliest sequence is the live one).
                dropped_sequences.append(sequence)
                continue
            seen_keys.add(key)
            kept.append((sequence, key, fingerprint))

        output: Optional[SegmentRecord] = None
        data: Optional[bytes] = None
        if kept:
            merged = FingerprintDatabase()
            for _sequence, key, fingerprint in kept:
                merged.add(key, fingerprint)
            buffer = io.BytesIO()
            dump_database(merged, buffer)
            data = append_trailer(buffer.getvalue(), build_filter(merged.keys()))
            runs = coalesce_runs(
                (sequence, 1) for sequence, _key, _fp in kept
            )
            output = SegmentRecord(
                shard=plan.shard,
                filename=store.next_segment_filename(plan.shard),
                count=len(kept),
                start_sequence=kept[0][0],
                runs=tuple(runs),
            )
        reclaimed = coalesce_runs(
            (sequence, 1) for sequence in dropped_sequences
        )
        store.commit_compaction(
            sources=plan.sources,
            output=output,
            data=data,
            reclaimed=reclaimed,
            cleared_tombstones=cleared,
        )
        bytes_after = len(data) if data is not None else 0
        report = MergeReport(
            shard=plan.shard,
            reason=plan.reason,
            sources=tuple(record.filename for record in plan.sources),
            output=output.filename if output is not None else None,
            records_kept=len(kept),
            records_dropped=len(dropped_sequences),
            bytes_before=bytes_before,
            bytes_after=bytes_after,
        )
        metrics = store.metrics
        metrics.count("store.compaction_merges")
        metrics.count("store.compaction_segments_merged", len(plan.sources))
        metrics.count("store.compaction_records_dropped", len(dropped_sequences))
        metrics.count("store.compaction_bytes_reclaimed", report.bytes_reclaimed)
        return report

    def run_once(self) -> CompactionReport:
        """One bounded pass: defer under load, else commit some merges."""
        store = self._store
        metrics = store.metrics
        metrics.count("store.compaction_runs")
        if self._load_probe is not None:
            load = self._load_probe()
            if load >= self._policy.backpressure_threshold:
                metrics.count("store.compaction_deferred")
                return CompactionReport(deferred=True)
        report = CompactionReport()
        plan = self.plan()
        for merge_plan in plan.merges[: self._policy.max_concurrent_merges]:
            with obs_span(
                "store.compaction_merge",
                shard=merge_plan.shard,
                reason=merge_plan.reason,
                n_sources=len(merge_plan.sources),
            ):
                report.merges.append(self._merge(merge_plan))
        return report

    def compact_all(
        self,
        max_passes: int = 1000,
        max_merges: Optional[int] = None,
    ) -> CompactionReport:
        """Run passes until the planner finds nothing left to merge.

        The manual ``repro compact`` path: ignores the load probe (the
        operator asked) and folds every pass into one report.
        ``max_merges`` bounds the total merges committed.
        """
        combined = CompactionReport()
        for _pass in range(max_passes):
            if max_merges is not None and len(combined.merges) >= max_merges:
                break
            plan = self.plan()
            if not plan.merges:
                break
            budget = len(plan.merges)
            if max_merges is not None:
                budget = min(budget, max_merges - len(combined.merges))
            with obs_span("store.compaction_pass", n_merges=len(plan.merges)):
                for merge_plan in plan.merges[:budget]:
                    combined.merges.append(self._merge(merge_plan))
            self._store.metrics.count("store.compaction_runs")
        return combined


class BackgroundCompactor:
    """Daemon thread running :meth:`Compactor.run_once` on a cadence.

    Reports accumulate under a small lock; the merges themselves run
    with no lock held (they do disk IO through the store's journalled
    commit path, which is single-writer by construction here).
    """

    def __init__(
        self,
        compactor: Compactor,
        interval_s: float = 0.05,
    ) -> None:
        if interval_s <= 0.0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self._compactor = compactor
        self._interval_s = interval_s
        self._stop_event = threading.Event()
        self._lock = threading.Lock()
        self._reports: List[CompactionReport] = []
        self._failure: List[BaseException] = []
        self._thread = threading.Thread(
            target=self._loop, name="store-compactor", daemon=True
        )

    def start(self) -> None:
        """Start the maintenance thread."""
        self._thread.start()

    def stop(self, timeout_s: float = 10.0) -> None:
        """Signal the loop to finish its pass and join the thread."""
        self._stop_event.set()
        self._thread.join(timeout=timeout_s)

    @property
    def running(self) -> bool:
        """True while the maintenance thread is alive."""
        return self._thread.is_alive()

    def reports(self) -> List[CompactionReport]:
        """Snapshot of every pass report so far."""
        with self._lock:
            return list(self._reports)

    def failure(self) -> Optional[BaseException]:
        """The exception that killed the loop, if one did."""
        with self._lock:
            return self._failure[0] if self._failure else None

    def _loop(self) -> None:
        while not self._stop_event.wait(self._interval_s):
            try:
                report = self._compactor.run_once()
            except BaseException as error:  # noqa: BLE001 - surfaced via failure()
                with self._lock:
                    self._failure.append(error)
                return
            with self._lock:
                self._reports.append(report)


def stream_load_probe(service: object) -> Callable[[], float]:
    """Backpressure probe reading a stream service's queue fill.

    Accepts any object with a ``queue_load() -> float`` method (duck
    typed so the compactor does not import the stream module).
    """

    def probe() -> float:
        return float(service.queue_load())  # type: ignore[attr-defined]

    return probe
