"""Offline integrity verification and self-healing for the store.

Two entry points, mirroring ``fsck``'s split personality:

* :func:`verify_store` — **strictly read-only** inspection of a store
  directory: manifest well-formedness, a pending ingest journal,
  per-segment checksum scans (corruption localized to records), global
  sequence coverage, missing and orphaned files.  It never constructs
  a :class:`~repro.service.store.ShardedFingerprintStore`, because
  opening one auto-recovers a crashed ingest and verification must not
  mutate what it is judging.
* :func:`repair_store` — the mutating counterpart: resolve the journal
  (roll forward or back), salvage every readable record out of corrupt
  segments into fresh checksummed replacements, and quarantine the
  damaged originals.  Salvage preserves global sequence numbers (the
  manifest records which original offsets were dropped, or the exact
  sequence ``runs`` for compacted segments), so Algorithm 2
  first-match priority is unchanged for every surviving fingerprint —
  the property test asserts repair is decision-for-decision invisible
  on an uncorrupted store.

Verification understands the compaction protocol: a pending
compaction journal makes the store not-ok but its artefacts — a
missing or orphaned segment file named as a merge source — are
classified as *recoverable* findings pointing at ``recover()``
rather than as data loss.  :func:`prune_quarantine` adds retention:
quarantined segment files older than a cutoff are deleted and their
manifest entries folded into the ``reclaimed`` sequence ledger.

Both surface through the CLI as ``repro verify-store`` / ``repro
repair`` (pruning via ``repro repair --prune-quarantine``).
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.serialize import (
    CorruptRecord,
    SerializationError,
    dump_database,
    scan_database,
)
from repro.obs.clock import wall_time
from repro.obs.trace import span as obs_span
from repro.reliability.bloom import append_trailer, build_filter
from repro.service.store import (
    QuarantinedSegment,
    RecoveryReport,
    SegmentRecord,
    ShardedFingerprintStore,
    coalesce_runs,
)

_MANIFEST_NAME = "manifest.json"
_JOURNAL_NAME = "ingest-journal.json"
_COMPACTION_JOURNAL_NAME = "compaction-journal.json"
_SUPPORTED_VERSIONS = (1, 2)
_SECONDS_PER_DAY = 86400.0


def _record_intervals(record: SegmentRecord) -> List[Tuple[int, int]]:
    """Sequence ``(start, stop)`` intervals a segment accounts for."""
    if record.runs:
        return [(start, start + count) for start, count in record.runs]
    return [
        (record.start_sequence, record.start_sequence + record.original_count)
    ]


@dataclass
class SegmentVerification:
    """Integrity verdict for one live segment file."""

    filename: str
    shard: int
    declared_count: int
    readable_count: int = 0
    exists: bool = True
    corrupt: List[CorruptRecord] = field(default_factory=list)
    error: Optional[str] = None
    #: A finding a plain ``recover()`` resolves without data loss —
    #: e.g. the file is a merge source a crashed compaction deleted.
    recoverable: bool = False

    @property
    def ok(self) -> bool:
        """True when the file is present and every record read clean."""
        return (
            self.exists
            and self.error is None
            and not self.corrupt
            and self.readable_count == self.declared_count
        )

    def describe(self) -> str:
        """One-line human rendering for the CLI."""
        if self.ok:
            return f"{self.filename}: ok ({self.readable_count} records)"
        if not self.exists:
            if self.recoverable:
                return (
                    f"{self.filename}: MISSING (source of a pending "
                    "compaction; recover() — reopen the store or run "
                    "'repro repair' — will resolve it without loss)"
                )
            return f"{self.filename}: MISSING"
        if self.error is not None:
            return f"{self.filename}: UNREADABLE ({self.error})"
        where = ", ".join(
            f"record {entry.record_index} @ byte {entry.byte_offset}"
            for entry in self.corrupt[:3]
        )
        more = "..." if len(self.corrupt) > 3 else ""
        return (
            f"{self.filename}: CORRUPT "
            f"({len(self.corrupt)} bad of {self.declared_count}: {where}{more})"
        )


@dataclass
class StoreVerification:
    """Full integrity verdict for a store directory."""

    root: Path
    manifest_ok: bool = False
    manifest_error: Optional[str] = None
    journal_pending: bool = False
    compaction_pending: bool = False
    segments: List[SegmentVerification] = field(default_factory=list)
    orphan_files: List[str] = field(default_factory=list)
    #: On-disk files explained by the pending compaction journal
    #: (undeleted merge sources); cleaned up by ``recover()``.
    pending_compaction_files: List[str] = field(default_factory=list)
    sequence_gaps: List[Tuple[int, int]] = field(default_factory=list)
    degraded_shards: List[int] = field(default_factory=list)
    total_records: int = 0
    corrupt_records: int = 0

    @property
    def ok(self) -> bool:
        """Consistent and fully readable (degraded-but-consistent is ok)."""
        return (
            self.manifest_ok
            and not self.journal_pending
            and not self.compaction_pending
            and not self.orphan_files
            and not self.sequence_gaps
            and all(segment.ok for segment in self.segments)
        )

    @property
    def recoverable(self) -> bool:
        """Not ok, but every finding is one ``recover()`` resolves."""
        if self.ok or not self.manifest_ok:
            return False
        for segment in self.segments:
            if not segment.ok and not segment.recoverable:
                return False
        return not self.orphan_files and not self.sequence_gaps

    def problems(self) -> List[str]:
        """Every finding, one line each, for the CLI and reports."""
        lines: List[str] = []
        if not self.manifest_ok:
            lines.append(f"manifest: {self.manifest_error}")
            return lines
        if self.journal_pending:
            lines.append(
                "pending ingest journal (crashed ingest); run 'repro repair'"
            )
        if self.compaction_pending:
            lines.append(
                "pending compaction journal (crashed compaction); "
                "recoverable — reopen the store or run 'repro repair'"
            )
        for segment in self.segments:
            if not segment.ok:
                lines.append(segment.describe())
        for orphan in self.orphan_files:
            lines.append(f"orphan segment file not in manifest: {orphan}")
        for leftover in self.pending_compaction_files:
            lines.append(
                f"undeleted compaction source {leftover}; "
                "recover() will sweep it"
            )
        for start, stop in self.sequence_gaps:
            lines.append(f"sequence range [{start}, {stop}) unaccounted for")
        return lines

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable summary (CLI ``--json`` and benchmarks)."""
        return {
            "root": str(self.root),
            "ok": self.ok,
            "recoverable": self.recoverable,
            "manifest_ok": self.manifest_ok,
            "journal_pending": self.journal_pending,
            "compaction_pending": self.compaction_pending,
            "total_records": self.total_records,
            "corrupt_records": self.corrupt_records,
            "degraded_shards": self.degraded_shards,
            "orphan_files": self.orphan_files,
            "pending_compaction_files": self.pending_compaction_files,
            "sequence_gaps": [list(gap) for gap in self.sequence_gaps],
            "segments": [
                {
                    "filename": segment.filename,
                    "shard": segment.shard,
                    "ok": segment.ok,
                    "recoverable": segment.recoverable,
                    "declared_count": segment.declared_count,
                    "readable_count": segment.readable_count,
                    "corrupt_records": [
                        {
                            "record_index": entry.record_index,
                            "byte_offset": entry.byte_offset,
                            "reason": entry.reason,
                        }
                        for entry in segment.corrupt
                    ],
                    "error": segment.error,
                }
                for segment in self.segments
            ],
            "problems": self.problems(),
        }


def verify_store(root: Union[str, Path]) -> StoreVerification:
    """Read-only integrity check of a store directory.

    Safe to run against a live or a crashed store: nothing on disk is
    touched, so a crashed ingest shows up as ``journal_pending`` rather
    than being silently resolved.
    """
    with obs_span("reliability.verify", root=str(root)):
        return _verify_store_impl(Path(root))


def _verify_store_impl(root: Path) -> StoreVerification:
    verification = StoreVerification(root=root)
    manifest_path = root / _MANIFEST_NAME
    try:
        payload = json.loads(manifest_path.read_text())
    except FileNotFoundError:
        verification.manifest_error = f"no manifest at {manifest_path}"
        return verification
    except (OSError, json.JSONDecodeError) as error:
        verification.manifest_error = f"unreadable manifest: {error}"
        return verification
    if payload.get("version") not in _SUPPORTED_VERSIONS:
        verification.manifest_error = (
            f"unsupported store version {payload.get('version')!r}"
        )
        return verification
    try:
        segments = [
            SegmentRecord.from_json(record) for record in payload["segments"]
        ]
        quarantined = [
            QuarantinedSegment.from_json(record)
            for record in payload.get("quarantined", [])
        ]
        next_sequence = int(payload["next_sequence"])
        reclaimed = [
            (int(start), int(count))
            for start, count in payload.get("reclaimed", [])
        ]
    except (KeyError, TypeError, ValueError) as error:
        verification.manifest_error = f"malformed manifest: {error}"
        return verification
    verification.manifest_ok = True
    verification.journal_pending = (root / _JOURNAL_NAME).exists()

    # A pending compaction journal names merge sources and an output;
    # files it explains are recoverable findings, not data loss.
    compaction_sources: set = set()
    compaction_files: set = set()
    compaction_path = root / _COMPACTION_JOURNAL_NAME
    if compaction_path.exists():
        verification.compaction_pending = True
        try:
            compaction_journal = json.loads(compaction_path.read_text())
            compaction_sources = {
                str(name) for name in compaction_journal.get("sources", [])
            }
            compaction_files = set(compaction_sources)
            output_record = compaction_journal.get("output")
            if isinstance(output_record, dict):
                # The merge output may already be renamed into place
                # without being published in the manifest yet.
                compaction_files.add(str(output_record.get("filename")))
        except (OSError, json.JSONDecodeError):
            compaction_sources = set()  # torn journal: nothing planned

    for record in segments:
        entry = SegmentVerification(
            filename=record.filename,
            shard=record.shard,
            declared_count=record.count,
        )
        verification.segments.append(entry)
        path = root / record.filename
        if not path.exists():
            entry.exists = False
            if record.filename in compaction_sources:
                entry.recoverable = True
            continue
        try:
            scan = scan_database(path)
        except (OSError, SerializationError) as error:
            entry.error = str(error)
            continue
        entry.readable_count = len(scan.database)
        entry.corrupt = list(scan.corrupt)
        if not scan.footer_ok and not entry.corrupt:
            entry.error = "footer digest mismatch"
        verification.total_records += record.count
        verification.corrupt_records += len(scan.corrupt)

    # Global sequence coverage.  Two invariants: live segments must not
    # overlap each other (double assignment), and live + quarantined +
    # reclaimed spans together must cover [0, next_sequence) without a
    # hole (a hole means fingerprints vanished without a quarantine or
    # reclamation record).  A quarantined or reclaimed span overlapping
    # a live one is expected — that is what a salvage replacement or a
    # compacted partial drop looks like.  Compacted segments account
    # for their exact sequence ``runs``.
    live_spans = sorted(
        interval
        for record in segments
        for interval in _record_intervals(record)
    )
    cursor = 0
    for start, stop in live_spans:
        if start < cursor:
            verification.sequence_gaps.append((start, cursor))
        cursor = max(cursor, stop)
    all_spans = sorted(
        live_spans
        + [
            interval
            for entry in quarantined
            for interval in _record_intervals(entry.record)
        ]
        + [(start, start + count) for start, count in reclaimed]
    )
    cursor = 0
    for start, stop in all_spans:
        if start > cursor:
            verification.sequence_gaps.append((cursor, start))
        cursor = max(cursor, stop)
    if cursor < next_sequence:
        verification.sequence_gaps.append((cursor, next_sequence))
    elif cursor > next_sequence:
        verification.sequence_gaps.append((next_sequence, cursor))

    referenced = {record.filename for record in segments}
    for candidate in sorted(root.glob("shard-*/*.pcfp")):
        relative = candidate.relative_to(root).as_posix()
        if relative in referenced:
            continue
        if relative in compaction_files:
            # An undeleted merge source, or the merge output renamed
            # into place before the crash; recover() resolves both.
            verification.pending_compaction_files.append(relative)
        else:
            verification.orphan_files.append(relative)
    for leftover in sorted(root.glob("shard-*/*.pcfp.tmp")):
        relative = leftover.relative_to(root).as_posix()
        if verification.compaction_pending:
            verification.pending_compaction_files.append(relative)
        else:
            verification.orphan_files.append(relative)

    shards = {entry.record.shard for entry in quarantined}
    shards.update(record.shard for record in segments if record.omitted)
    verification.degraded_shards = sorted(shards)
    return verification


@dataclass
class RepairReport:
    """What :func:`repair_store` changed."""

    recovery: RecoveryReport = field(default_factory=RecoveryReport)
    quarantined: List[Tuple[str, str]] = field(default_factory=list)
    records_salvaged: int = 0
    records_lost: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing needed fixing."""
        return (
            self.recovery.action == "none"
            and not self.recovery.orphans_removed
            and not self.quarantined
        )

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable summary."""
        return {
            "clean": self.clean,
            "recovery_action": self.recovery.action,
            "orphans_removed": list(self.recovery.orphans_removed),
            "quarantined": [
                {"filename": filename, "reason": reason}
                for filename, reason in self.quarantined
            ],
            "records_salvaged": self.records_salvaged,
            "records_lost": self.records_lost,
        }


def _salvaged_filename(filename: str) -> str:
    stem = filename[: -len(".pcfp")] if filename.endswith(".pcfp") else filename
    return f"{stem}-salvaged.pcfp"


def repair_store(store: ShardedFingerprintStore) -> RepairReport:
    """Self-heal a store: resolve the journal, quarantine corruption.

    Idempotent, and a strict no-op on a healthy store: segments that
    verify clean are left byte-identical and the manifest is not
    rewritten.  Damaged segments have every record that still passes
    its checksum salvaged into a fresh v2 segment (original offsets
    recorded so sequence numbers survive); records that do not are
    counted lost, and the damaged file is moved to ``quarantine/``.
    """
    with obs_span("reliability.repair", root=str(store.root)):
        return _repair_store_impl(store)


def _repair_store_impl(store: ShardedFingerprintStore) -> RepairReport:
    recovery = store.recover()
    # If this pass found nothing but opening the store had already
    # resolved a crashed ingest, report that recovery instead of "none".
    prior = store.take_recovery_report()
    report = RepairReport(recovery=prior if prior is not None else recovery)
    metrics = store.metrics
    for record in store.segments:
        path = store.root / record.filename
        if not path.exists():
            store.quarantine_segment(record, "segment file missing")
            report.quarantined.append((record.filename, "segment file missing"))
            report.records_lost += record.count
            metrics.count("reliability.records_lost", record.count)
            continue
        try:
            scan = scan_database(path)
        except (OSError, SerializationError) as error:
            # Header-level damage: nothing salvageable.
            reason = f"unreadable segment: {error}"
            store.quarantine_segment(record, reason)
            report.quarantined.append((record.filename, reason))
            report.records_lost += record.count
            metrics.count("reliability.records_lost", record.count)
            continue
        readable = len(scan.database)
        damaged = (
            bool(scan.corrupt)
            or not scan.footer_ok
            or readable != record.count
        )
        if not damaged:
            continue
        metrics.count("reliability.corrupt_records", len(scan.corrupt))
        # Map surviving file positions back to *original* ingest
        # offsets (the file may itself be a prior salvage).
        original_offsets = record.offsets()
        survivors = [original_offsets[j] for j in scan.offsets if j < len(original_offsets)]
        reason = (
            f"{len(scan.corrupt)} corrupt of {record.count} records"
            if scan.corrupt
            else "segment failed verification"
        )
        if not survivors:
            store.quarantine_segment(record, reason)
            report.quarantined.append((record.filename, reason))
            report.records_lost += record.count
            metrics.count("reliability.records_lost", record.count)
            continue
        if record.runs:
            # A compacted segment: its sequences are explicit, so the
            # salvage replacement records the survivors' runs directly
            # (offset arithmetic does not apply).
            all_sequences = record.sequences()
            surviving_sequences = [
                all_sequences[j] for j in scan.offsets if j < len(all_sequences)
            ]
            replacement = SegmentRecord(
                shard=record.shard,
                filename=_salvaged_filename(record.filename),
                count=len(surviving_sequences),
                start_sequence=surviving_sequences[0],
                runs=tuple(
                    coalesce_runs(
                        (sequence, 1) for sequence in surviving_sequences
                    )
                ),
            )
        else:
            omitted = tuple(
                sorted(set(range(record.original_count)) - set(survivors))
            )
            replacement = SegmentRecord(
                shard=record.shard,
                filename=_salvaged_filename(record.filename),
                count=len(survivors),
                start_sequence=record.start_sequence,
                omitted=omitted,
            )
        buffer = io.BytesIO()
        dump_database(scan.database, buffer)
        # Salvage rebuilds the bloom trailer too — the damaged file's
        # filter (if any) described records that may no longer exist.
        data = append_trailer(
            buffer.getvalue(), build_filter(scan.database.keys())
        )
        store.quarantine_segment(record, reason, replacement=(replacement, data))
        report.quarantined.append((record.filename, reason))
        report.records_salvaged += len(survivors)
        report.records_lost += record.count - len(survivors)
        metrics.count("reliability.records_salvaged", len(survivors))
        lost = record.count - len(survivors)
        if lost:
            metrics.count("reliability.records_lost", lost)
    return report


# ----------------------------------------------------------------------
# Quarantine retention pruning
# ----------------------------------------------------------------------


@dataclass
class PruneReport:
    """What :func:`prune_quarantine` deleted (or would delete)."""

    older_than_days: float
    dry_run: bool
    examined: int = 0
    pruned_entries: int = 0
    pruned_files: List[str] = field(default_factory=list)
    kept_files: List[str] = field(default_factory=list)
    bytes_freed: int = 0

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable summary."""
        return {
            "older_than_days": self.older_than_days,
            "dry_run": self.dry_run,
            "examined": self.examined,
            "pruned_entries": self.pruned_entries,
            "pruned_files": list(self.pruned_files),
            "kept_files": list(self.kept_files),
            "bytes_freed": self.bytes_freed,
        }


def _quarantine_base(filename: str) -> str:
    """Quarantine-directory base name of a segment filename."""
    return filename.replace("/", "__")


def prune_quarantine(
    store: ShardedFingerprintStore,
    older_than_days: float,
    dry_run: bool = False,
) -> PruneReport:
    """Delete quarantined segment files older than a retention cutoff.

    Quarantined files are evidence, not garbage — but evidence has a
    shelf life, and without retention the quarantine directory grows
    forever.  A quarantine entry is pruned only when *every* file
    backing it (the original plus any ``.N``-suffixed siblings) has
    sat in quarantine longer than ``older_than_days``; the entry's
    sequence span then moves into the manifest's ``reclaimed`` ledger
    so ``verify-store`` coverage stays whole.  ``dry_run`` computes
    the same report without touching disk or manifest.
    """
    if older_than_days < 0:
        raise ValueError(
            f"older_than_days must be >= 0, got {older_than_days}"
        )
    with obs_span(
        "reliability.prune_quarantine",
        root=str(store.root),
        older_than_days=older_than_days,
        dry_run=dry_run,
    ):
        return _prune_quarantine_impl(store, older_than_days, dry_run)


def _prune_quarantine_impl(
    store: ShardedFingerprintStore,
    older_than_days: float,
    dry_run: bool,
) -> PruneReport:
    report = PruneReport(older_than_days=older_than_days, dry_run=dry_run)
    entries = store.quarantined
    report.examined = len(entries)
    if not entries:
        return report
    cutoff = wall_time() - older_than_days * _SECONDS_PER_DAY
    quarantine_dir = store.quarantine_dir

    def files_for(base: str) -> List[Path]:
        if not quarantine_dir.exists():
            return []
        return sorted(
            path
            for path in quarantine_dir.iterdir()
            if path.name == base or path.name.startswith(base + ".")
        )

    prunable: List[QuarantinedSegment] = []
    prunable_files: List[Path] = []
    seen_files: set = set()
    for entry in entries:
        backing = files_for(_quarantine_base(entry.record.filename))
        fresh = [
            path for path in backing if path.stat().st_mtime > cutoff
        ]
        if fresh:
            report.kept_files.extend(
                path.relative_to(store.root).as_posix() for path in fresh
            )
            continue
        prunable.append(entry)
        for path in backing:
            if path not in seen_files:
                seen_files.add(path)
                prunable_files.append(path)
    for path in prunable_files:
        report.pruned_files.append(path.relative_to(store.root).as_posix())
        report.bytes_freed += path.stat().st_size
    report.pruned_entries = len(prunable)
    if dry_run or not prunable:
        return report
    for path in prunable_files:
        store.storage_io.remove(path)
    store.drop_quarantined(prunable)
    return report
