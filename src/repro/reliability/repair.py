"""Offline integrity verification and self-healing for the store.

Two entry points, mirroring ``fsck``'s split personality:

* :func:`verify_store` — **strictly read-only** inspection of a store
  directory: manifest well-formedness, a pending ingest journal,
  per-segment checksum scans (corruption localized to records), global
  sequence coverage, missing and orphaned files.  It never constructs
  a :class:`~repro.service.store.ShardedFingerprintStore`, because
  opening one auto-recovers a crashed ingest and verification must not
  mutate what it is judging.
* :func:`repair_store` — the mutating counterpart: resolve the journal
  (roll forward or back), salvage every readable record out of corrupt
  segments into fresh checksummed replacements, and quarantine the
  damaged originals.  Salvage preserves global sequence numbers (the
  manifest records which original offsets were dropped), so Algorithm 2
  first-match priority is unchanged for every surviving fingerprint —
  the property test asserts repair is decision-for-decision invisible
  on an uncorrupted store.

Both surface through the CLI as ``repro verify-store`` / ``repro
repair``.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.serialize import (
    CorruptRecord,
    SerializationError,
    dump_database,
    scan_database,
)
from repro.obs.trace import span as obs_span
from repro.service.store import (
    QuarantinedSegment,
    RecoveryReport,
    SegmentRecord,
    ShardedFingerprintStore,
)

_MANIFEST_NAME = "manifest.json"
_JOURNAL_NAME = "ingest-journal.json"
_SUPPORTED_VERSIONS = (1, 2)


@dataclass
class SegmentVerification:
    """Integrity verdict for one live segment file."""

    filename: str
    shard: int
    declared_count: int
    readable_count: int = 0
    exists: bool = True
    corrupt: List[CorruptRecord] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the file is present and every record read clean."""
        return (
            self.exists
            and self.error is None
            and not self.corrupt
            and self.readable_count == self.declared_count
        )

    def describe(self) -> str:
        """One-line human rendering for the CLI."""
        if self.ok:
            return f"{self.filename}: ok ({self.readable_count} records)"
        if not self.exists:
            return f"{self.filename}: MISSING"
        if self.error is not None:
            return f"{self.filename}: UNREADABLE ({self.error})"
        where = ", ".join(
            f"record {entry.record_index} @ byte {entry.byte_offset}"
            for entry in self.corrupt[:3]
        )
        more = "..." if len(self.corrupt) > 3 else ""
        return (
            f"{self.filename}: CORRUPT "
            f"({len(self.corrupt)} bad of {self.declared_count}: {where}{more})"
        )


@dataclass
class StoreVerification:
    """Full integrity verdict for a store directory."""

    root: Path
    manifest_ok: bool = False
    manifest_error: Optional[str] = None
    journal_pending: bool = False
    segments: List[SegmentVerification] = field(default_factory=list)
    orphan_files: List[str] = field(default_factory=list)
    sequence_gaps: List[Tuple[int, int]] = field(default_factory=list)
    degraded_shards: List[int] = field(default_factory=list)
    total_records: int = 0
    corrupt_records: int = 0

    @property
    def ok(self) -> bool:
        """Consistent and fully readable (degraded-but-consistent is ok)."""
        return (
            self.manifest_ok
            and not self.journal_pending
            and not self.orphan_files
            and not self.sequence_gaps
            and all(segment.ok for segment in self.segments)
        )

    def problems(self) -> List[str]:
        """Every finding, one line each, for the CLI and reports."""
        lines: List[str] = []
        if not self.manifest_ok:
            lines.append(f"manifest: {self.manifest_error}")
            return lines
        if self.journal_pending:
            lines.append(
                "pending ingest journal (crashed ingest); run 'repro repair'"
            )
        for segment in self.segments:
            if not segment.ok:
                lines.append(segment.describe())
        for orphan in self.orphan_files:
            lines.append(f"orphan segment file not in manifest: {orphan}")
        for start, stop in self.sequence_gaps:
            lines.append(f"sequence range [{start}, {stop}) unaccounted for")
        return lines

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable summary (CLI ``--json`` and benchmarks)."""
        return {
            "root": str(self.root),
            "ok": self.ok,
            "manifest_ok": self.manifest_ok,
            "journal_pending": self.journal_pending,
            "total_records": self.total_records,
            "corrupt_records": self.corrupt_records,
            "degraded_shards": self.degraded_shards,
            "orphan_files": self.orphan_files,
            "sequence_gaps": [list(gap) for gap in self.sequence_gaps],
            "segments": [
                {
                    "filename": segment.filename,
                    "shard": segment.shard,
                    "ok": segment.ok,
                    "declared_count": segment.declared_count,
                    "readable_count": segment.readable_count,
                    "corrupt_records": [
                        {
                            "record_index": entry.record_index,
                            "byte_offset": entry.byte_offset,
                            "reason": entry.reason,
                        }
                        for entry in segment.corrupt
                    ],
                    "error": segment.error,
                }
                for segment in self.segments
            ],
            "problems": self.problems(),
        }


def verify_store(root: Union[str, Path]) -> StoreVerification:
    """Read-only integrity check of a store directory.

    Safe to run against a live or a crashed store: nothing on disk is
    touched, so a crashed ingest shows up as ``journal_pending`` rather
    than being silently resolved.
    """
    with obs_span("reliability.verify", root=str(root)):
        return _verify_store_impl(Path(root))


def _verify_store_impl(root: Path) -> StoreVerification:
    verification = StoreVerification(root=root)
    manifest_path = root / _MANIFEST_NAME
    try:
        payload = json.loads(manifest_path.read_text())
    except FileNotFoundError:
        verification.manifest_error = f"no manifest at {manifest_path}"
        return verification
    except (OSError, json.JSONDecodeError) as error:
        verification.manifest_error = f"unreadable manifest: {error}"
        return verification
    if payload.get("version") not in _SUPPORTED_VERSIONS:
        verification.manifest_error = (
            f"unsupported store version {payload.get('version')!r}"
        )
        return verification
    try:
        segments = [
            SegmentRecord.from_json(record) for record in payload["segments"]
        ]
        quarantined = [
            QuarantinedSegment.from_json(record)
            for record in payload.get("quarantined", [])
        ]
        next_sequence = int(payload["next_sequence"])
    except (KeyError, TypeError, ValueError) as error:
        verification.manifest_error = f"malformed manifest: {error}"
        return verification
    verification.manifest_ok = True
    verification.journal_pending = (root / _JOURNAL_NAME).exists()

    for record in segments:
        entry = SegmentVerification(
            filename=record.filename,
            shard=record.shard,
            declared_count=record.count,
        )
        verification.segments.append(entry)
        path = root / record.filename
        if not path.exists():
            entry.exists = False
            continue
        try:
            scan = scan_database(path)
        except (OSError, SerializationError) as error:
            entry.error = str(error)
            continue
        entry.readable_count = len(scan.database)
        entry.corrupt = list(scan.corrupt)
        if not scan.footer_ok and not entry.corrupt:
            entry.error = "footer digest mismatch"
        verification.total_records += record.count
        verification.corrupt_records += len(scan.corrupt)

    # Global sequence coverage.  Two invariants: live segments must not
    # overlap each other (double assignment), and live + quarantined
    # spans together must cover [0, next_sequence) without a hole (a
    # hole means fingerprints vanished without a quarantine record).  A
    # quarantined span overlapping a live one is expected — that is
    # what a salvage replacement looks like.
    live_spans = sorted(
        (record.start_sequence, record.start_sequence + record.original_count)
        for record in segments
    )
    cursor = 0
    for start, stop in live_spans:
        if start < cursor:
            verification.sequence_gaps.append((start, cursor))
        cursor = max(cursor, stop)
    all_spans = sorted(
        live_spans
        + [
            (
                entry.record.start_sequence,
                entry.record.start_sequence + entry.record.original_count,
            )
            for entry in quarantined
        ]
    )
    cursor = 0
    for start, stop in all_spans:
        if start > cursor:
            verification.sequence_gaps.append((cursor, start))
        cursor = max(cursor, stop)
    if cursor < next_sequence:
        verification.sequence_gaps.append((cursor, next_sequence))
    elif cursor > next_sequence:
        verification.sequence_gaps.append((next_sequence, cursor))

    referenced = {record.filename for record in segments}
    for candidate in sorted(root.glob("shard-*/*.pcfp")):
        relative = candidate.relative_to(root).as_posix()
        if relative not in referenced:
            verification.orphan_files.append(relative)

    shards = {entry.record.shard for entry in quarantined}
    shards.update(record.shard for record in segments if record.omitted)
    verification.degraded_shards = sorted(shards)
    return verification


@dataclass
class RepairReport:
    """What :func:`repair_store` changed."""

    recovery: RecoveryReport = field(default_factory=RecoveryReport)
    quarantined: List[Tuple[str, str]] = field(default_factory=list)
    records_salvaged: int = 0
    records_lost: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing needed fixing."""
        return (
            self.recovery.action == "none"
            and not self.recovery.orphans_removed
            and not self.quarantined
        )

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable summary."""
        return {
            "clean": self.clean,
            "recovery_action": self.recovery.action,
            "orphans_removed": list(self.recovery.orphans_removed),
            "quarantined": [
                {"filename": filename, "reason": reason}
                for filename, reason in self.quarantined
            ],
            "records_salvaged": self.records_salvaged,
            "records_lost": self.records_lost,
        }


def _salvaged_filename(filename: str) -> str:
    stem = filename[: -len(".pcfp")] if filename.endswith(".pcfp") else filename
    return f"{stem}-salvaged.pcfp"


def repair_store(store: ShardedFingerprintStore) -> RepairReport:
    """Self-heal a store: resolve the journal, quarantine corruption.

    Idempotent, and a strict no-op on a healthy store: segments that
    verify clean are left byte-identical and the manifest is not
    rewritten.  Damaged segments have every record that still passes
    its checksum salvaged into a fresh v2 segment (original offsets
    recorded so sequence numbers survive); records that do not are
    counted lost, and the damaged file is moved to ``quarantine/``.
    """
    with obs_span("reliability.repair", root=str(store.root)):
        return _repair_store_impl(store)


def _repair_store_impl(store: ShardedFingerprintStore) -> RepairReport:
    recovery = store.recover()
    # If this pass found nothing but opening the store had already
    # resolved a crashed ingest, report that recovery instead of "none".
    prior = store.take_recovery_report()
    report = RepairReport(recovery=prior if prior is not None else recovery)
    metrics = store.metrics
    for record in store.segments:
        path = store.root / record.filename
        if not path.exists():
            store.quarantine_segment(record, "segment file missing")
            report.quarantined.append((record.filename, "segment file missing"))
            report.records_lost += record.count
            metrics.count("reliability.records_lost", record.count)
            continue
        try:
            scan = scan_database(path)
        except (OSError, SerializationError) as error:
            # Header-level damage: nothing salvageable.
            reason = f"unreadable segment: {error}"
            store.quarantine_segment(record, reason)
            report.quarantined.append((record.filename, reason))
            report.records_lost += record.count
            metrics.count("reliability.records_lost", record.count)
            continue
        readable = len(scan.database)
        damaged = (
            bool(scan.corrupt)
            or not scan.footer_ok
            or readable != record.count
        )
        if not damaged:
            continue
        metrics.count("reliability.corrupt_records", len(scan.corrupt))
        # Map surviving file positions back to *original* ingest
        # offsets (the file may itself be a prior salvage).
        original_offsets = record.offsets()
        survivors = [original_offsets[j] for j in scan.offsets if j < len(original_offsets)]
        reason = (
            f"{len(scan.corrupt)} corrupt of {record.count} records"
            if scan.corrupt
            else "segment failed verification"
        )
        if not survivors:
            store.quarantine_segment(record, reason)
            report.quarantined.append((record.filename, reason))
            report.records_lost += record.count
            metrics.count("reliability.records_lost", record.count)
            continue
        omitted = tuple(
            sorted(set(range(record.original_count)) - set(survivors))
        )
        replacement = SegmentRecord(
            shard=record.shard,
            filename=_salvaged_filename(record.filename),
            count=len(survivors),
            start_sequence=record.start_sequence,
            omitted=omitted,
        )
        buffer = io.BytesIO()
        dump_database(scan.database, buffer)
        store.quarantine_segment(
            record, reason, replacement=(replacement, buffer.getvalue())
        )
        report.quarantined.append((record.filename, reason))
        report.records_salvaged += len(survivors)
        report.records_lost += record.count - len(survivors)
        metrics.count("reliability.records_salvaged", len(survivors))
        lost = record.count - len(survivors)
        if lost:
            metrics.count("reliability.records_lost", lost)
    return report
