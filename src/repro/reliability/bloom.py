"""Per-segment bloom filters — point lookups skip cold segments.

At the §4 population scale a shard accumulates dozens of append-only
segments, and a point lookup ("is device X enrolled? what is its
fingerprint?") on a cold shard would have to read every one of them.
Each segment therefore carries a bloom filter over its keys, persisted
as a self-describing trailer *after* the v2 checksummed stream, so:

* a point lookup reads only the few-KB trailer of each segment
  (through :meth:`repro.reliability.faults.StorageIO.read_tail`) and
  loads the segment body only when the filter says *maybe*;
* the trailer is invisible to every existing reader —
  :func:`repro.core.serialize.load_database` and ``scan_database``
  stop at the v2 footer, so a segment with a bloom trailer is still a
  valid v2 stream (and v1 segments simply have no trailer);
* the trailer is independently checksummed; a damaged trailer degrades
  to "no filter" (the segment is read — correct, just slower), never
  to a wrong answer.

Hashing is double hashing over a keyed BLAKE2b digest (index_i =
(h1 + i*h2) mod m), deterministic across processes and platforms —
a store built on one machine answers identically on another.

Wire format, appended after the ``PCFX`` footer::

    trailer := payload  crc32(payload):u32  payload_len:u32  "PCBF"
    payload := "BF01"  m_bits:u64  k:u8  seed:u64  bitmap bytes

The fixed-size tail (``payload_len`` + magic) sits at the very end of
the file so a reader can find the trailer with one bounded tail read.
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from typing import Iterable, Optional, Tuple

TRAILER_MAGIC = b"PCBF"
_PAYLOAD_MAGIC = b"BF01"
#: payload_len:u32 + magic — the fixed-size tail locating the trailer.
_TAIL_SIZE = 8
#: Bits provisioned per key (~1 % false-positive rate with k=7).
DEFAULT_BITS_PER_KEY = 10
DEFAULT_HASHES = 7
#: A trailer payload larger than this is treated as damage, not as a
#: request to allocate gigabytes.
_MAX_PAYLOAD = 1 << 28


class BloomFilter:
    """A fixed-size bloom filter over string keys.

    False positives are possible (a *maybe* answer costs one segment
    read that finds nothing); false negatives are not — a key that was
    added always answers *maybe*, which is the property the lookup
    path's correctness rests on.
    """

    __slots__ = ("m_bits", "k", "seed", "_bitmap")

    def __init__(self, m_bits: int, k: int = DEFAULT_HASHES, seed: int = 0) -> None:
        if m_bits < 8:
            raise ValueError(f"m_bits must be >= 8, got {m_bits}")
        if not 1 <= k <= 32:
            raise ValueError(f"k must be in [1, 32], got {k}")
        self.m_bits = int(m_bits)
        self.k = int(k)
        self.seed = int(seed)
        self._bitmap = bytearray((self.m_bits + 7) // 8)

    @classmethod
    def sized_for(
        cls,
        n_keys: int,
        bits_per_key: int = DEFAULT_BITS_PER_KEY,
        k: int = DEFAULT_HASHES,
        seed: int = 0,
    ) -> "BloomFilter":
        """A filter provisioned for ``n_keys`` keys."""
        return cls(max(64, n_keys * bits_per_key), k=k, seed=seed)

    def _hash_pair(self, key: str) -> Tuple[int, int]:
        digest = hashlib.blake2b(
            key.encode("utf-8"),
            digest_size=16,
            key=self.seed.to_bytes(8, "little"),
        ).digest()
        h1 = int.from_bytes(digest[:8], "little")
        # Forcing h2 odd keeps the probe sequence full-period for
        # power-of-two m and non-degenerate everywhere else.
        h2 = int.from_bytes(digest[8:], "little") | 1
        return h1, h2

    def add(self, key: str) -> None:
        """Insert ``key``."""
        h1, h2 = self._hash_pair(key)
        for i in range(self.k):
            position = (h1 + i * h2) % self.m_bits
            self._bitmap[position >> 3] |= 1 << (position & 7)

    def __contains__(self, key: str) -> bool:
        h1, h2 = self._hash_pair(key)
        for i in range(self.k):
            position = (h1 + i * h2) % self.m_bits
            if not self._bitmap[position >> 3] & (1 << (position & 7)):
                return False
        return True

    def fill_ratio(self) -> float:
        """Fraction of bitmap bits set (rough saturation indicator)."""
        set_bits = sum(bin(byte).count("1") for byte in self._bitmap)
        return set_bits / self.m_bits

    def to_bytes(self) -> bytes:
        """Serialize to the trailer payload layout."""
        return (
            _PAYLOAD_MAGIC
            + struct.pack("<QBQ", self.m_bits, self.k, self.seed)
            + bytes(self._bitmap)
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "BloomFilter":
        """Inverse of :meth:`to_bytes`; raises ``ValueError`` on damage."""
        header = 4 + 8 + 1 + 8
        if len(payload) < header or payload[:4] != _PAYLOAD_MAGIC:
            raise ValueError("not a bloom filter payload")
        m_bits, k, seed = struct.unpack("<QBQ", payload[4:header])
        bitmap = payload[header:]
        if len(bitmap) != (m_bits + 7) // 8:
            raise ValueError(
                f"bloom bitmap holds {len(bitmap)} bytes, "
                f"m_bits={m_bits} needs {(m_bits + 7) // 8}"
            )
        instance = cls(int(m_bits), k=int(k), seed=int(seed))
        instance._bitmap = bytearray(bitmap)
        return instance


def build_filter(keys: Iterable[str], seed: int = 0) -> BloomFilter:
    """A filter holding every key in ``keys``."""
    materialized = list(keys)
    instance = BloomFilter.sized_for(len(materialized), seed=seed)
    for key in materialized:
        instance.add(key)
    return instance


def append_trailer(segment_bytes: bytes, bloom: BloomFilter) -> bytes:
    """Segment stream plus the checksummed bloom trailer."""
    payload = bloom.to_bytes()
    return (
        segment_bytes
        + payload
        + struct.pack("<I", zlib.crc32(payload))
        + struct.pack("<I", len(payload))
        + TRAILER_MAGIC
    )


def parse_trailer(tail: bytes) -> Optional[BloomFilter]:
    """Decode a bloom trailer from the end of ``tail``.

    ``tail`` is any byte string ending at the end of the segment file
    (e.g. the result of a bounded ``read_tail``).  Returns ``None``
    when there is no trailer or it is damaged — the caller must then
    treat the segment as *maybe containing every key*.
    """
    if len(tail) < _TAIL_SIZE or tail[-4:] != TRAILER_MAGIC:
        return None
    (payload_length,) = struct.unpack("<I", tail[-8:-4])
    if payload_length > _MAX_PAYLOAD:
        return None
    block = payload_length + 4 + _TAIL_SIZE  # payload + crc + tail
    if len(tail) < block:
        return None
    payload = tail[-block:-block + payload_length]
    (expected_crc,) = struct.unpack("<I", tail[-12:-8])
    if zlib.crc32(payload) != expected_crc:
        return None
    try:
        return BloomFilter.from_bytes(payload)
    except ValueError:
        return None


def trailer_read_size(n_keys_hint: int = 1 << 16) -> int:
    """Tail bytes to request to be sure of capturing the trailer.

    Sized for the largest filter a segment of ``n_keys_hint`` records
    would carry, plus framing slack; reading more than the file holds
    is safe (``read_tail`` clamps).
    """
    return (n_keys_hint * DEFAULT_BITS_PER_KEY) // 8 + 64


def load_segment_bloom(io: object, path: object) -> Optional[BloomFilter]:
    """Read a segment's bloom filter via a bounded tail read.

    ``io`` is a :class:`~repro.reliability.faults.StorageIO`; returns
    ``None`` when the segment has no (valid) trailer — legacy v1
    segments, pre-bloom v2 segments, or a damaged trailer.
    """
    try:
        tail = io.read_tail(path, trailer_read_size())  # type: ignore[attr-defined]
    except OSError:
        return None
    return parse_trailer(tail)
