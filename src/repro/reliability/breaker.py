"""Per-shard circuit breakers for the identification fan-out.

The batch engine already retries a failing shard with backoff and a
timeout — the right behaviour for a *transient* fault, and exactly the
wrong one for a *persistent* fault: every batch re-pays the full
retry-and-backoff budget on a shard that is simply gone, and a
streaming pipeline stalls on it forever.  A circuit breaker turns that
repeated discovery into remembered state, the classic three-state
machine:

* **closed** — requests flow; consecutive failures are counted, and
  reaching ``failure_threshold`` trips the breaker open;
* **open** — requests are short-circuited without touching the shard
  (it is reported degraded immediately, costing nothing), until
  ``reset_timeout_s`` has elapsed;
* **half-open** — after the timeout one *probe* request is let
  through; success closes the breaker, failure re-opens it and the
  timeout starts again.

Half-open admission is **exactly one probe**, enforced with an
outstanding-probe count held under the breaker lock rather than a
bare boolean: concurrent callers that observe half-open together get
exactly one True, and a stale success/failure report from a request
admitted in an earlier closed era can no longer free the probe slot
while the real probe is still running.  Because a probe can also
*vanish* — its worker process SIGKILLed before it ever reports — each
probe carries a deadline (``probe_timeout_s``); once the deadline
passes, the slot is reclaimed (counted as ``breaker.probes_reclaimed``)
so a dead probe cannot wedge the breaker half-open forever.

Time comes from an injectable monotonic clock so tests and the chaos
benchmark can drive state transitions deterministically.  Metrics are
duck-typed (anything with a ``count`` method, in practice
:class:`repro.service.metrics.ServiceMetrics`) to keep this module
dependency-free of the service layer.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

try:  # pragma: no cover - Protocol exists on every supported Python
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]


class CounterSink(Protocol):
    """Anything accepting ``count(name)`` — duck-typed metrics."""

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name``."""


#: Breaker states (values appear in reports and checkpoints).
STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class CircuitBreaker:
    """One three-state breaker guarding a single downstream resource.

    Call :meth:`allow` before attempting the guarded operation; when it
    returns False the caller should skip the operation and degrade.
    Report the outcome with :meth:`record_success` /
    :meth:`record_failure`.  All methods are thread-safe.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (while closed) that trip the breaker.
    reset_timeout_s:
        Seconds the breaker stays open before letting one probe
        through.
    probe_timeout_s:
        Seconds an admitted half-open probe may stay outstanding
        before its slot is reclaimed (a probe whose worker died
        without reporting must not wedge the breaker).  Defaults to
        ``reset_timeout_s``.
    clock:
        Monotonic time source (injectable for deterministic tests).
    metrics:
        Optional counter sink (``count(name)``); transitions are
        counted as ``breaker.opened`` / ``breaker.half_open`` /
        ``breaker.closed`` and short-circuited calls as
        ``breaker.short_circuits``.
    name:
        Label used in snapshots and error messages.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[CounterSink] = None,
        name: str = "",
        probe_timeout_s: Optional[float] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s < 0.0:
            raise ValueError(
                f"reset_timeout_s must be >= 0, got {reset_timeout_s}"
            )
        if probe_timeout_s is not None and probe_timeout_s < 0.0:
            raise ValueError(
                f"probe_timeout_s must be >= 0, got {probe_timeout_s}"
            )
        self._failure_threshold = failure_threshold
        self._reset_timeout_s = reset_timeout_s
        self._probe_timeout_s = (
            reset_timeout_s if probe_timeout_s is None else probe_timeout_s
        )
        self._clock = clock
        self._metrics = metrics
        self.name = name
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probes_outstanding = 0
        self._probe_deadline: Optional[float] = None
        self._times_opened = 0

    def _count(self, counter: str) -> None:
        if self._metrics is not None:
            self._metrics.count(counter)

    @property
    def state(self) -> str:
        """Current state (``closed`` / ``open`` / ``half_open``)."""
        with self._lock:
            return self._state

    @property
    def times_opened(self) -> int:
        """How many times this breaker has tripped open."""
        with self._lock:
            return self._times_opened

    def _probe_slot_free(self, now: float) -> bool:
        """Whether a new probe may be issued (lock held by caller).

        The slot is free when no probe is outstanding, or when the
        outstanding probe blew past its deadline without ever
        reporting — a vanished probe (killed worker) is reclaimed so
        the breaker cannot stay wedged half-open.
        """
        if self._probes_outstanding == 0:
            return True
        if self._probe_deadline is not None and now >= self._probe_deadline:
            self._probes_outstanding = 0  # repro-lint: disable=REP003 -- private helper; every caller holds self._lock (documented in the docstring)
            self._probe_deadline = None  # repro-lint: disable=REP003 -- private helper; every caller holds self._lock (documented in the docstring)
            self._count("breaker.probes_reclaimed")
            return True
        return False

    def _issue_probe(self, now: float) -> None:
        """Mark one probe outstanding with a deadline (lock held)."""
        self._probes_outstanding += 1  # repro-lint: disable=REP003 -- private helper; every caller holds self._lock (documented in the docstring)
        self._probe_deadline = now + self._probe_timeout_s  # repro-lint: disable=REP003 -- private helper; every caller holds self._lock (documented in the docstring)

    def _resolve_probe(self) -> None:
        """Release the probe slot after an outcome report (lock held).

        Floor at zero: success reports from requests admitted while
        closed arrive constantly and must never drive the count
        negative (which would let two later probes fly together).
        """
        if self._probes_outstanding > 0:
            self._probes_outstanding -= 1  # repro-lint: disable=REP003 -- private helper; every caller holds self._lock (documented in the docstring)
        if self._probes_outstanding == 0:
            self._probe_deadline = None  # repro-lint: disable=REP003 -- private helper; every caller holds self._lock (documented in the docstring)

    def allow(self) -> bool:
        """True when the guarded operation may be attempted now.

        While open, returns False until the reset timeout elapses, at
        which point exactly one caller is admitted as the half-open
        probe; concurrent callers keep getting False until that probe
        reports its outcome (or its deadline reclaims the slot).
        """
        with self._lock:
            if self._state == STATE_CLOSED:
                return True
            now = self._clock()
            if self._state == STATE_OPEN:
                elapsed = now - self._opened_at
                if elapsed < self._reset_timeout_s:
                    self._count("breaker.short_circuits")
                    return False
                if not self._probe_slot_free(now):
                    # A probe from an earlier half-open era is still
                    # out there; do not race a second one against it.
                    self._count("breaker.short_circuits")
                    return False
                self._state = STATE_HALF_OPEN
                self._issue_probe(now)
                self._count("breaker.half_open")
                return True
            # Half-open: admit only while the probe slot is free.
            if not self._probe_slot_free(now):
                self._count("breaker.short_circuits")
                return False
            self._issue_probe(now)
            return True

    def record_success(self) -> None:
        """Report that the guarded operation succeeded."""
        with self._lock:
            self._consecutive_failures = 0
            self._resolve_probe()
            if self._state != STATE_CLOSED:
                self._state = STATE_CLOSED
                self._opened_at = None
                self._count("breaker.closed")

    def record_failure(self) -> None:
        """Report that the guarded operation failed."""
        with self._lock:
            if self._state == STATE_HALF_OPEN:
                # The probe failed: straight back to open, fresh timer.
                self._resolve_probe()
                self._state = STATE_OPEN
                self._opened_at = self._clock()
                self._times_opened += 1
                self._count("breaker.opened")
                return
            if self._state == STATE_OPEN:
                # A straggler admitted before the trip reports back;
                # it is not the probe, so the probe slot is untouched.
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self._failure_threshold:
                self._state = STATE_OPEN
                self._opened_at = self._clock()
                self._times_opened += 1
                self._count("breaker.opened")

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly view of the breaker's state."""
        with self._lock:
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "times_opened": self._times_opened,
                "probes_outstanding": self._probes_outstanding,
            }


class BreakerBoard:
    """Lazy registry of per-shard breakers sharing one configuration.

    The batch engine and the streaming pipeline hold one board per
    store; shard breakers come into existence on first use so a board
    never needs to know the shard count up front.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[CounterSink] = None,
        probe_timeout_s: Optional[float] = None,
    ) -> None:
        self._failure_threshold = failure_threshold
        self._reset_timeout_s = reset_timeout_s
        self._probe_timeout_s = probe_timeout_s
        self._clock = clock
        self._metrics = metrics
        self._lock = threading.Lock()
        self._breakers: Dict[int, CircuitBreaker] = {}

    def breaker(self, shard: int) -> CircuitBreaker:
        """The breaker guarding ``shard`` (created on first use)."""
        with self._lock:
            existing = self._breakers.get(shard)
            if existing is None:
                existing = self._breakers[shard] = CircuitBreaker(
                    failure_threshold=self._failure_threshold,
                    reset_timeout_s=self._reset_timeout_s,
                    clock=self._clock,
                    metrics=self._metrics,
                    name=f"shard-{shard}",
                    probe_timeout_s=self._probe_timeout_s,
                )
            return existing

    def allow(self, shard: int) -> bool:
        """Delegates to the shard's breaker."""
        return self.breaker(shard).allow()

    def record_success(self, shard: int) -> None:
        """Delegates to the shard's breaker."""
        self.breaker(shard).record_success()

    def record_failure(self, shard: int) -> None:
        """Delegates to the shard's breaker."""
        self.breaker(shard).record_failure()

    def open_shards(self) -> List[int]:
        """Shards whose breaker is currently open or half-open."""
        with self._lock:
            breakers = list(self._breakers.items())
        return sorted(
            shard
            for shard, breaker in breakers
            if breaker.state != STATE_CLOSED
        )

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-shard breaker snapshots keyed by shard id (as strings)."""
        with self._lock:
            breakers = list(self._breakers.items())
        return {str(shard): breaker.snapshot() for shard, breaker in breakers}
