"""Per-shard circuit breakers for the identification fan-out.

The batch engine already retries a failing shard with backoff and a
timeout — the right behaviour for a *transient* fault, and exactly the
wrong one for a *persistent* fault: every batch re-pays the full
retry-and-backoff budget on a shard that is simply gone, and a
streaming pipeline stalls on it forever.  A circuit breaker turns that
repeated discovery into remembered state, the classic three-state
machine:

* **closed** — requests flow; consecutive failures are counted, and
  reaching ``failure_threshold`` trips the breaker open;
* **open** — requests are short-circuited without touching the shard
  (it is reported degraded immediately, costing nothing), until
  ``reset_timeout_s`` has elapsed;
* **half-open** — after the timeout one *probe* request is let
  through; success closes the breaker, failure re-opens it and the
  timeout starts again.

Time comes from an injectable monotonic clock so tests and the chaos
benchmark can drive state transitions deterministically.  Metrics are
duck-typed (anything with a ``count`` method, in practice
:class:`repro.service.metrics.ServiceMetrics`) to keep this module
dependency-free of the service layer.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

try:  # pragma: no cover - Protocol exists on every supported Python
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]


class CounterSink(Protocol):
    """Anything accepting ``count(name)`` — duck-typed metrics."""

    def count(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name``."""


#: Breaker states (values appear in reports and checkpoints).
STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class CircuitBreaker:
    """One three-state breaker guarding a single downstream resource.

    Call :meth:`allow` before attempting the guarded operation; when it
    returns False the caller should skip the operation and degrade.
    Report the outcome with :meth:`record_success` /
    :meth:`record_failure`.  All methods are thread-safe.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (while closed) that trip the breaker.
    reset_timeout_s:
        Seconds the breaker stays open before letting one probe
        through.
    clock:
        Monotonic time source (injectable for deterministic tests).
    metrics:
        Optional counter sink (``count(name)``); transitions are
        counted as ``breaker.opened`` / ``breaker.half_open`` /
        ``breaker.closed`` and short-circuited calls as
        ``breaker.short_circuits``.
    name:
        Label used in snapshots and error messages.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[CounterSink] = None,
        name: str = "",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s < 0.0:
            raise ValueError(
                f"reset_timeout_s must be >= 0, got {reset_timeout_s}"
            )
        self._failure_threshold = failure_threshold
        self._reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._metrics = metrics
        self.name = name
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False
        self._times_opened = 0

    def _count(self, counter: str) -> None:
        if self._metrics is not None:
            self._metrics.count(counter)

    @property
    def state(self) -> str:
        """Current state (``closed`` / ``open`` / ``half_open``)."""
        with self._lock:
            return self._state

    @property
    def times_opened(self) -> int:
        """How many times this breaker has tripped open."""
        with self._lock:
            return self._times_opened

    def allow(self) -> bool:
        """True when the guarded operation may be attempted now.

        While open, returns False until the reset timeout elapses, at
        which point exactly one caller is admitted as the half-open
        probe; concurrent callers keep getting False until that probe
        reports its outcome.
        """
        with self._lock:
            if self._state == STATE_CLOSED:
                return True
            if self._state == STATE_OPEN:
                elapsed = self._clock() - self._opened_at
                if elapsed < self._reset_timeout_s:
                    self._count("breaker.short_circuits")
                    return False
                self._state = STATE_HALF_OPEN
                self._probe_in_flight = True
                self._count("breaker.half_open")
                return True
            # Half-open: only the single probe is in flight.
            if self._probe_in_flight:
                self._count("breaker.short_circuits")
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        """Report that the guarded operation succeeded."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != STATE_CLOSED:
                self._state = STATE_CLOSED
                self._opened_at = None
                self._count("breaker.closed")

    def record_failure(self) -> None:
        """Report that the guarded operation failed."""
        with self._lock:
            self._probe_in_flight = False
            if self._state == STATE_HALF_OPEN:
                # The probe failed: straight back to open, fresh timer.
                self._state = STATE_OPEN
                self._opened_at = self._clock()
                self._times_opened += 1
                self._count("breaker.opened")
                return
            self._consecutive_failures += 1
            if (
                self._state == STATE_CLOSED
                and self._consecutive_failures >= self._failure_threshold
            ):
                self._state = STATE_OPEN
                self._opened_at = self._clock()
                self._times_opened += 1
                self._count("breaker.opened")

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly view of the breaker's state."""
        with self._lock:
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "times_opened": self._times_opened,
            }


class BreakerBoard:
    """Lazy registry of per-shard breakers sharing one configuration.

    The batch engine and the streaming pipeline hold one board per
    store; shard breakers come into existence on first use so a board
    never needs to know the shard count up front.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[CounterSink] = None,
    ) -> None:
        self._failure_threshold = failure_threshold
        self._reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._metrics = metrics
        self._lock = threading.Lock()
        self._breakers: Dict[int, CircuitBreaker] = {}

    def breaker(self, shard: int) -> CircuitBreaker:
        """The breaker guarding ``shard`` (created on first use)."""
        with self._lock:
            existing = self._breakers.get(shard)
            if existing is None:
                existing = self._breakers[shard] = CircuitBreaker(
                    failure_threshold=self._failure_threshold,
                    reset_timeout_s=self._reset_timeout_s,
                    clock=self._clock,
                    metrics=self._metrics,
                    name=f"shard-{shard}",
                )
            return existing

    def allow(self, shard: int) -> bool:
        """Delegates to the shard's breaker."""
        return self.breaker(shard).allow()

    def record_success(self, shard: int) -> None:
        """Delegates to the shard's breaker."""
        self.breaker(shard).record_success()

    def record_failure(self, shard: int) -> None:
        """Delegates to the shard's breaker."""
        self.breaker(shard).record_failure()

    def open_shards(self) -> List[int]:
        """Shards whose breaker is currently open or half-open."""
        with self._lock:
            breakers = list(self._breakers.items())
        return sorted(
            shard
            for shard, breaker in breakers
            if breaker.state != STATE_CLOSED
        )

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-shard breaker snapshots keyed by shard id (as strings)."""
        with self._lock:
            breakers = list(self._breakers.items())
        return {str(shard): breaker.snapshot() for shard, breaker in breakers}
