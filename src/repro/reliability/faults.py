"""Deterministic fault injection under the fingerprint store's IO.

The paper's premise is that storage silently decays bits; the store
that hoards the attacker's fingerprints is itself storage.  This module
gives the store an explicit IO seam (:class:`StorageIO`) and a chaos
wrapper (:class:`FaultyIO`) that turns "what if the machine dies here?"
into an enumerable, reproducible test axis:

* every durable operation (write, read, replace, remove, directory
  fsync) advances a global **operation counter**;
* a :class:`FaultPlan` names the operation index at which the fault
  fires and what it does — crash (raise mid-ingest), torn write
  (persist a prefix, then raise), post-rename crash (the atomic
  replace lands, then the process dies before publishing it), silent
  seeded bit flips, or a window of transient errors that clears for
  retries;
* the RNG is seeded (``REPRO_FAULT_SEED`` in CI), so every crash point
  and every corruption pattern replays bit-for-bit.

The real implementation, :class:`StorageIO`, is deliberately paranoid:
data files are fsynced before they are visible, atomic replaces fsync
the temporary first, and directory entries are fsynced after renames
and removals — the classic power-cut checklist.  Tests assert the
*ordering* of these operations through the recording counter.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

PathLike = Union[str, Path]

#: Fault modes understood by :class:`FaultPlan`.
MODE_CRASH = "crash"
MODE_TORN = "torn"
MODE_BITFLIP = "bitflip"
MODE_RENAME = "rename"
_MODES = (MODE_CRASH, MODE_TORN, MODE_BITFLIP, MODE_RENAME)


class InjectedFault(OSError):
    """The error :class:`FaultyIO` raises at a planned crash point."""


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of when and how IO misbehaves.

    ``fail_at`` is the 1-based operation index at which the fault
    fires; ``fail_count`` widens it to a window of consecutive
    operations (a *transient* outage: an operation retried after the
    window succeeds, because the retry lands on a later index).
    ``mode`` selects the behaviour at a firing point:

    * ``"crash"`` — raise :class:`InjectedFault` before touching disk;
    * ``"torn"`` — persist a prefix of the payload, then raise (only
      meaningful for writes; reads under ``"torn"`` crash);
    * ``"bitflip"`` — flip ``flip_bits`` seeded-random bits in the
      payload and carry on silently (write: corrupt data lands on
      disk; read: corrupt data is returned);
    * ``"rename"`` — on a ``replace`` operation, *perform* the atomic
      rename and then die.  ``"crash"`` kills a replace before it
      touches disk, so between the two modes both sides of the
      atomic-replace step are enumerable — the compaction protocol's
      "crash after the segment rename, before the manifest write"
      point needs the post-rename side.  Non-replace operations under
      ``"rename"`` crash before touching disk, like ``"crash"``.

    ``match`` restricts faults to operations whose path contains the
    substring, so a plan can target one segment file.
    """

    fail_at: Optional[int] = None
    mode: str = MODE_CRASH
    fail_count: int = 1
    flip_bits: int = 8
    seed: int = 0
    match: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}")
        if self.fail_count < 1:
            raise ValueError(f"fail_count must be >= 1, got {self.fail_count}")
        if self.flip_bits < 1:
            raise ValueError(f"flip_bits must be >= 1, got {self.flip_bits}")

    def fires(self, op_index: int, path: PathLike) -> bool:
        """True when operation ``op_index`` on ``path`` hits the plan."""
        if self.fail_at is None:
            return False
        if not self.fail_at <= op_index < self.fail_at + self.fail_count:
            return False
        return self.match is None or self.match in str(path)


class StorageIO:
    """Durable filesystem primitives the fingerprint store builds on.

    Every method is one *operation* in the fault-injection sense.  The
    durability discipline lives here so the store logic never calls
    ``os`` directly: a power cut between any two operations leaves the
    store in a state :meth:`~repro.service.store.ShardedFingerprintStore.recover`
    can resolve.
    """

    def write_bytes(self, path: PathLike, data: bytes, sync: bool = True) -> None:
        """Write ``data`` to ``path``, fsyncing the file by default."""
        with open(path, "wb") as stream:
            stream.write(data)
            if sync:
                stream.flush()
                os.fsync(stream.fileno())

    def append_bytes(self, path: PathLike, data: bytes, sync: bool = True) -> None:
        """Append ``data`` to ``path`` (creating it), fsynced by default."""
        with open(path, "ab") as stream:
            stream.write(data)
            if sync:
                stream.flush()
                os.fsync(stream.fileno())

    def truncate(self, path: PathLike, size: int) -> None:
        """Cut ``path`` down to ``size`` bytes (resume discards torn tails)."""
        with open(path, "rb+") as stream:
            stream.truncate(size)
            stream.flush()
            os.fsync(stream.fileno())

    def read_bytes(self, path: PathLike) -> bytes:
        """Read the whole file at ``path``."""
        with open(path, "rb") as stream:
            return stream.read()

    def read_tail(self, path: PathLike, size: int) -> bytes:
        """Read up to the last ``size`` bytes of ``path``.

        The bloom-filter trailer lives at the end of a segment file;
        reading it must not cost a full segment scan, so this is its
        own primitive (and its own fault-injection point).
        """
        with open(path, "rb") as stream:
            stream.seek(0, os.SEEK_END)
            length = stream.tell()
            stream.seek(max(0, length - size))
            return stream.read()

    def replace(self, source: PathLike, destination: PathLike) -> None:
        """Atomically rename ``source`` over ``destination``."""
        os.replace(source, destination)

    def fsync_dir(self, path: PathLike) -> None:
        """Flush a directory entry table (after create/rename/remove)."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        except OSError:
            # Some filesystems refuse directory fsync; the rename is
            # still atomic, durability is merely weakened.
            pass
        finally:
            os.close(fd)

    def remove(self, path: PathLike) -> None:
        """Unlink ``path``."""
        os.remove(path)


@dataclass(frozen=True)
class WorkerCrashPlan:
    """Declarative schedule of identification-worker deaths.

    The streaming pipeline counts worker *invocations* (one per
    identification attempt, retries included); an invocation whose
    1-based index is in ``crash_at`` dies with :class:`InjectedFault`
    before doing any work.  Because the supervisor's restart is a fresh
    invocation with a later index, a planned crash is transient by
    construction — exactly the failure the supervisor exists to absorb
    — while a *run* of consecutive indices models a worker that keeps
    dying until the restart budget escalates.
    """

    crash_at: Tuple[int, ...] = ()

    @classmethod
    def seeded(
        cls, seed: int, rate: float, horizon: int
    ) -> "WorkerCrashPlan":
        """Plan killing roughly ``rate`` of the first ``horizon``
        invocations, chosen by a seeded RNG (CI's ``REPRO_FAULT_SEED``
        axis)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        rng = np.random.default_rng(seed)
        indices = tuple(
            int(index) + 1
            for index in np.flatnonzero(rng.random(horizon) < rate)
        )
        return cls(crash_at=indices)


@dataclass(frozen=True)
class ProcessKillPlan:
    """Seeded schedule of worker-*process* SIGKILLs.

    Where :class:`WorkerCrashPlan` kills worker thread invocations with
    an exception the supervisor can catch, this plan is for the cluster
    chaos benchmark's blunter weapon: SIGKILL of a whole worker
    process at a planned point in the request stream.  ``kill_at``
    holds ``(batch_index, worker_slot)`` pairs — before serving the
    1-based ``batch_index``-th identification batch, the worker in
    ``worker_slot`` is SIGKILLed.  The schedule is a pure function of
    the seed (CI's ``REPRO_FAULT_SEED`` axis), so a chaos run replays
    exactly.
    """

    kill_at: Tuple[Tuple[int, int], ...] = ()

    @classmethod
    def seeded(
        cls, seed: int, n_workers: int, kills: int, horizon: int
    ) -> "ProcessKillPlan":
        """Plan ``kills`` kills across the first ``horizon`` batches,
        each aimed at a seeded-random worker slot."""
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if kills < 0:
            raise ValueError(f"kills must be >= 0, got {kills}")
        rng = np.random.default_rng(seed)
        count = min(kills, horizon)
        batches = np.sort(
            rng.choice(horizon, size=count, replace=False)
        )
        slots = rng.integers(0, n_workers, size=count)
        return cls(
            kill_at=tuple(
                (int(batch) + 1, int(slot))
                for batch, slot in zip(batches, slots)
            )
        )

    def kills_for(self, batch_index: int) -> List[int]:
        """Worker slots to SIGKILL before the 1-based ``batch_index``."""
        return [
            slot for batch, slot in self.kill_at if batch == batch_index
        ]


class WorkerFaultInjector:
    """Callable hook a worker runs on entry; dies on planned indices.

    Thread-safe: invocations may come from supervisor-spawned worker
    threads.  The zero-argument call signature is the whole contract —
    the streaming pipeline accepts any ``Callable[[], None]`` as its
    ``worker_fault_hook``, this class is merely the deterministic
    implementation the chaos tests use.
    """

    def __init__(self, plan: WorkerCrashPlan) -> None:
        self.plan = plan
        self.invocations = 0
        self.kills = 0
        self._lock = threading.Lock()
        self._crash_at = frozenset(plan.crash_at)

    def __call__(self) -> None:
        with self._lock:
            self.invocations += 1
            fires = self.invocations in self._crash_at
            if fires:
                self.kills += 1
            invocation = self.invocations
        if fires:
            raise InjectedFault(
                f"injected worker crash at invocation {invocation}"
            )


class FaultyIO(StorageIO):
    """A :class:`StorageIO` that misbehaves exactly as planned.

    Wraps an inner implementation (a real :class:`StorageIO` by
    default), counts every operation into :attr:`ops`, logs them into
    :attr:`log` as ``(op_name, path)`` tuples, and applies the
    :class:`FaultPlan` at its firing window.  Counting is deterministic
    for a fixed call sequence, which is what makes "crash at operation
    N, for every N" an exhaustive loop rather than a race.
    """

    def __init__(
        self, plan: FaultPlan = FaultPlan(), inner: Optional[StorageIO] = None
    ) -> None:
        self.plan = plan
        self.inner = inner if inner is not None else StorageIO()
        self.ops = 0
        self.faults_fired = 0
        self.log: List[Tuple[str, str]] = []
        self._rng = np.random.default_rng(plan.seed)

    # ------------------------------------------------------------------
    # Fault machinery
    # ------------------------------------------------------------------

    def _enter(self, op_name: str, path: PathLike) -> bool:
        """Count one operation; True when the fault plan fires on it."""
        self.ops += 1
        self.log.append((op_name, str(path)))
        if self.plan.fires(self.ops, path):
            self.faults_fired += 1
            return True
        return False

    def _corrupt(self, data: bytes) -> bytes:
        """Flip ``plan.flip_bits`` seeded-random bits of ``data``."""
        if not data:
            return data
        corrupted = bytearray(data)
        for _ in range(self.plan.flip_bits):
            position = int(self._rng.integers(0, len(corrupted)))
            corrupted[position] ^= 1 << int(self._rng.integers(0, 8))
        return bytes(corrupted)

    # ------------------------------------------------------------------
    # StorageIO surface
    # ------------------------------------------------------------------

    def write_bytes(self, path: PathLike, data: bytes, sync: bool = True) -> None:
        if self._enter("write_bytes", path):
            if self.plan.mode == MODE_TORN:
                # Persist only a prefix — the classic torn write — then
                # die.  The prefix is synced so recovery really sees it.
                self.inner.write_bytes(path, data[: len(data) // 2], sync=True)
                raise InjectedFault(f"injected torn write at op {self.ops}: {path}")
            if self.plan.mode == MODE_BITFLIP:
                self.inner.write_bytes(path, self._corrupt(data), sync=sync)
                return
            raise InjectedFault(f"injected crash at op {self.ops}: {path}")
        self.inner.write_bytes(path, data, sync=sync)

    def append_bytes(self, path: PathLike, data: bytes, sync: bool = True) -> None:
        if self._enter("append_bytes", path):
            if self.plan.mode == MODE_TORN:
                self.inner.append_bytes(path, data[: len(data) // 2], sync=True)
                raise InjectedFault(
                    f"injected torn append at op {self.ops}: {path}"
                )
            if self.plan.mode == MODE_BITFLIP:
                self.inner.append_bytes(path, self._corrupt(data), sync=sync)
                return
            raise InjectedFault(f"injected crash at op {self.ops}: {path}")
        self.inner.append_bytes(path, data, sync=sync)

    def truncate(self, path: PathLike, size: int) -> None:
        if self._enter("truncate", path):
            raise InjectedFault(f"injected crash at op {self.ops}: {path}")
        self.inner.truncate(path, size)

    def read_bytes(self, path: PathLike) -> bytes:
        if self._enter("read_bytes", path):
            if self.plan.mode == MODE_BITFLIP:
                return self._corrupt(self.inner.read_bytes(path))
            raise InjectedFault(f"injected read error at op {self.ops}: {path}")
        return self.inner.read_bytes(path)

    def read_tail(self, path: PathLike, size: int) -> bytes:
        if self._enter("read_tail", path):
            if self.plan.mode == MODE_BITFLIP:
                return self._corrupt(self.inner.read_tail(path, size))
            raise InjectedFault(f"injected read error at op {self.ops}: {path}")
        return self.inner.read_tail(path, size)

    def replace(self, source: PathLike, destination: PathLike) -> None:
        if self._enter("replace", destination):
            if self.plan.mode == MODE_RENAME:
                # The rename itself lands on disk; the crash hits the
                # gap between the replace and whatever was meant to
                # publish it (the manifest write, for compaction).
                self.inner.replace(source, destination)
                raise InjectedFault(
                    f"injected post-rename crash at op {self.ops}: {destination}"
                )
            raise InjectedFault(f"injected crash at op {self.ops}: {destination}")
        self.inner.replace(source, destination)

    def fsync_dir(self, path: PathLike) -> None:
        if self._enter("fsync_dir", path):
            raise InjectedFault(f"injected crash at op {self.ops}: {path}")
        self.inner.fsync_dir(path)

    def remove(self, path: PathLike) -> None:
        if self._enter("remove", path):
            raise InjectedFault(f"injected crash at op {self.ops}: {path}")
        self.inner.remove(path)
