"""Crash-safety, fault injection and self-healing for the service.

The paper is about storage that silently decays bits (§3, §6); the
attacker's own fingerprint store — years of accumulated interceptions
per §4 — lives on exactly that kind of storage.  This subpackage gives
the store a real failure model and the tools to survive it:

* :mod:`repro.reliability.faults` — the :class:`StorageIO` seam every
  durable store operation goes through, plus :class:`FaultyIO` /
  :class:`FaultPlan`, a deterministic chaos layer (crash at operation
  N, torn writes, seeded bit flips, transient error windows) the tests
  and the chaos benchmark use to enumerate crash points;
* :mod:`repro.reliability.repair` — :func:`verify_store`, a strictly
  read-only ``fsck`` for a store directory, and :func:`repair_store`,
  the self-healing pass that salvages readable records out of corrupt
  segments and quarantines the rest while preserving global sequence
  numbers (and therefore Algorithm 2 decisions);
* :mod:`repro.reliability.bloom` — per-segment bloom filters persisted
  as checksummed segment trailers, so point lookups skip cold segments
  instead of reading every body;
* :mod:`repro.reliability.compaction` — the LSM maintenance half:
  :class:`CompactionPolicy` / :class:`Compactor` /
  :class:`BackgroundCompactor` merge small and tombstone-carrying
  segments through the store's journalled
  ``commit_compaction`` protocol, so a crash mid-merge resolves to
  exactly the pre- or post-merge store;
* :mod:`repro.reliability.breaker` — :class:`CircuitBreaker` /
  :class:`BreakerBoard`, the per-shard closed → open → half-open state
  machine the batch engine and the streaming pipeline layer over the
  retry/timeout path so a persistently failing shard is skipped
  cheaply instead of re-paying the retry budget forever.

Fault hooks for killing *workers* (not just storage) live next to the
storage chaos layer: :class:`WorkerCrashPlan` /
:class:`WorkerFaultInjector` deterministically kill identification
worker invocations so the supervisor's restart-and-escalate logic is
testable crash by crash.

The crash-safe write protocol itself (write-ahead journal, fsynced
segments, atomic manifest swap, idempotent recovery) lives in
:mod:`repro.service.store`; degraded-mode serving (retry with backoff,
per-shard timeouts, ``degraded`` result tagging) in
:mod:`repro.service.batch`.  CLI front ends: ``repro verify-store``
and ``repro repair``.
"""

from repro.reliability.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerBoard,
    CircuitBreaker,
)
from repro.reliability.bloom import BloomFilter, build_filter
from repro.reliability.faults import (
    FaultPlan,
    FaultyIO,
    InjectedFault,
    ProcessKillPlan,
    StorageIO,
    WorkerCrashPlan,
    WorkerFaultInjector,
)

_REPAIR_EXPORTS = (
    "PruneReport",
    "RepairReport",
    "SegmentVerification",
    "StoreVerification",
    "prune_quarantine",
    "repair_store",
    "verify_store",
)

_COMPACTION_EXPORTS = (
    "BackgroundCompactor",
    "CompactionPlan",
    "CompactionPolicy",
    "CompactionReport",
    "Compactor",
    "MergePlan",
    "MergeReport",
    "plan_compaction",
    "stream_load_probe",
)


def __getattr__(name: str):
    # repro.service.store imports repro.reliability.faults and .bloom,
    # and both repro.reliability.repair and .compaction import the
    # store back; those surfaces are therefore re-exported lazily
    # (PEP 562) so that importing this package from inside the store
    # does not cycle.
    if name in _REPAIR_EXPORTS:
        from repro.reliability import repair

        return getattr(repair, name)
    if name in _COMPACTION_EXPORTS:
        from repro.reliability import compaction

        return getattr(compaction, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BackgroundCompactor",
    "BloomFilter",
    "BreakerBoard",
    "CircuitBreaker",
    "CompactionPlan",
    "CompactionPolicy",
    "CompactionReport",
    "Compactor",
    "FaultPlan",
    "FaultyIO",
    "InjectedFault",
    "MergePlan",
    "MergeReport",
    "ProcessKillPlan",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "StorageIO",
    "WorkerCrashPlan",
    "WorkerFaultInjector",
    "PruneReport",
    "RepairReport",
    "SegmentVerification",
    "StoreVerification",
    "build_filter",
    "plan_compaction",
    "prune_quarantine",
    "repair_store",
    "stream_load_probe",
    "verify_store",
]
