"""Figure 8 / §7.2 — consistency of error patterns across trials."""

from __future__ import annotations

from repro.analysis import accumulate_occurrences, render_heatmap
from repro.dram import KM41464A, DRAMChip, ExperimentPlatform, TrialConditions
from repro.experiments.base import ExperimentReport, register


def run(
    n_trials: int = 21,
    accuracy: float = 0.99,
    temperature_c: float = 40.0,
    chip_seed: int = 8,
) -> ExperimentReport:
    """Reproduce Figure 8: occurrence heatmap + repeatability statistic."""
    chip = DRAMChip(KM41464A, chip_seed=chip_seed)
    platform = ExperimentPlatform(chip)
    conditions = TrialConditions(accuracy=accuracy, temperature_c=temperature_c)
    error_strings = [
        platform.run_trial(conditions).error_string for _ in range(n_trials)
    ]
    occurrence = accumulate_occurrences(error_strings)
    repeatability = occurrence.repeatability()
    text = "\n".join(
        [
            render_heatmap(occurrence, chip.geometry),
            "",
            f"cells failing at least once: {int(occurrence.ever_failed.sum())}",
            f"cells failing in all trials: {int(occurrence.always_failed.sum())}",
            f"unpredictable cells:         {int(occurrence.unpredictable.sum())}",
            f"repeatability: {repeatability:.4f}",
            "paper: more than 98% of failing bits repeat across all 21 trials",
        ]
    )
    return ExperimentReport(
        experiment_id="fig08",
        title=f"cell unpredictability heatmap ({n_trials} trials, "
        f"{accuracy:.0%} accuracy, {temperature_c:.0f} degC)",
        text=text,
        metrics={
            "repeatability": repeatability,
            "ever_failed": float(occurrence.ever_failed.sum()),
            "unpredictable": float(occurrence.unpredictable.sum()),
        },
    )


@register("fig08")
def _run_default() -> ExperimentReport:
    return run()
