"""Data-dependence study — the honest gap in the paper's §7.6 model.

A decayed cell only shows an error if the stored data *charged* it, and
real data charges roughly half the cells.  The paper's end-to-end model
(like its worst-case-data platform experiments) assumes every volatile
cell is observable; this study makes the assumption a knob
(``charge_fraction`` on :class:`~repro.system.ModeledApproximateMemory`)
and measures how eavesdropper stitching degrades as observations thin
out.

Expected shape: at full charge the suspect count converges to ~1; as
the charge fraction drops, page observations share fewer volatile bits
(two independent observations of the same page overlap in
``charge_fraction**2`` of its volatile cells), page matching misses
more overlaps, and convergence slows and eventually stalls.  The attack
still works — it just needs more samples — which refines rather than
overturns the paper's conclusion.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.attacks import EavesdropperAttacker, run_stitching_experiment
from repro.experiments.base import ExperimentReport, register
from repro.system import ModeledApproximateMemory, PhysicalMemoryMap

TOTAL_PAGES = 1024
SAMPLE_PAGES = 24
N_SAMPLES = 300


def run(
    charge_fractions: Tuple[float, ...] = (1.0, 0.75, 0.5),
    seed: int = 77,
) -> ExperimentReport:
    """Stitching convergence as a function of data charge fraction."""
    rows = []
    metrics = {}
    for charge_fraction in charge_fractions:
        machine = ModeledApproximateMemory(
            chip_seed=seed,
            memory_map=PhysicalMemoryMap(total_pages=TOTAL_PAGES),
            charge_fraction=charge_fraction,
        )
        # Two same-page observations only share charged-volatile bits,
        # so the match threshold must admit 1 - charge_fraction misses.
        attacker = EavesdropperAttacker(
            threshold=min(0.9, (1.0 - charge_fraction) + 0.25)
        )
        curve = run_stitching_experiment(
            machines=[machine],
            n_samples=N_SAMPLES,
            sample_pages=SAMPLE_PAGES,
            rng=np.random.default_rng(seed),
            record_every=N_SAMPLES,
            attacker=attacker,
        )
        final = curve.final.suspected_chips
        rows.append(
            f"  charge {charge_fraction:>4.0%}  final suspected chips "
            f"after {N_SAMPLES} samples: {final}"
        )
        metrics[f"final_{int(charge_fraction * 100)}"] = float(final)
    text = "\n".join(
        [
            f"eavesdropper stitching vs data charge fraction "
            f"({TOTAL_PAGES}-page memory, {SAMPLE_PAGES}-page samples, "
            f"one machine)",
            *rows,
            "",
            "the paper's model assumes charge fraction 1.0 (worst-case "
            "data); realistic data thins page observations and slows "
            "convergence, so the <100-sample figure is a lower bound.",
        ]
    )
    return ExperimentReport(
        experiment_id="ext-data",
        title="stitching convergence vs data charge fraction",
        text=text,
        metrics=metrics,
    )


@register("ext-data")
def _run_default() -> ExperimentReport:
    return run()
