"""Extension — SECDED ECC as a defense, swept across approximation levels."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core import characterize_trials, probable_cause_distance
from repro.defenses import SECDEDDefense, expected_uncorrectable_word_fraction
from repro.dram import KM41464A, DRAMChip, ExperimentPlatform, TrialConditions
from repro.experiments.base import ExperimentReport, register


def run(
    error_rates: Tuple[float, ...] = (0.001, 0.005, 0.01, 0.05, 0.10),
    victim_seed: int = 860,
) -> ExperimentReport:
    """Per approximation level: ECC suppression, residual evidence, and
    whether identification still succeeds."""
    victim = DRAMChip(KM41464A, chip_seed=victim_seed)
    decoy = DRAMChip(KM41464A, chip_seed=victim_seed + 1)
    fingerprints = {}
    for name, chip in (("victim", victim), ("decoy", decoy)):
        platform = ExperimentPlatform(chip)
        fingerprints[name] = characterize_trials(
            [platform.run_trial(TrialConditions(0.99, 40.0)) for _ in range(3)]
        )

    defense = SECDEDDefense()
    data = victim.geometry.charged_pattern()
    rng = np.random.default_rng(victim_seed)
    rows = []
    metrics = {"storage_overhead": defense.config.storage_overhead}
    for error_rate in error_rates:
        approx = victim.decay_trial(
            data, victim.interval_for_error_rate(error_rate)
        )
        outcome = defense.apply(approx, data, rng)
        analytic = expected_uncorrectable_word_fraction(error_rate)
        if outcome.residual_error_count == 0:
            verdict = "anonymous (all corrected)"
            identified = False
        else:
            same = probable_cause_distance(
                outcome.residual_errors, fingerprints["victim"]
            )
            other = probable_cause_distance(
                outcome.residual_errors, fingerprints["decoy"]
            )
            identified = same < 0.5 < other
            verdict = (
                f"{'IDENTIFIED' if identified else 'escaped'} "
                f"(d_same={same:.3f}, d_other={other:.3f})"
            )
        rows.append(
            f"  {error_rate:>6.2%}  suppressed {outcome.suppression_ratio:>6.1%}  "
            f"residual {outcome.residual_error_count:>6}  "
            f"uncorrectable words {analytic:>6.2%}  {verdict}"
        )
        slug = str(error_rate).replace(".", "p")
        metrics[f"suppression_{slug}"] = outcome.suppression_ratio
        metrics[f"identified_{slug}"] = float(identified)
    text = "\n".join(
        [
            f"{'error':>8}  SECDED(72,64) against approximate-DRAM "
            "fingerprinting",
            *rows,
            "",
            f"cost: +{defense.config.storage_overhead:.1%} storage and "
            "refresh energy for the check bits",
            "shape: ECC thins the evidence but never removes it — the "
            "residual (multi-flip-word) errors are by construction a "
            "subset of the chip's most volatile cells, and the swap rule "
            "in Algorithm 3 makes any such subset match at near-zero "
            "distance.  Even 32 surviving bits identify the chip.",
        ]
    )
    return ExperimentReport(
        experiment_id="ext-ecc",
        title="SECDED ECC defense across approximation levels",
        text=text,
        metrics=metrics,
    )


@register("ext-ecc")
def _run_default() -> ExperimentReport:
    return run()
