"""Figure 13 — eavesdropper fingerprint-stitching convergence."""

from __future__ import annotations

import numpy as np

from repro.attacks import (
    ConvergenceCurve,
    expected_suspected_chips,
    run_interval_model,
    run_stitching_experiment,
)
from repro.experiments.base import ExperimentReport, register
from repro.obs.trace import span as obs_span
from repro.system import ModeledApproximateMemory, PhysicalMemoryMap

#: Paper scale: 1 GB of 4 KB pages, 10 MB samples.
PAPER_TOTAL_PAGES = 262_144
PAPER_SAMPLE_PAGES = 2_560

#: Scaled pipeline size preserving the total/sample ratio of 102.4.
SCALED_TOTAL_PAGES = 8_192
SCALED_SAMPLE_PAGES = 80


def render_curve(curve: ConvergenceCurve, width: int = 50) -> str:
    """ASCII rendering of a convergence curve."""
    peak = max(curve.suspected_axis()) or 1
    lines = []
    for point in curve.points:
        bar = "#" * round(width * point.suspected_chips / peak)
        lines.append(
            f"{point.samples:>5} samples | {bar} {point.suspected_chips}"
        )
    return "\n".join(lines)


def run(n_samples: int = 1000, seed: int = 13, record_every: int = 25) -> ExperimentReport:
    """Reproduce Figure 13 at paper scale (interval model) and scaled
    full-fingerprint stitching."""
    with obs_span(
        "experiment.fig13.interval_model", n_samples=n_samples, seed=seed
    ):
        model_curve = run_interval_model(
            total_pages=PAPER_TOTAL_PAGES,
            sample_pages=PAPER_SAMPLE_PAGES,
            n_samples=n_samples,
            rng=np.random.default_rng(seed),
            record_every=record_every,
        )
    machine = ModeledApproximateMemory(
        chip_seed=seed,
        memory_map=PhysicalMemoryMap(total_pages=SCALED_TOTAL_PAGES),
    )
    with obs_span(
        "experiment.fig13.stitching", n_samples=n_samples, seed=seed
    ):
        stitch_curve = run_stitching_experiment(
            machines=[machine],
            n_samples=n_samples,
            sample_pages=SCALED_SAMPLE_PAGES,
            rng=np.random.default_rng(seed),
            record_every=record_every,
        )
    analytic_peak_n = PAPER_TOTAL_PAGES / PAPER_SAMPLE_PAGES
    analytic_rows = [
        f"    n={n:>4}: expected "
        f"{expected_suspected_chips(n, PAPER_TOTAL_PAGES, PAPER_SAMPLE_PAGES):.1f}"
        for n in (25, 50, 102, 250, 500, 1000)
    ]
    text = "\n".join(
        [
            "(a) interval model at paper scale (1 GB memory, 10 MB samples):",
            render_curve(model_curve),
            f"    peak: {model_curve.peak.suspected_chips} suspects at "
            f"{model_curve.peak.samples} samples; final: "
            f"{model_curve.final.suspected_chips}",
            "",
            "(b) full fingerprint stitching at scaled size "
            "(same memory/sample ratio 102.4):",
            render_curve(stitch_curve),
            f"    peak: {stitch_curve.peak.suspected_chips} suspects at "
            f"{stitch_curve.peak.samples} samples; final: "
            f"{stitch_curve.final.suspected_chips}",
            "",
            "(c) closed form E[clusters] = 1 + (n-1) exp(-nL/M) "
            f"(peak at n = M/L = {analytic_peak_n:.0f}):",
            *analytic_rows,
            "",
            "paper: peak ~35 suspects, convergence begins ~90 samples, "
            "single fingerprint by 1000 samples",
        ]
    )
    return ExperimentReport(
        experiment_id="fig13",
        title="suspected chips vs samples collected",
        text=text,
        metrics={
            "model_peak_suspects": float(model_curve.peak.suspected_chips),
            "model_peak_samples": float(model_curve.peak.samples),
            "model_final": float(model_curve.final.suspected_chips),
            "stitch_peak_suspects": float(stitch_curve.peak.suspected_chips),
            "stitch_peak_samples": float(stitch_curve.peak.samples),
            "stitch_final": float(stitch_curve.final.suspected_chips),
        },
    )


@register("fig13")
def _run_default() -> ExperimentReport:
    return run()
