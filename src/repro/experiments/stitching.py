"""Figure 13 — eavesdropper fingerprint-stitching convergence.

PR 6 extends the experiment with a physical address-mapping axis
(DESIGN.md §12): ``run`` now takes an explicit
:class:`~repro.addrmap.MappedGeometry`.  The default (``None``) is the
flat geometry the paper's KM41464A platform implies, and reproduces
the pre-addrmap output byte-for-byte.  An interleaved geometry runs
the mapping-recovery attacker first (within a tracked query budget),
then the stitching attack, and reports the physical coverage of the
dominant assembly through both the recovered and the true mapping.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.addrmap import (
    MappedGeometry,
    ddr2_xor_mapping,
    register_addrmap_metrics,
)
from repro.addrmap.memory import InterleavedApproximateMemory
from repro.attacks import (
    ConvergenceCurve,
    EavesdropperAttacker,
    MappingRecoveryAttacker,
    expected_suspected_chips,
    run_interval_model,
    run_stitching_experiment,
)
from repro.experiments.base import ExperimentReport, register
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span as obs_span

#: Paper scale: 1 GB of 4 KB pages, 10 MB samples.
PAPER_TOTAL_PAGES = 262_144
PAPER_SAMPLE_PAGES = 2_560

#: Scaled pipeline size preserving the total/sample ratio of 102.4.
SCALED_TOTAL_PAGES = 8_192
SCALED_SAMPLE_PAGES = 80

#: Default co-decay probe budget for the recovery phase (fig13x).
DEFAULT_RECOVERY_BUDGET = 8_000


def render_curve(curve: ConvergenceCurve, width: int = 50) -> str:
    """ASCII rendering of a convergence curve."""
    peak = max(curve.suspected_axis()) or 1
    lines = []
    for point in curve.points:
        bar = "#" * round(width * point.suspected_chips / peak)
        lines.append(
            f"{point.samples:>5} samples | {bar} {point.suspected_chips}"
        )
    return "\n".join(lines)


def run(
    n_samples: int = 1000,
    seed: int = 13,
    record_every: int = 25,
    geometry: Optional[MappedGeometry] = None,
    recovery_budget: int = DEFAULT_RECOVERY_BUDGET,
    registry: Optional[MetricsRegistry] = None,
) -> ExperimentReport:
    """Reproduce Figure 13 at paper scale (interval model) and scaled
    full-fingerprint stitching.

    ``geometry=None`` selects the flat mapping (the paper's platform)
    and is byte-identical to the historical report.  An interleaved
    geometry inserts a mapping-recovery phase before stitching; its
    convergence lands in ``repro_addrmap_*`` metrics on ``registry``
    (one is created internally when not supplied) and in the report's
    ``addrmap_*`` metric keys.
    """
    with obs_span(
        "experiment.fig13.interval_model", n_samples=n_samples, seed=seed
    ):
        model_curve = run_interval_model(
            total_pages=PAPER_TOTAL_PAGES,
            sample_pages=PAPER_SAMPLE_PAGES,
            n_samples=n_samples,
            rng=np.random.default_rng(seed),
            record_every=record_every,
        )
    if geometry is None:
        geometry = MappedGeometry.flat(SCALED_TOTAL_PAGES)
    machine = InterleavedApproximateMemory(chip_seed=seed, geometry=geometry)
    recovered = None
    addrmap_metrics = {}
    if geometry.is_interleaved:
        if registry is None:
            registry = MetricsRegistry()
        metrics = register_addrmap_metrics(registry)
        recovery_attacker = MappingRecoveryAttacker(
            budget=recovery_budget, metrics=metrics
        )
        with obs_span(
            "experiment.fig13.addrmap_recover",
            seed=seed,
            budget=recovery_budget,
            interleave_bits=geometry.layout.interleave_bits,
        ):
            recovered = recovery_attacker.recover(
                machine, np.random.default_rng(seed + 0x5EED)
            )
    attacker = EavesdropperAttacker()
    with obs_span(
        "experiment.fig13.stitching", n_samples=n_samples, seed=seed
    ):
        stitch_curve = run_stitching_experiment(
            machines=[machine],
            n_samples=n_samples,
            sample_pages=SCALED_SAMPLE_PAGES,
            rng=np.random.default_rng(seed),
            record_every=record_every,
            attacker=attacker,
        )
    analytic_peak_n = PAPER_TOTAL_PAGES / PAPER_SAMPLE_PAGES
    analytic_rows = [
        f"    n={n:>4}: expected "
        f"{expected_suspected_chips(n, PAPER_TOTAL_PAGES, PAPER_SAMPLE_PAGES):.1f}"
        for n in (25, 50, 102, 250, 500, 1000)
    ]
    lines = [
        "(a) interval model at paper scale (1 GB memory, 10 MB samples):",
        render_curve(model_curve),
        f"    peak: {model_curve.peak.suspected_chips} suspects at "
        f"{model_curve.peak.samples} samples; final: "
        f"{model_curve.final.suspected_chips}",
        "",
        "(b) full fingerprint stitching at scaled size "
        "(same memory/sample ratio 102.4):",
        render_curve(stitch_curve),
        f"    peak: {stitch_curve.peak.suspected_chips} suspects at "
        f"{stitch_curve.peak.samples} samples; final: "
        f"{stitch_curve.final.suspected_chips}",
        "",
        "(c) closed form E[clusters] = 1 + (n-1) exp(-nL/M) "
        f"(peak at n = M/L = {analytic_peak_n:.0f}):",
        *analytic_rows,
        "",
        "paper: peak ~35 suspects, convergence begins ~90 samples, "
        "single fingerprint by 1000 samples",
    ]
    metrics_out = {
        "model_peak_suspects": float(model_curve.peak.suspected_chips),
        "model_peak_samples": float(model_curve.peak.samples),
        "model_final": float(model_curve.final.suspected_chips),
        "stitch_peak_suspects": float(stitch_curve.peak.suspected_chips),
        "stitch_peak_samples": float(stitch_curve.peak.samples),
        "stitch_final": float(stitch_curve.final.suspected_chips),
    }
    if recovered is not None:
        addrmap_metrics = _addrmap_section(
            geometry, recovered, attacker, recovery_budget, lines
        )
        metrics_out.update(addrmap_metrics)
    return ExperimentReport(
        experiment_id="fig13",
        title="suspected chips vs samples collected",
        text="\n".join(lines),
        metrics=metrics_out,
    )


def _addrmap_section(
    geometry: MappedGeometry,
    recovered,
    attacker: EavesdropperAttacker,
    recovery_budget: int,
    lines: List[str],
) -> dict:
    """Append section (d) to the report and return its metric keys.

    Assembly offsets are only relative (the attacker never learns an
    absolute base), so physical coverage is computed over the dominant
    assembly's base-normalised pages: exact once stitching converges
    to a full-memory assembly, approximate before that.
    """
    dominant = max(
        attacker.stitcher.assemblies(),
        key=lambda assembly: assembly.known_pages,
        default=None,
    )
    pages = np.asarray(
        sorted(dominant.pages) if dominant is not None else [],
        dtype=np.int64,
    )
    if pages.size:
        pages = pages - pages.min()
        pages = pages[pages < geometry.total_pages]
    bank_classes = (
        int(np.unique(recovered.bank_classes(pages)).size) if pages.size else 0
    )
    coverage = geometry.coverage(pages.astype(np.uint64))
    status = "recovered" if recovered.converged else "NOT recovered"
    matches = recovered.matches(geometry.mapping)
    lines.extend(
        [
            "",
            f"(d) physical mapping [{geometry.describe()}]:",
            f"    recovery: {status} in {recovered.queries_used} co-decay "
            f"probes (budget {recovery_budget}); matches true interleave: "
            f"{'yes' if matches else 'no'}",
            f"    dominant assembly: {int(pages.size)} pages across "
            f"{bank_classes} recovered bank classes; true-geometry "
            f"coverage: {coverage.rows_touched} rows touched, "
            f"{coverage.rows_complete} complete, "
            f"{coverage.banks_touched} banks",
        ]
    )
    out = {
        "addrmap_interleave_bits": float(geometry.layout.interleave_bits),
        "addrmap_recovered": 1.0 if recovered.converged else 0.0,
        "addrmap_matches_truth": 1.0 if matches else 0.0,
        "addrmap_recovery_queries": float(recovered.queries_used),
        "addrmap_recovery_budget": float(recovery_budget),
        "addrmap_kernel_dim": float(len(recovered.kernel_basis)),
        "addrmap_bank_classes_covered": float(bank_classes),
    }
    out.update(coverage.to_metrics())
    return out


def run_interleaved(
    n_samples: int = 1000,
    seed: int = 13,
    record_every: int = 25,
    recovery_budget: int = DEFAULT_RECOVERY_BUDGET,
    registry: Optional[MetricsRegistry] = None,
) -> ExperimentReport:
    """Figure 13 over the DDR2 XOR-folded interleave (fig13x).

    The attacker first recovers the unknown interleave functions from
    co-decay probes, then runs the stitching attack against the same
    machine; the report gains section (d) and ``addrmap_*`` metrics.
    """
    geometry = MappedGeometry(
        mapping=ddr2_xor_mapping(address_bits=13),
        total_pages=SCALED_TOTAL_PAGES,
    )
    report = run(
        n_samples=n_samples,
        seed=seed,
        record_every=record_every,
        geometry=geometry,
        recovery_budget=recovery_budget,
        registry=registry,
    )
    return dataclasses.replace(
        report,
        experiment_id="fig13x",
        title="stitching convergence over recovered DDR2 XOR interleave",
    )


@register("fig13")
def _run_default() -> ExperimentReport:
    return run()


@register("fig13x")
def _run_interleaved() -> ExperimentReport:
    return run_interleaved()
