"""Extension — Probable Cause across §9.2 approximate-DRAM schemes."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core import characterize_trials, probable_cause_distance
from repro.dram import (
    KM41464A,
    DRAMChip,
    ExperimentPlatform,
    FixedIntervalRefresh,
    FlikkerRefresh,
    JEDECRefresh,
    RAIDRRefresh,
    RAPIDRefresh,
    TrialConditions,
    evaluate_policy,
)
from repro.experiments.base import ExperimentReport, register


def run(
    victim_seed: int = 92, decoy_seed: int = 93
) -> ExperimentReport:
    """Energy / error / identifiability across refresh schemes."""
    victim = DRAMChip(KM41464A, chip_seed=victim_seed)
    decoy = DRAMChip(KM41464A, chip_seed=decoy_seed)

    fingerprints = {}
    for name, chip in (("victim", victim), ("decoy", decoy)):
        platform = ExperimentPlatform(chip)
        fingerprints[name] = characterize_trials(
            [platform.run_trial(TrialConditions(0.99, 40.0)) for _ in range(3)]
        )

    policies = [
        ("jedec", JEDECRefresh()),
        (
            "fixed",
            FixedIntervalRefresh(
                victim.interval_for_error_rate(0.01), name="fixed (paper, 1%)"
            ),
        ),
        ("flikker", FlikkerRefresh(high_zone_fraction=0.25, low_rate_divisor=16)),
        ("raidr", RAIDRRefresh(n_bins=4, safety_factor=1.0, name="RAIDR (faithful)")),
        (
            "raidr_approx",
            RAIDRRefresh(n_bins=6, safety_factor=4.0, name="RAIDR (approx)"),
        ),
        ("rapid", RAPIDRefresh(populated_fraction=0.75)),
    ]

    rows = []
    outcome: Dict[str, Tuple[float, bool]] = {}
    for slug, policy in policies:
        evaluation, errors = evaluate_policy(victim, policy)
        if errors.any():
            same = probable_cause_distance(errors, fingerprints["victim"])
            other = probable_cause_distance(errors, fingerprints["decoy"])
            identified = same < 0.5 < other
            verdict = f"IDENTIFIED (d_same={same:.3f}, d_other={other:.3f})"
        else:
            identified = False
            verdict = "no errors -> anonymous"
        outcome[slug] = (evaluation.error_rate, identified)
        rows.append(
            f"{policy.name:20} {evaluation.energy_saving:>8.1%} "
            f"{evaluation.error_rate:>9.4%}  {verdict}"
        )

    text = "\n".join(
        [
            f"{'scheme':20} {'energy':>8} {'error':>9}  attack outcome",
            *rows,
            "",
            "shape: privacy loss exactly tracks the presence of decay "
            "errors — every lossy scheme leaks the same manufacturing "
            "fingerprint.",
        ]
    )
    metrics = {}
    for slug, (error_rate, identified) in outcome.items():
        metrics[f"{slug}_error_rate"] = error_rate
        metrics[f"{slug}_identified"] = float(identified)
    return ExperimentReport(
        experiment_id="ext-refresh",
        title="Probable Cause vs the Section 9.2 approximate-DRAM schemes",
        text=text,
        metrics=metrics,
    )


@register("ext-refresh")
def _run_default() -> ExperimentReport:
    return run()
