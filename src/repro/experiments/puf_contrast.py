"""Extension — the DRAM decay PUF, and its contrast with the attack (§9.1)."""

from __future__ import annotations

import numpy as np

from repro.dram import KM41464A, DRAMChip
from repro.dram.puf import (
    DRAMDecayPUF,
    make_challenges,
    reliability,
    uniqueness,
)
from repro.experiments.base import ExperimentReport, register


def run(
    n_devices: int = 4,
    n_challenges: int = 3,
    rows_per_challenge: int = 8,
    seed: int = 91,
) -> ExperimentReport:
    """Standard PUF metrics on the shared decay substrate.

    Reliability should approach 1 (responses repeat up to the ~2 %
    borderline-cell noise) and normalized uniqueness should approach 1
    (devices as distinguishable as independent randomness allows) —
    the same two physical facts Probable Cause exploits offensively.
    """
    pufs = [
        DRAMDecayPUF(DRAMChip(KM41464A, chip_seed=seed * 100 + index))
        for index in range(n_devices)
    ]
    rng = np.random.default_rng(seed)
    challenges = make_challenges(
        n_challenges, KM41464A.geometry.rows, rows_per_challenge, rng
    )

    rows = []
    reliabilities = []
    uniquenesses = []
    for index, challenge in enumerate(challenges):
        challenge_reliability = float(
            np.mean([reliability(puf, challenge, measurements=5) for puf in pufs])
        )
        challenge_uniqueness = uniqueness(pufs, challenge)
        reliabilities.append(challenge_reliability)
        uniquenesses.append(challenge_uniqueness)
        rows.append(
            f"  challenge {index} (rows {challenge.rows[:3]}..., "
            f"interval #{challenge.interval_index}): "
            f"reliability {challenge_reliability:.4f}, "
            f"uniqueness {challenge_uniqueness:.3f}"
        )

    keys = {puf.derive_key(challenges[0]) for puf in pufs}
    stable_devices = sum(
        puf.derive_key(challenges[0]) == puf.derive_key(challenges[0])
        for puf in pufs
    )

    text = "\n".join(
        [
            f"DRAM decay PUF over {n_devices} devices, "
            f"{n_challenges} challenges x {rows_per_challenge} rows:",
            *rows,
            "",
            f"derived keys distinct across devices: {len(keys)}/{n_devices}",
            f"keys stable across re-derivation: {stable_devices}/{n_devices} "
            "(majority voting is not a full fuzzy extractor; a truly "
            "50/50 cell can flip a key)",
            "",
            "paper §9.1: the PUF uses *intentional* decay manipulation for "
            "attestation; Probable Cause shows approximation performs the "
            "same attestation unintentionally — same cells, same physics "
            "(see tests/dram/test_puf.py::TestPaperContrast).",
        ]
    )
    return ExperimentReport(
        experiment_id="ext-puf",
        title="DRAM decay PUF metrics on the shared substrate",
        text=text,
        metrics={
            "mean_reliability": float(np.mean(reliabilities)),
            "mean_uniqueness": float(np.mean(uniquenesses)),
            "distinct_keys": float(len(keys)),
            "stable_devices": float(stable_devices),
            "devices": float(n_devices),
        },
    )


@register("ext-puf")
def _run_default() -> ExperimentReport:
    return run()
