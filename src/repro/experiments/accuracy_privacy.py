"""Figure 11 — accuracy versus privacy: deeper approximation shrinks
between-class distance while leaving the within/between margin wide."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis import histogram, render_histograms
from repro.experiments.base import ExperimentReport, register
from repro.experiments.campaign import Campaign, build_campaign


def run(campaign: Optional[Campaign] = None) -> ExperimentReport:
    """Reproduce Figure 11: between-class distance grouped by accuracy."""
    if campaign is None:
        campaign = build_campaign()
    within, _between, _detail = campaign.distances()
    groups = campaign.between_by("accuracy")
    histograms = [
        histogram(values, bins=25, value_range=(0.75, 1.0), label=f"{acc:.0%}")
        for acc, values in sorted(groups.items(), reverse=True)
    ]
    means = {acc: float(np.mean(values)) for acc, values in groups.items()}
    floor_ratio = min(min(v) for v in groups.values()) / max(within)
    text = "\n".join(
        [
            render_histograms(histograms, width=30),
            "",
            *(
                f"mean between-class distance @ {acc:.0%} accuracy: {mean:.4f}"
                for acc, mean in sorted(means.items(), reverse=True)
            ),
            f"max within-class distance: {max(within):.6f}",
            f"worst-case separation ratio: {floor_ratio:.1f}x",
            "paper: distance shrinks with accuracy but stays two orders "
            "above within-class",
        ]
    )
    return ExperimentReport(
        experiment_id="fig11",
        title="between-class distance by accuracy",
        text=text,
        metrics={
            "mean_99": means[0.99],
            "mean_95": means[0.95],
            "mean_90": means[0.90],
            "max_within": max(within),
            "floor_ratio": floor_ratio,
        },
    )


@register("fig11")
def _run_default() -> ExperimentReport:
    return run()
