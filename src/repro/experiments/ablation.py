"""Ablation — distance-metric choice (§5.2's motivating argument)."""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

from repro.core import (
    hamming_distance_normalized,
    jaccard_distance,
    probable_cause_distance,
)
from repro.experiments.base import ExperimentReport, register
from repro.experiments.campaign import Campaign, build_campaign

METRICS: Dict[str, Callable] = {
    "Algorithm 3 (modified Jaccard)": probable_cause_distance,
    "classic Jaccard": jaccard_distance,
    "normalized Hamming": hamming_distance_normalized,
}


def nearest_accuracy(campaign: Campaign, metric: Callable) -> float:
    """Nearest-fingerprint classification accuracy under ``metric``."""
    correct = 0
    for true_label, trial in campaign.outputs:
        best_key, best_distance = None, float("inf")
        for key, fingerprint in campaign.database.items():
            distance = metric(trial.error_string, fingerprint.bits)
            if distance < best_distance:
                best_key, best_distance = key, distance
        correct += best_key == true_label
    return correct / len(campaign.outputs)


def margin_under_mismatch(campaign: Campaign, metric: Callable) -> float:
    """Threshold margin on the worst-mismatch (90 %-accuracy) outputs."""
    within, between = [], []
    for true_label, trial in campaign.outputs:
        if not math.isclose(trial.conditions.accuracy, 0.90):
            continue
        for key, fingerprint in campaign.database.items():
            distance = metric(trial.error_string, fingerprint.bits)
            (within if key == true_label else between).append(distance)
    return min(between) - max(within)


def run(campaign: Optional[Campaign] = None) -> ExperimentReport:
    """Classify every campaign output under three metrics."""
    if campaign is None:
        campaign = build_campaign()
    accuracy_rows = {
        name: nearest_accuracy(campaign, metric) for name, metric in METRICS.items()
    }
    margin_rows = {
        name: margin_under_mismatch(campaign, metric)
        for name, metric in METRICS.items()
    }
    text = "\n".join(
        [
            f"{'metric':34} {'accuracy':>9} {'margin @90% outputs':>21}",
            *(
                f"{name:34} {accuracy_rows[name]:>9.1%} "
                f"{margin_rows[name]:>21.4f}"
                for name in METRICS
            ),
            "",
            "margin = (min between-class) - (max within-class); positive "
            "means one threshold separates the classes.  Algorithm 3 keeps "
            "a wide positive margin under approximation-level mismatch.",
        ]
    )
    return ExperimentReport(
        experiment_id="ablation",
        title="distance-metric ablation (nearest-fingerprint classification)",
        text=text,
        metrics={
            "algorithm3_accuracy": accuracy_rows["Algorithm 3 (modified Jaccard)"],
            "algorithm3_margin": margin_rows["Algorithm 3 (modified Jaccard)"],
            "jaccard_margin": margin_rows["classic Jaccard"],
            "hamming_margin": margin_rows["normalized Hamming"],
        },
    )


@register("ablation")
def _run_default() -> ExperimentReport:
    return run()
