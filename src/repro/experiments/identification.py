"""§10 headline — identification and clustering success rates."""

from __future__ import annotations

from typing import Optional

from repro.core import cluster_outputs, identify
from repro.experiments.base import ExperimentReport, register
from repro.experiments.campaign import Campaign, build_campaign


def run(campaign: Optional[Campaign] = None) -> ExperimentReport:
    """Reproduce the §10 claim: 100 % identification and clustering."""
    if campaign is None:
        campaign = build_campaign()

    total = correct = 0
    for true_label, trial in campaign.outputs:
        result = identify(trial.approx, trial.exact, campaign.database)
        total += 1
        if result.matched and result.key == true_label:
            correct += 1
    identification_rate = correct / total

    outputs = [trial.approx for _label, trial in campaign.outputs]
    exacts = [trial.exact for _label, trial in campaign.outputs]
    truth = [label for label, _trial in campaign.outputs]
    clusters, assignments = cluster_outputs(outputs, exacts)
    mapping = {}
    coherent = True
    for label, assigned in zip(truth, assignments):
        mapping.setdefault(label, assigned)
        coherent &= mapping[label] == assigned
    clustering_perfect = coherent and len(clusters) == len(set(truth))

    text = "\n".join(
        [
            f"identification: {correct}/{total} correct "
            f"({identification_rate:.1%})",
            f"clustering: {len(clusters)} clusters for {len(set(truth))} "
            f"chips, coherent = {coherent}",
            "paper: 100% success in both identification and clustering",
        ]
    )
    return ExperimentReport(
        experiment_id="sec10",
        title="identification and clustering success "
        f"({campaign.n_chips} chips, {total} outputs)",
        text=text,
        metrics={
            "identification_rate": identification_rate,
            "clustering_perfect": float(clustering_perfect),
            "clusters": float(len(clusters)),
        },
    )


@register("sec10")
def _run_default() -> ExperimentReport:
    return run()
