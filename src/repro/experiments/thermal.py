"""Figure 9 — thermal effect on between-class distance."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis import histogram, render_histograms
from repro.experiments.base import ExperimentReport, register
from repro.experiments.campaign import Campaign, build_campaign


def run(campaign: Optional[Campaign] = None) -> ExperimentReport:
    """Reproduce Figure 9: between-class distance grouped by temperature."""
    if campaign is None:
        campaign = build_campaign()
    groups = campaign.between_by("temperature_c")
    histograms = [
        histogram(values, bins=25, value_range=(0.75, 1.0), label=f"{int(t)} degC")
        for t, values in sorted(groups.items())
    ]
    means = {t: float(np.mean(values)) for t, values in groups.items()}
    spread = max(means.values()) - min(means.values())
    text = "\n".join(
        [
            render_histograms(histograms, width=30),
            "",
            *(
                f"mean @ {int(t)} degC: {mean:.4f}"
                for t, mean in sorted(means.items())
            ),
            f"max mean difference across temperatures: {spread:.4f}",
            "paper: temperature has no noticeable effect on distance",
        ]
    )
    return ExperimentReport(
        experiment_id="fig09",
        title="between-class distance by temperature",
        text=text,
        metrics={"mean_spread": spread, **{f"mean_{int(t)}c": m for t, m in means.items()}},
    )


@register("fig09")
def _run_default() -> ExperimentReport:
    return run()
