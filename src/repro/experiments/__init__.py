"""Experiment harness: one module per paper table/figure.

Every experiment is registered under a short id (``fig07``, ``tab01``,
...) and can be run three ways:

* programmatically — ``from repro.experiments import run_experiment``;
* from the CLI — ``python -m repro run fig07`` (or ``run all``);
* from the benchmark harness — ``pytest benchmarks/ --benchmark-only``,
  which additionally times a representative kernel per experiment and
  asserts the paper-shape properties.
"""

# Import experiment modules for their registration side effects.
from repro.experiments import (  # noqa: F401
    ablation,
    accuracy_privacy,
    analytic_tables,
    consistency,
    data_dependence,
    ddr2,
    defenses_eval,
    ecc_defense,
    error_patterns,
    identification,
    order,
    population,
    puf_contrast,
    refresh_schemes,
    robustness,
    stitching,
    thermal,
    uniqueness,
)
from repro.experiments.base import (
    ExperimentReport,
    experiment_ids,
    run_experiment,
)
from repro.experiments.campaign import (
    ACCURACIES,
    CAMPAIGN_CHECKPOINT_VERSION,
    EVALUATION_GRID,
    TEMPERATURES,
    Campaign,
    build_campaign,
    build_campaign_checkpointed,
)

__all__ = [
    "ExperimentReport",
    "experiment_ids",
    "run_experiment",
    "Campaign",
    "build_campaign",
    "build_campaign_checkpointed",
    "ACCURACIES",
    "CAMPAIGN_CHECKPOINT_VERSION",
    "EVALUATION_GRID",
    "TEMPERATURES",
]
