"""Population scaling — does the separation survive many devices?

The paper evaluates 10 chips and argues from the §7.1 entropy analysis
that the fingerprint space dwarfs any realistic device population.
This study tests the empirical side of that argument: as the candidate
population grows, the *minimum* between-class distance is a minimum
over ever more pairs, so it can only shrink.  The analytic model says
it shrinks negligibly (the mismatch probability per pair is ~1e-591);
the measurement confirms the margin is flat in population size.
"""

from __future__ import annotations

from typing import Tuple

from repro.core import identify
from repro.experiments.base import ExperimentReport, register
from repro.experiments.campaign import build_campaign


def run(populations: Tuple[int, ...] = (5, 10, 20, 40)) -> ExperimentReport:
    """Measure separation and identification across population sizes.

    The largest population's campaign is built once; smaller
    populations are prefixes of it (same chips, fewer candidates),
    which is exactly how an attacker's database grows.
    """
    full = build_campaign(n_chips=max(populations))
    rows = []
    metrics = {}
    from repro.core import probable_cause_distance

    for size in populations:
        keys = full.database.keys()[:size]
        labels = set(keys)
        sub_database = _sub_database(full.database, keys)
        within, between = [], []
        correct = total = 0
        for true_label, trial in full.outputs:
            if true_label not in labels:
                continue
            total += 1
            errors = trial.error_string
            for key in keys:
                distance = probable_cause_distance(
                    errors, full.database.get(key)
                )
                (within if key == true_label else between).append(distance)
            result = identify(trial.approx, trial.exact, sub_database)
            correct += result.matched and result.key == true_label
        margin = min(between) - max(within)
        rows.append(
            f"  {size:>4} chips  pairs {len(between):>5}  "
            f"max d_within {max(within):.4f}  min d_between {min(between):.4f}  "
            f"margin {margin:+.4f}  identification {correct}/{total}"
        )
        metrics[f"margin_{size}"] = margin
        metrics[f"identification_{size}"] = correct / total
    text = "\n".join(
        [
            "separation vs candidate-population size",
            *rows,
            "",
            "the margin is flat in population size, matching the §7.1 "
            "analysis: per-pair mismatch probability is so small that "
            "min-over-pairs barely moves.",
        ]
    )
    return ExperimentReport(
        experiment_id="ext-population",
        title="identification margin vs device-population size",
        text=text,
        metrics=metrics,
    )


def _sub_database(database, keys):
    from repro.core import FingerprintDatabase

    sub = FingerprintDatabase()
    for key in keys:
        sub.add(key, database.get(key))
    return sub


@register("ext-population")
def _run_default() -> ExperimentReport:
    return run()
