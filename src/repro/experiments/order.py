"""Figure 10 — order of cell failures across approximation levels."""

from __future__ import annotations

from repro.analysis import nesting_report, venn_three
from repro.dram import KM41464A, DRAMChip, ExperimentPlatform, TrialConditions
from repro.experiments.base import ExperimentReport, register


def run(chip_seed: int = 10, temperature_c: float = 40.0) -> ExperimentReport:
    """Reproduce Figure 10: error-set nesting 99 % ⊂ 95 % ⊂ 90 %."""
    chip = DRAMChip(KM41464A, chip_seed=chip_seed)
    platform = ExperimentPlatform(chip)
    errors = {
        accuracy: platform.run_trial(
            TrialConditions(accuracy, temperature_c)
        ).error_string
        for accuracy in (0.99, 0.95, 0.90)
    }
    report = nesting_report(errors[0.99], errors[0.95], errors[0.90])
    venn = venn_three(errors[0.99], errors[0.95], errors[0.90])
    text = "\n".join(
        [
            f"errors @99%: {report['errors_at_99']}",
            f"errors @95%: {report['errors_at_95']}",
            f"errors @90%: {report['errors_at_90']}",
            f"common to all three: {report['common_to_all']}",
            "",
            f"99% cells missing from 95% set: {report['violations_99_in_95']}"
            "   (paper: a single outlier)",
            f"95% cells missing from 90% set: {report['violations_95_in_90']}"
            "   (paper: 32 cells)",
            "",
            "Venn regions (membership in 99%, 95%, 90% sets):",
            *(
                f"  {''.join('x' if member else '.' for member in membership)}: "
                f"{count}"
                for membership, count in sorted(venn.regions.items(), reverse=True)
            ),
            "paper: rough subset relation 99% < 95% < 90%",
        ]
    )
    return ExperimentReport(
        experiment_id="fig10",
        title="error-set overlap across accuracies (one chip)",
        text=text,
        metrics={
            "errors_at_99": float(report["errors_at_99"]),
            "errors_at_95": float(report["errors_at_95"]),
            "errors_at_90": float(report["errors_at_90"]),
            "violations_99_in_95": float(report["violations_99_in_95"]),
            "violations_95_in_90": float(report["violations_95_in_90"]),
        },
    )


@register("fig10")
def _run_default() -> ExperimentReport:
    return run()
