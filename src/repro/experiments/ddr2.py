"""§8.1 — effect of DRAM technology (the DDR2 platform)."""

from __future__ import annotations

import numpy as np

from repro.core import (
    characterize_trials,
    cluster_outputs,
    probable_cause_distance,
)
from repro.dram import (
    KM41464A,
    MICRON_DDR2,
    ChipFamily,
    DRAMChip,
    TrialConditions,
)
from repro.experiments.base import ExperimentReport, register

#: Simulation window into the 256 MB device (same cell physics).
DDR2_WINDOW = MICRON_DDR2.scaled(rows=256, cols=128)

TEMPERATURES = (40.0, 50.0, 60.0)
ACCURACIES = (0.99, 0.95, 0.90)


def log_skewness(chip: DRAMChip) -> float:
    """Skewness of the chip's log-retention distribution."""
    log_retention = np.log(chip.retention_reference_s)
    centered = log_retention - log_retention.mean()
    return float((centered**3).mean() / centered.std() ** 3)


def run(n_chips: int = 4, base_chip_seed: int = 8100) -> ExperimentReport:
    """Reproduce §8.1: DDR2 skew plus unimpaired classification."""
    family = ChipFamily(DDR2_WINDOW, n_chips=n_chips, base_chip_seed=base_chip_seed)
    platforms = family.platforms()

    fingerprints = {}
    for chip, platform in zip(family, platforms):
        fingerprints[chip.label] = characterize_trials(
            [platform.run_trial(TrialConditions(0.99, t)) for t in TEMPERATURES]
        )

    within, between = [], []
    outputs, exacts, truth = [], [], []
    for chip, platform in zip(family, platforms):
        for accuracy in ACCURACIES:
            for temperature in TEMPERATURES:
                trial = platform.run_trial(TrialConditions(accuracy, temperature))
                outputs.append(trial.approx)
                exacts.append(trial.exact)
                truth.append(chip.label)
                for label, fingerprint in fingerprints.items():
                    distance = probable_cause_distance(
                        trial.error_string, fingerprint
                    )
                    (within if label == chip.label else between).append(distance)

    clusters, assignments = cluster_outputs(outputs, exacts)
    clustering_perfect = len(clusters) == len(family) and all(
        assignments[i] == assignments[j]
        for i in range(len(truth))
        for j in range(len(truth))
        if truth[i] == truth[j]
    )

    legacy_skew = log_skewness(ChipFamily(KM41464A, n_chips=1)[0])
    ddr2_skew = log_skewness(family[0])
    separation = min(between) / max(within)

    text = "\n".join(
        [
            f"log-retention skewness, legacy KM41464A: {legacy_skew:+.3f}",
            f"log-retention skewness, DDR2:            {ddr2_skew:+.3f}",
            "paper: DDR2 volatility skewed toward higher volatility, "
            "legacy has no skew",
            "",
            f"within-class max distance:  {max(within):.6f}",
            f"between-class min distance: {min(between):.6f}",
            f"separation ratio: {separation:.1f}x",
            f"clustering perfect: {clustering_perfect}",
            "paper: the skew does not impact classification or clustering",
        ]
    )
    return ExperimentReport(
        experiment_id="sec81",
        title="DDR2 platform (Micron MT4HTF3264HY window, "
        f"{DDR2_WINDOW.total_bits // 8} bytes simulated)",
        text=text,
        metrics={
            "legacy_skew": legacy_skew,
            "ddr2_skew": ddr2_skew,
            "separation_ratio": separation,
            "clustering_perfect": float(clustering_perfect),
        },
    )


@register("sec81")
def _run_default() -> ExperimentReport:
    return run()
