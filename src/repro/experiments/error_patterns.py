"""Figure 5 — identical images through approximate memory on two chips."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.analysis import error_pattern_similarity, highlight_errors, write_pgm
from repro.bits import BitVector
from repro.dram import KM41464A, DRAMChip, ExperimentPlatform, TrialConditions
from repro.experiments.base import ExperimentReport, register
from repro.workloads import binary_test_image, bits_to_image, image_to_bits


def store_image(
    platform: ExperimentPlatform,
    image: np.ndarray,
    conditions: TrialConditions,
) -> np.ndarray:
    """Store an image on a platform's chip for one decay window."""
    bits = image_to_bits(image)
    padded = BitVector.from_bytes(
        bits.to_bytes().ljust(platform.chip.geometry.total_bytes, b"\x00")
    )
    trial = platform.run_trial(conditions, data=padded)
    return bits_to_image(trial.approx, image.shape)


def run(
    output_dir: Optional[Path] = None,
    chip_seeds: tuple = (1, 2),
) -> ExperimentReport:
    """Reproduce Figure 5: same image, two chips, three outputs."""
    image = binary_test_image()
    chip_one = ExperimentPlatform(DRAMChip(KM41464A, chip_seed=chip_seeds[0]))
    chip_two = ExperimentPlatform(DRAMChip(KM41464A, chip_seed=chip_seeds[1]))

    output_a = store_image(chip_one, image, TrialConditions(0.99, 40.0))
    output_b = store_image(chip_one, image, TrialConditions(0.99, 60.0))
    output_c = store_image(chip_two, image, TrialConditions(0.99, 40.0))

    same_chip = error_pattern_similarity(image, output_a, output_b)
    cross_chip = error_pattern_similarity(image, output_a, output_c)

    saved: Dict[str, str] = {}
    if output_dir is not None:
        output_dir = Path(output_dir)
        output_dir.mkdir(parents=True, exist_ok=True)
        for name, output in (("a", output_a), ("b", output_b), ("c", output_c)):
            path = write_pgm(
                highlight_errors(image, output, emphasis=128),
                output_dir / f"fig05_{name}.pgm",
            )
            saved[name] = str(path)

    text = "\n".join(
        [
            f"(a) chip 1 @ 40 degC: {same_chip['errors_a']} error pixels",
            f"(b) chip 1 @ 60 degC: {same_chip['errors_b']} error pixels",
            f"(c) chip 2 @ 40 degC: {cross_chip['errors_b']} error pixels",
            "",
            f"error-pixel Jaccard (a,b) same chip:  {same_chip['jaccard']:.3f}",
            f"error-pixel Jaccard (a,c) cross chip: {cross_chip['jaccard']:.3f}",
            *(f"saved: {path}" for path in saved.values()),
            "paper: same-chip constellations visibly coincide, cross-chip "
            "do not",
        ]
    )
    return ExperimentReport(
        experiment_id="fig05",
        title="one image, two chips (error constellations)",
        text=text,
        metrics={
            "same_chip_jaccard": same_chip["jaccard"],
            "cross_chip_jaccard": cross_chip["jaccard"],
        },
    )


@register("fig05")
def _run_default() -> ExperimentReport:
    from repro.analysis.reporting import results_dir

    return run(output_dir=results_dir())
