"""§8.2 — quantitative evaluation of the three defenses."""

from __future__ import annotations

import numpy as np

from repro.core import characterize_trials, probable_cause_distance
from repro.defenses import (
    SegregationPolicy,
    evaluate_aslr_defense,
    evaluate_segregation,
    sweep_noise_levels,
)
from repro.dram import KM41464A, DRAMChip, ExperimentPlatform, TrialConditions
from repro.experiments.base import ExperimentReport, register

ASLR_SCALE = dict(total_pages=512, sample_pages=16, n_samples=200, record_every=20)


def run(chip_seed: int = 82, seed: int = 82) -> ExperimentReport:
    """Evaluate data segregation, noise addition and page-level ASLR."""
    chip = DRAMChip(KM41464A, chip_seed=chip_seed)
    platform = ExperimentPlatform(chip)
    rng = np.random.default_rng(seed)
    fingerprint = characterize_trials(
        [platform.run_trial(TrialConditions(0.99, t)) for t in (40.0, 50.0, 60.0)]
    )

    def attack_succeeds(output, exact):
        errors = output ^ exact
        if not errors.any():
            return False
        return probable_cause_distance(errors, fingerprint) < 0.1

    victim_outputs = [
        (trial.approx, trial.exact)
        for trial in (
            platform.run_trial(TrialConditions(0.99, 40.0)) for _ in range(8)
        )
    ]

    # 8.2.1 data segregation ------------------------------------------------
    def approximate_store(data):
        return platform.run_trial(TrialConditions(0.99, 40.0), data=data).approx

    worst_case = chip.geometry.charged_pattern()
    seg_rate, seg_leak, seg_penalty = evaluate_segregation(
        SegregationPolicy(exact_fraction=0.25, flagging_miss_rate=0.1),
        approximate_store,
        lambda output: attack_succeeds(output, worst_case),
        outputs=[(worst_case, True)] * 20,
        rng=rng,
    )

    # 8.2.2 noise addition ----------------------------------------------------
    noise_rows = sweep_noise_levels(
        [0.0, 0.005, 0.02, 0.05, 0.2, 0.5], victim_outputs, attack_succeeds, rng
    )

    # 8.2.3 page-level ASLR -----------------------------------------------------
    undefended = evaluate_aslr_defense(
        rng=np.random.default_rng(1), granularity_pages=None, **ASLR_SCALE
    )
    chunked = evaluate_aslr_defense(
        rng=np.random.default_rng(1), granularity_pages=8, **ASLR_SCALE
    )
    paged = evaluate_aslr_defense(
        rng=np.random.default_rng(1), granularity_pages=1, **ASLR_SCALE
    )

    text = "\n".join(
        [
            "8.2.1 data segregation (25% exact region, 10% mis-flagging):",
            f"  sensitive outputs identified: {seg_rate:.0%}",
            f"  leak rate from user error:    {seg_leak:.0%}",
            f"  energy saving forfeited:      {seg_penalty:.0%}",
            "",
            "8.2.2 noise addition (flip rate -> identification, total error):",
            *(
                f"  {level:>5.1%} -> identified {rate:.0%}, "
                f"output error {cost:.1%}"
                for level, rate, cost in noise_rows
            ),
            "",
            "8.2.3 data scrambling (final suspected chips after "
            f"{ASLR_SCALE['n_samples']} samples):",
            f"  {undefended.policy_name:28} "
            f"{undefended.curve.final.suspected_chips}",
            f"  {chunked.policy_name:28} {chunked.curve.final.suspected_chips}",
            f"  {paged.policy_name:28} {paged.curve.final.suspected_chips}",
            "",
            "paper: segregation works but costs resources and relies on the "
            "user; noise only slows the attacker; page-granular ASLR "
            "prevents stitching.",
        ]
    )
    light_noise_rates = [rate for level, rate, _ in noise_rows if level <= 0.05]
    heavy_noise_costs = [cost for level, _, cost in noise_rows if level >= 0.2]
    return ExperimentReport(
        experiment_id="sec82",
        title="defense evaluation",
        text=text,
        metrics={
            "segregation_identified": seg_rate,
            "segregation_leak": seg_leak,
            "segregation_penalty": seg_penalty,
            "light_noise_min_identification": min(light_noise_rates),
            "heavy_noise_min_cost": min(heavy_noise_costs),
            "undefended_final": float(undefended.curve.final.suspected_chips),
            "chunk_aslr_final": float(chunked.curve.final.suspected_chips),
            "page_aslr_final": float(paged.curve.final.suspected_chips),
        },
    )


@register("sec82")
def _run_default() -> ExperimentReport:
    return run()
