"""Figure 7 — uniqueness: within- vs between-class distance histograms."""

from __future__ import annotations

from typing import Optional

from repro.analysis import class_separation, histogram, render_histograms
from repro.experiments.base import ExperimentReport, register
from repro.experiments.campaign import Campaign, build_campaign


def run(campaign: Optional[Campaign] = None) -> ExperimentReport:
    """Reproduce Figure 7 from an evaluation campaign."""
    if campaign is None:
        campaign = build_campaign()
    within, between, _detail = campaign.distances()
    hist_within = histogram(within, bins=20, label="Within-class")
    hist_between = histogram(between, bins=20, label="Between-class")
    max_within, min_between, ratio = class_separation(within, between)
    text = "\n".join(
        [
            render_histograms([hist_within, hist_between]),
            "",
            f"within-class:  n={len(within)}  max={max_within:.6f}",
            f"between-class: n={len(between)}  min={min_between:.6f}",
            f"separation ratio (min between / max within): {ratio:.1f}x",
            "paper: two orders of magnitude -> ratio >= 100",
        ]
    )
    return ExperimentReport(
        experiment_id="fig07",
        title="fingerprint distance histogram "
        f"({campaign.n_chips} chips, 9 outputs each)",
        text=text,
        metrics={
            "max_within": max_within,
            "min_between": min_between,
            "separation_ratio": ratio,
        },
    )


@register("fig07")
def _run_default() -> ExperimentReport:
    return run()
