"""The §6-§7 evaluation campaign, reusable across experiments.

The paper's evaluation is one physical campaign consumed by several
figures: 10 KM41464A chips; a system-level fingerprint per chip from
three 1 %-error outputs at different temperatures; and 9 evaluation
outputs per chip covering the {40, 50, 60 °C} x {99, 95, 90 %} grid.
:func:`build_campaign` runs that campaign deterministically; callers
(the benchmark harness, the CLI, notebooks) share one instance.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.bits import BitVector
from repro.core import FingerprintDatabase, characterize_trials, probable_cause_distance
from repro.core.fingerprint import Fingerprint
from repro.dram import KM41464A, ChipFamily, DeviceSpec, TrialConditions, TrialResult
from repro.reliability.faults import StorageIO

#: Version of the per-chip campaign checkpoint files.
CAMPAIGN_CHECKPOINT_VERSION = 1

#: Operating temperatures of the §7 grid.
TEMPERATURES = (40.0, 50.0, 60.0)

#: Accuracy levels of the §7 grid.
ACCURACIES = (0.99, 0.95, 0.90)

#: The full evaluation grid (9 operating points).
EVALUATION_GRID = [
    TrialConditions(accuracy, temperature)
    for temperature in TEMPERATURES
    for accuracy in ACCURACIES
]


@dataclass
class Campaign:
    """Everything the §7 figures are computed from."""

    family: ChipFamily
    database: FingerprintDatabase
    #: (chip_label, trial) per evaluation output, 9 per chip.
    outputs: List[Tuple[str, TrialResult]]

    @property
    def n_chips(self) -> int:
        """Chips in the campaign."""
        return len(self.family)

    def outputs_of(self, label: str) -> List[TrialResult]:
        """Evaluation outputs of one chip."""
        return [trial for lab, trial in self.outputs if lab == label]

    def distances(self) -> Tuple[List[float], List[float], List[tuple]]:
        """All output-vs-fingerprint distances.

        Returns ``(within, between, detail)`` where detail rows are
        ``(true_label, fingerprint_key, conditions, distance)``.
        """
        within: List[float] = []
        between: List[float] = []
        detail = []
        for true_label, trial in self.outputs:
            for key, fingerprint in self.database.items():
                distance = probable_cause_distance(
                    trial.error_string, fingerprint
                )
                if key == true_label:
                    within.append(distance)
                else:
                    between.append(distance)
                detail.append((true_label, key, trial.conditions, distance))
        return within, between, detail

    def between_by(self, attribute: str) -> Dict[float, List[float]]:
        """Between-class distances grouped by a conditions attribute
        (``"temperature_c"`` for Figure 9, ``"accuracy"`` for Figure 11)."""
        groups: Dict[float, List[float]] = {}
        _within, _between, detail = self.distances()
        for true_label, key, conditions, distance in detail:
            if key == true_label:
                continue
            groups.setdefault(getattr(conditions, attribute), []).append(distance)
        return groups


def build_campaign(
    n_chips: int = 10,
    device: DeviceSpec = KM41464A,
    base_chip_seed: int = 1000,
) -> Campaign:
    """Run the full evaluation campaign (deterministic in its seeds)."""
    family = ChipFamily(device, n_chips=n_chips, base_chip_seed=base_chip_seed)
    platforms = family.platforms()
    database = FingerprintDatabase()
    for chip, platform in zip(family, platforms):
        characterization = [
            platform.run_trial(TrialConditions(0.99, temperature))
            for temperature in TEMPERATURES
        ]
        database.add(chip.label, characterize_trials(characterization))
    outputs = []
    for chip, platform in zip(family, platforms):
        for conditions in EVALUATION_GRID:
            outputs.append((chip.label, platform.run_trial(conditions)))
    return Campaign(family=family, database=database, outputs=outputs)


# ----------------------------------------------------------------------
# Checkpointed (resumable) campaign build
# ----------------------------------------------------------------------
#
# The full campaign is minutes of simulated decay physics; a crashed
# benchmark run used to pay all of it again.  Chips are seeded
# independently (base_chip_seed + index), so per-chip results are a
# pure function of (device, seeds, index) — which makes the chip the
# natural checkpoint unit: each completed chip's fingerprint and nine
# evaluation outputs land in an atomically-replaced chip-<index>.json,
# and a resumed build recomputes only the chips with no file yet.


def _encode_bits(bits: BitVector) -> Dict[str, object]:
    return {
        "nbits": bits.nbits,
        "b64": base64.b64encode(bits.to_bytes()).decode("ascii"),
    }


def _decode_bits(payload: Dict[str, object]) -> BitVector:
    nbits = int(payload["nbits"])
    decoded = BitVector.from_bytes(base64.b64decode(str(payload["b64"])))
    # from_bytes rounds nbits up to a whole byte; cut back to the truth.
    return decoded.slice(0, nbits) if decoded.nbits != nbits else decoded


def _campaign_params(
    n_chips: int, device: DeviceSpec, base_chip_seed: int
) -> Dict[str, object]:
    return {
        "n_chips": n_chips,
        "device": device.name,
        "base_chip_seed": base_chip_seed,
    }


def _chip_checkpoint_payload(
    params: Dict[str, object],
    chip_index: int,
    label: str,
    fingerprint: Fingerprint,
    trials: List[TrialResult],
) -> Dict[str, object]:
    return {
        "schema_version": CAMPAIGN_CHECKPOINT_VERSION,
        "params": params,
        "chip_index": chip_index,
        "label": label,
        "fingerprint": {
            "bits": _encode_bits(fingerprint.bits),
            "support": fingerprint.support,
            "source": fingerprint.source,
        },
        "outputs": [
            {
                "accuracy": trial.conditions.accuracy,
                "temperature_c": trial.conditions.temperature_c,
                "interval_s": trial.interval_s,
                "exact": _encode_bits(trial.exact),
                "approx": _encode_bits(trial.approx),
            }
            for trial in trials
        ],
    }


def _load_chip_checkpoint(
    path: Path,
    params: Dict[str, object],
    chip_index: int,
    label: str,
    storage_io: StorageIO,
) -> Optional[Tuple[Fingerprint, List[TrialResult]]]:
    """Read one chip's checkpoint; None when absent/stale/unreadable.

    A payload whose params disagree with the requested build (different
    device, seed or chip count) is ignored rather than trusted — the
    chip is simply recomputed, so a stale checkpoint directory can
    never smuggle another campaign's physics into this one.
    """
    if not path.exists():
        return None
    try:
        payload = json.loads(storage_io.read_bytes(path).decode("utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError):
        return None
    if payload.get("schema_version") != CAMPAIGN_CHECKPOINT_VERSION:
        return None
    if payload.get("params") != params:
        return None
    if payload.get("chip_index") != chip_index or payload.get("label") != label:
        return None
    source = payload["fingerprint"].get("source")
    fingerprint = Fingerprint(
        bits=_decode_bits(payload["fingerprint"]["bits"]),
        support=int(payload["fingerprint"]["support"]),
        source=None if source is None else str(source),
    )
    trials = [
        TrialResult(
            exact=_decode_bits(entry["exact"]),
            approx=_decode_bits(entry["approx"]),
            conditions=TrialConditions(
                float(entry["accuracy"]), float(entry["temperature_c"])
            ),
            chip_label=label,
            interval_s=float(entry["interval_s"]),
        )
        for entry in payload["outputs"]
    ]
    return fingerprint, trials


def build_campaign_checkpointed(
    checkpoint_dir: Union[str, Path],
    n_chips: int = 10,
    device: DeviceSpec = KM41464A,
    base_chip_seed: int = 1000,
    storage_io: Optional[StorageIO] = None,
) -> Campaign:
    """Build the campaign with per-chip checkpoints; resume is free.

    Produces a campaign equal to :func:`build_campaign` with the same
    parameters (chips are independently seeded, so replaying a subset
    changes nothing), while persisting each completed chip to
    ``checkpoint_dir`` via atomic replace.  Rerunning after a crash
    recomputes only the missing chips; checkpoints from a different
    parameterization are ignored and overwritten.
    """
    io_seam = storage_io if storage_io is not None else StorageIO()
    directory = Path(checkpoint_dir)
    directory.mkdir(parents=True, exist_ok=True)
    params = _campaign_params(n_chips, device, base_chip_seed)
    family = ChipFamily(device, n_chips=n_chips, base_chip_seed=base_chip_seed)
    platforms = family.platforms()
    database = FingerprintDatabase()
    outputs: List[Tuple[str, TrialResult]] = []
    for chip_index, (chip, platform) in enumerate(zip(family, platforms)):
        path = directory / f"chip-{chip_index:04d}.json"
        restored = _load_chip_checkpoint(
            path, params, chip_index, chip.label, io_seam
        )
        if restored is None:
            characterization = [
                platform.run_trial(TrialConditions(0.99, temperature))
                for temperature in TEMPERATURES
            ]
            fingerprint = characterize_trials(characterization)
            trials = [
                platform.run_trial(conditions)
                for conditions in EVALUATION_GRID
            ]
            payload = _chip_checkpoint_payload(
                params, chip_index, chip.label, fingerprint, trials
            )
            data = (
                json.dumps(payload, sort_keys=True) + "\n"
            ).encode("utf-8")
            tmp = directory / (path.name + ".tmp")
            io_seam.write_bytes(tmp, data, sync=True)
            io_seam.replace(tmp, path)
            io_seam.fsync_dir(directory)
        else:
            fingerprint, trials = restored
        database.add(chip.label, fingerprint)
        outputs.extend((chip.label, trial) for trial in trials)
    return Campaign(family=family, database=database, outputs=outputs)
