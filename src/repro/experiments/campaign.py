"""The §6-§7 evaluation campaign, reusable across experiments.

The paper's evaluation is one physical campaign consumed by several
figures: 10 KM41464A chips; a system-level fingerprint per chip from
three 1 %-error outputs at different temperatures; and 9 evaluation
outputs per chip covering the {40, 50, 60 °C} x {99, 95, 90 %} grid.
:func:`build_campaign` runs that campaign deterministically; callers
(the benchmark harness, the CLI, notebooks) share one instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core import FingerprintDatabase, characterize_trials, probable_cause_distance
from repro.dram import KM41464A, ChipFamily, DeviceSpec, TrialConditions, TrialResult

#: Operating temperatures of the §7 grid.
TEMPERATURES = (40.0, 50.0, 60.0)

#: Accuracy levels of the §7 grid.
ACCURACIES = (0.99, 0.95, 0.90)

#: The full evaluation grid (9 operating points).
EVALUATION_GRID = [
    TrialConditions(accuracy, temperature)
    for temperature in TEMPERATURES
    for accuracy in ACCURACIES
]


@dataclass
class Campaign:
    """Everything the §7 figures are computed from."""

    family: ChipFamily
    database: FingerprintDatabase
    #: (chip_label, trial) per evaluation output, 9 per chip.
    outputs: List[Tuple[str, TrialResult]]

    @property
    def n_chips(self) -> int:
        """Chips in the campaign."""
        return len(self.family)

    def outputs_of(self, label: str) -> List[TrialResult]:
        """Evaluation outputs of one chip."""
        return [trial for lab, trial in self.outputs if lab == label]

    def distances(self) -> Tuple[List[float], List[float], List[tuple]]:
        """All output-vs-fingerprint distances.

        Returns ``(within, between, detail)`` where detail rows are
        ``(true_label, fingerprint_key, conditions, distance)``.
        """
        within: List[float] = []
        between: List[float] = []
        detail = []
        for true_label, trial in self.outputs:
            for key, fingerprint in self.database.items():
                distance = probable_cause_distance(
                    trial.error_string, fingerprint
                )
                if key == true_label:
                    within.append(distance)
                else:
                    between.append(distance)
                detail.append((true_label, key, trial.conditions, distance))
        return within, between, detail

    def between_by(self, attribute: str) -> Dict[float, List[float]]:
        """Between-class distances grouped by a conditions attribute
        (``"temperature_c"`` for Figure 9, ``"accuracy"`` for Figure 11)."""
        groups: Dict[float, List[float]] = {}
        _within, _between, detail = self.distances()
        for true_label, key, conditions, distance in detail:
            if key == true_label:
                continue
            groups.setdefault(getattr(conditions, attribute), []).append(distance)
        return groups


def build_campaign(
    n_chips: int = 10,
    device: DeviceSpec = KM41464A,
    base_chip_seed: int = 1000,
) -> Campaign:
    """Run the full evaluation campaign (deterministic in its seeds)."""
    family = ChipFamily(device, n_chips=n_chips, base_chip_seed=base_chip_seed)
    platforms = family.platforms()
    database = FingerprintDatabase()
    for chip, platform in zip(family, platforms):
        characterization = [
            platform.run_trial(TrialConditions(0.99, temperature))
            for temperature in TEMPERATURES
        ]
        database.add(chip.label, characterize_trials(characterization))
    outputs = []
    for chip, platform in zip(family, platforms):
        for conditions in EVALUATION_GRID:
            outputs.append((chip.label, platform.run_trial(conditions)))
    return Campaign(family=family, database=database, outputs=outputs)
