"""Robustness studies — threshold sensitivity and VRT stress.

Two questions the paper answers implicitly, quantified explicitly:

* **Threshold sensitivity.**  Algorithm 2 needs one distance threshold.
  The paper calls its choice "a safe upper bound"; this study sweeps
  the threshold across the full [0, 1] range against the campaign's 900
  output-fingerprint pairs and reports the *operating window* — the
  range of thresholds with zero false accepts and zero false rejects.
  A wide window (several orders of magnitude) is what makes the attack
  deployable without calibration.

* **VRT stress.**  Variable-retention-time cells flicker in and out of
  the error pattern (see :mod:`repro.dram.vrt`).  This study sweeps the
  VRT population fraction and reports 21-trial repeatability and the
  within/between separation, showing how much cell instability the
  pipeline tolerates before the paper's guarantees erode.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

import numpy as np

from repro.core import (
    characterize_trials,
    probable_cause_distance,
    union_all,
)
from repro.dram import (
    KM41464A,
    DRAMChip,
    ExperimentPlatform,
    TrialConditions,
    VRTModel,
)
from repro.experiments.base import ExperimentReport, register
from repro.experiments.campaign import Campaign, build_campaign


# ----------------------------------------------------------------------
# Threshold sensitivity
# ----------------------------------------------------------------------


def threshold_operating_window(campaign: Campaign) -> Tuple[float, float]:
    """(lowest safe threshold, highest safe threshold).

    A threshold is *safe* when every within-class pair matches and no
    between-class pair does, i.e. anything strictly above the largest
    within-class distance and at or below the smallest between-class
    distance.
    """
    within, between, _detail = campaign.distances()
    return max(within), min(between)


def run_threshold_study(campaign: Optional[Campaign] = None) -> ExperimentReport:
    """Sweep the Algorithm 2 threshold and report the operating window."""
    if campaign is None:
        campaign = build_campaign()
    within, between, _detail = campaign.distances()
    low, high = threshold_operating_window(campaign)
    decades = float(np.log10(high / low)) if low > 0 else float("inf")

    sweep_points = np.logspace(-4, 0, 33)
    rows = []
    for threshold in sweep_points:
        true_accepts = sum(distance < threshold for distance in within)
        false_accepts = sum(distance < threshold for distance in between)
        rows.append(
            f"  {threshold:>10.4f}  "
            f"TPR {true_accepts / len(within):>6.1%}  "
            f"FPR {false_accepts / len(between):>8.4%}"
        )

    text = "\n".join(
        [
            f"{'threshold':>12} {'':1}TPR and FPR over "
            f"{len(within)} within / {len(between)} between pairs",
            *rows,
            "",
            f"operating window: ({low:.6f}, {high:.6f}] "
            f"— {decades:.1f} decades wide",
            "any threshold in the window gives 100% TPR at 0% FPR; the "
            "paper's implicit 0.1 sits comfortably inside it",
        ]
    )
    return ExperimentReport(
        experiment_id="ext-threshold",
        title="identification-threshold operating window",
        text=text,
        metrics={
            "window_low": low,
            "window_high": high,
            "window_decades": decades,
        },
    )


# ----------------------------------------------------------------------
# VRT stress
# ----------------------------------------------------------------------


def _vrt_point(
    fraction: float, seed: int, n_trials: int = 21
) -> Tuple[float, float, float]:
    """(repeatability, within distance, between distance) at one VRT level."""
    if fraction <= 0.0:
        spec = KM41464A
    else:
        spec = replace(
            KM41464A,
            vrt=VRTModel(fraction=fraction, retention_ratio=5.0,
                         toggle_probability=0.3),
        )
    chip = DRAMChip(spec, chip_seed=seed)
    other = DRAMChip(spec, chip_seed=seed + 1)
    platform = ExperimentPlatform(chip)

    errors = [
        platform.run_trial(TrialConditions(0.99, 40.0)).error_string
        for _ in range(n_trials)
    ]
    stable = errors[0]
    for error in errors[1:]:
        stable = stable & error
    repeatability = stable.popcount() / union_all(errors).popcount()

    fingerprint = characterize_trials(
        [platform.run_trial(TrialConditions(0.99, 40.0)) for _ in range(3)]
    )
    probe = platform.run_trial(TrialConditions(0.95, 50.0)).error_string
    other_probe = ExperimentPlatform(other).run_trial(
        TrialConditions(0.95, 50.0)
    ).error_string
    within = probable_cause_distance(probe, fingerprint)
    between = probable_cause_distance(other_probe, fingerprint)
    return repeatability, within, between


def run_vrt_study(
    fractions: Tuple[float, ...] = (0.0, 0.002, 0.01, 0.05),
    seed: int = 975,
) -> ExperimentReport:
    """Sweep the VRT population fraction and report stability metrics."""
    rows = []
    points = {}
    for fraction in fractions:
        repeatability, within, between = _vrt_point(fraction, seed)
        points[fraction] = (repeatability, within, between)
        rows.append(
            f"  {fraction:>6.1%}  repeatability {repeatability:>6.1%}  "
            f"d_within {within:.4f}  d_between {between:.4f}  "
            f"margin {between - within:+.4f}"
        )
    text = "\n".join(
        [
            f"{'VRT pop':>8}  stability under flickering-cell populations",
            *rows,
            "",
            "repeatability degrades with the VRT population, but the "
            "intersection-based fingerprint keeps the identification "
            "margin wide until the population dwarfs the paper's "
            "implicit <=2% instability.",
        ]
    )
    baseline = points[fractions[0]]
    worst = points[fractions[-1]]
    return ExperimentReport(
        experiment_id="ext-vrt",
        title="fingerprint stability vs variable-retention-time cells",
        text=text,
        metrics={
            "baseline_repeatability": baseline[0],
            "worst_repeatability": worst[0],
            "baseline_margin": baseline[2] - baseline[1],
            "worst_margin": worst[2] - worst[1],
        },
    )


@register("ext-threshold")
def _run_threshold_default() -> ExperimentReport:
    return run_threshold_study()


@register("ext-vrt")
def _run_vrt_default() -> ExperimentReport:
    return run_vrt_study()
