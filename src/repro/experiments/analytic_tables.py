"""Tables 1 and 2 — the §7.1 analytic uniqueness model."""

from __future__ import annotations

from repro.core import analyze_page, format_log10
from repro.experiments.base import ExperimentReport, register

#: The paper's Table 2 reference magnitudes per accuracy level.
PAPER_TABLE2 = {0.99: "9.29e-591", 0.95: "8.78e-2028", 0.90: "4.76e-3232"}


def run_table1() -> ExperimentReport:
    """Reproduce Table 1 (M = 32768, A = 328, T = 32)."""
    analysis = analyze_page()
    text = "\n".join(
        [
            f"{'quantity':38} {'ours':>14} {'paper':>14}",
            f"{'Max possible fingerprints':38} "
            f"{format_log10(analysis.log10_max_possible):>14} {'8.70e+795':>14}",
            f"{'Max unique fingerprints (lower bound)':38} "
            f"{format_log10(analysis.log10_unique_lower):>14} {'1.07e+590':>14}",
            f"{'Chance of mismatching (upper bound)':38} "
            f"{format_log10(analysis.log10_mismatch_upper):>14} {'9.29e-591':>14}",
            f"{'Total entropy (bits)':38} "
            f"{analysis.entropy_total_bits:>14.0f} {'2423':>14}",
            "",
            "residual offsets trace to the paper carrying fractional A/T "
            "through the formulas (see EXPERIMENTS.md)",
        ]
    )
    return ExperimentReport(
        experiment_id="tab01",
        title="analytic fingerprint space for one page "
        f"(M={analysis.memory_bits}, A={analysis.error_bits}, "
        f"T={analysis.threshold_bits})",
        text=text,
        metrics={
            "log10_max_possible": analysis.log10_max_possible,
            "log10_unique_lower": analysis.log10_unique_lower,
            "log10_mismatch_upper": analysis.log10_mismatch_upper,
            "entropy_bits": analysis.entropy_total_bits,
        },
    )


def run_table2() -> ExperimentReport:
    """Reproduce Table 2 (mismatch chance vs accuracy)."""
    rows = {
        accuracy: analyze_page(accuracy=accuracy)
        for accuracy in (0.99, 0.95, 0.90)
    }
    text = "\n".join(
        [
            f"{'accuracy':>9} {'ours (upper bound)':>20} {'paper':>14}",
            *(
                f"{accuracy:>9.0%} "
                f"{format_log10(analysis.log10_mismatch_upper):>20} "
                f"{PAPER_TABLE2[accuracy]:>14}"
                for accuracy, analysis in rows.items()
            ),
        ]
    )
    return ExperimentReport(
        experiment_id="tab02",
        title="chance of mismatching two pages vs accuracy",
        text=text,
        metrics={
            f"log10_mismatch_{int(acc * 100)}": analysis.log10_mismatch_upper
            for acc, analysis in rows.items()
        },
    )


@register("tab01")
def _run_table1_default() -> ExperimentReport:
    return run_table1()


@register("tab02")
def _run_table2_default() -> ExperimentReport:
    return run_table2()
