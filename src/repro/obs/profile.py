"""Cheap sampling wall-clock profiler for the hot paths.

``cProfile`` taxes every function call — unusable around the
vectorized marking loop or the LSH probe without distorting exactly
what it measures.  This is the always-affordable alternative: a
background thread wakes every ``interval_s`` seconds, snapshots every
live Python frame via :func:`sys._current_frames`, and aggregates the
**top-of-stack** location per sample.  Overhead is proportional to the
sampling rate, not to the workload's call volume, and zero when not
attached (the default — nothing samples unless a caller enters
:meth:`SamplingProfiler.attach`).

The result is a deterministic-ordered table of ``file:line function``
→ sample count.  When a tracer is active the aggregate is also
published into the trace as an ``obs.profile`` span whose attributes
carry the top locations, so a Perfetto view of a run shows *where the
time went* next to *which stage spent it*.

Seed-free by design: sampling uses only the monotonic clock, never an
RNG (invariant REP001), and the sampler thread is excluded from its
own samples.
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager
from pathlib import PurePath
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.trace import Tracer, get_tracer


def _frame_key(frame: object) -> str:
    """``file:line function`` for a frame's top of stack."""
    code = frame.f_code  # type: ignore[attr-defined]
    filename = PurePath(code.co_filename).name
    return f"{filename}:{frame.f_lineno} {code.co_name}"  # type: ignore[attr-defined]


class SamplingProfiler:
    """Periodic whole-process stack sampler (off unless attached).

    Parameters
    ----------
    interval_s:
        Sampling period; 5 ms default keeps overhead well under a
        percent for the workloads in this repo.
    tracer:
        Where the aggregate span is published on detach (defaults to
        the process-wide tracer; a disabled tracer silently skips the
        publication, the table is still available via :meth:`top`).
    """

    def __init__(
        self,
        interval_s: float = 0.005,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if interval_s <= 0.0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self._interval_s = interval_s
        self._tracer = tracer
        self._lock = threading.Lock()
        self._samples: Dict[str, int] = {}
        self._total_samples = 0
        self._stop: Optional[threading.Event] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def total_samples(self) -> int:
        """Stack snapshots taken so far."""
        with self._lock:
            return self._total_samples

    def _sample_once(self, own_ident: int) -> None:
        frames = sys._current_frames()
        counted: List[str] = []
        for ident, frame in frames.items():
            if ident == own_ident:
                continue
            counted.append(_frame_key(frame))
        with self._lock:
            self._total_samples += 1
            for key in counted:
                self._samples[key] = self._samples.get(key, 0) + 1

    def _run(self, stop: threading.Event) -> None:
        own_ident = threading.get_ident()
        while not stop.wait(self._interval_s):
            self._sample_once(own_ident)

    def start(self) -> None:
        """Begin sampling (idempotent while running)."""
        with self._lock:
            if self._thread is not None:
                return
            stop = threading.Event()
            thread = threading.Thread(
                target=self._run,
                args=(stop,),
                name="obs-profiler",
                daemon=True,
            )
            self._stop = stop
            self._thread = thread
        thread.start()

    def stop(self) -> None:
        """Stop sampling and join the sampler thread."""
        with self._lock:
            thread = self._thread
            stop = self._stop
            self._thread = None
            self._stop = None
        if thread is None or stop is None:
            return
        stop.set()
        thread.join(timeout=5.0)

    @contextmanager
    def attach(self, label: str = "profile") -> Iterator["SamplingProfiler"]:
        """Sample for the duration of the block, then publish.

        On exit the sampler stops and — when a tracer is enabled — the
        aggregate lands in the trace as an ``obs.profile`` span whose
        attributes carry ``label``, the sample count, and the top
        locations.
        """
        self.start()
        try:
            yield self
        finally:
            self.stop()
            self._publish(label)

    def top(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` hottest top-of-stack locations, deterministically
        ordered (count descending, then location name)."""
        with self._lock:
            items = list(self._samples.items())
        items.sort(key=lambda item: (-item[1], item[0]))
        return items[:n]

    def report(self, n: int = 10) -> Dict[str, object]:
        """JSON-friendly aggregate: total samples plus the top table."""
        return {
            "total_samples": self.total_samples,
            "top": [
                {"location": location, "samples": count}
                for location, count in self.top(n)
            ],
        }

    def reset(self) -> None:
        """Drop every aggregate (does not stop a running sampler)."""
        with self._lock:
            self._samples.clear()
            self._total_samples = 0

    def _publish(self, label: str) -> None:
        tracer = self._tracer if self._tracer is not None else get_tracer()
        if not tracer.enabled:
            return
        top = self.top(10)
        with tracer.span(
            "obs.profile",
            label=label,
            total_samples=self.total_samples,
            top=[f"{location} x{count}" for location, count in top],
        ):
            pass
