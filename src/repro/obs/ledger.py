"""The run ledger: every CLI/benchmark invocation leaves a record.

Benchmark trajectories are only diffable if runs are findable: which
command ran, with which configuration, on which code, and where its
artifacts went.  The ledger is a single append-only ``ledger.jsonl``
(one canonical JSON object per line) in the results directory; each
entry carries:

* ``command`` and ``argv`` — what was invoked;
* ``config_digest`` — SHA-256 over the canonical JSON of the resolved
  configuration, so "same flags" is a string comparison;
* ``git_describe`` — ``git describe --always --dirty`` when the tree
  is a git checkout (best-effort: absent otherwise, never an error);
* ``exit_code`` / ``duration_s`` — how it ended and how long it took;
* ``metrics_path`` / ``trace_path`` — where the run's observability
  artifacts were written (when observability was on);
* ``timestamp`` — the one sanctioned wall-clock read
  (:func:`repro.obs.clock.wall_time`), for lining runs up against
  external logs.

Appends are flushed and fsynced so a crash right after a run still
leaves the record; the file is append-only, so concurrent runs
interleave whole lines rather than corrupting each other (single
``write`` of one line, standard POSIX append semantics).
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.clock import wall_time

#: Version stamped into every ledger line.
LEDGER_SCHEMA_VERSION = 1

#: Default ledger file name inside the results directory.
LEDGER_NAME = "ledger.jsonl"


def config_digest(config: Dict[str, object]) -> str:
    """SHA-256 hex digest of a configuration mapping.

    Canonical JSON (sorted keys, minimal separators, non-JSON values
    stringified) so two invocations with the same resolved settings
    digest identically regardless of dict ordering.
    """
    canonical = json.dumps(
        config, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def git_describe(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """``git describe --always --dirty`` for ``cwd``, or None.

    Best-effort by contract: a missing git binary, a non-repo
    directory, or any git failure yields None — the ledger records the
    absence instead of failing the run it is documenting.
    """
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    described = completed.stdout.strip()
    return described or None


@dataclass(frozen=True)
class LedgerEntry:
    """One run record (one ``ledger.jsonl`` line)."""

    command: str
    argv: List[str]
    config_digest: str
    exit_code: int
    duration_s: float
    timestamp: float
    git_describe: Optional[str] = None
    metrics_path: Optional[str] = None
    trace_path: Optional[str] = None
    extra: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        """JSON rendering (one ledger line)."""
        payload: Dict[str, object] = {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "command": self.command,
            "argv": list(self.argv),
            "config_digest": self.config_digest,
            "exit_code": self.exit_code,
            "duration_s": self.duration_s,
            "timestamp": self.timestamp,
            "git_describe": self.git_describe,
            "metrics_path": self.metrics_path,
            "trace_path": self.trace_path,
        }
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "LedgerEntry":
        """Inverse of :meth:`to_json`; rejects unknown versions."""
        version = payload.get("schema_version")
        if version != LEDGER_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported ledger schema_version {version!r}"
            )
        return cls(
            command=str(payload["command"]),
            argv=[str(arg) for arg in payload.get("argv", [])],  # type: ignore[union-attr]
            config_digest=str(payload["config_digest"]),
            exit_code=int(payload["exit_code"]),  # type: ignore[arg-type]
            duration_s=float(payload["duration_s"]),  # type: ignore[arg-type]
            timestamp=float(payload["timestamp"]),  # type: ignore[arg-type]
            git_describe=(
                None
                if payload.get("git_describe") is None
                else str(payload["git_describe"])
            ),
            metrics_path=(
                None
                if payload.get("metrics_path") is None
                else str(payload["metrics_path"])
            ),
            trace_path=(
                None
                if payload.get("trace_path") is None
                else str(payload["trace_path"])
            ),
            extra=dict(payload.get("extra", {})),  # type: ignore[arg-type]
        )


class RunLedger:
    """Append-only accessor for one ``ledger.jsonl`` file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def append(self, entry: LedgerEntry) -> None:
        """Durably append one entry (flush + fsync before returning)."""
        line = (
            json.dumps(entry.to_json(), sort_keys=True, separators=(",", ":"))
            + "\n"
        ).encode("utf-8")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "ab") as stream:
            stream.write(line)
            stream.flush()
            os.fsync(stream.fileno())

    def record(
        self,
        command: str,
        argv: List[str],
        config: Dict[str, object],
        exit_code: int,
        duration_s: float,
        metrics_path: Optional[Union[str, Path]] = None,
        trace_path: Optional[Union[str, Path]] = None,
        extra: Optional[Dict[str, object]] = None,
    ) -> LedgerEntry:
        """Build an entry from run facts, append it, and return it."""
        entry = LedgerEntry(
            command=command,
            argv=list(argv),
            config_digest=config_digest(config),
            exit_code=exit_code,
            duration_s=duration_s,
            timestamp=wall_time(),
            git_describe=git_describe(self.path.parent),
            metrics_path=None if metrics_path is None else str(metrics_path),
            trace_path=None if trace_path is None else str(trace_path),
            extra=dict(extra) if extra else {},
        )
        self.append(entry)
        return entry

    def entries(self) -> List[LedgerEntry]:
        """Parse every ledger line (raises ValueError on a bad line)."""
        if not self.path.exists():
            return []
        entries: List[LedgerEntry] = []
        text = self.path.read_text(encoding="utf-8")
        for line_number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{self.path}:{line_number}: bad JSON: {error}"
                ) from error
            if not isinstance(payload, dict):
                raise ValueError(
                    f"{self.path}:{line_number}: entry must be an object"
                )
            try:
                entries.append(LedgerEntry.from_json(payload))
            except (KeyError, TypeError, ValueError) as error:
                raise ValueError(
                    f"{self.path}:{line_number}: {error}"
                ) from error
        return entries
