"""Hierarchical tracing spans with context propagation and exporters.

The service, stream and reliability layers are multi-stage pipelines:
a batch fans out over shard-scan threads, a stream micro-batch runs
inside a supervised worker thread that may be killed and respawned.
Counters say *how often*; spans say *where the time went and under
what* — each :class:`Span` records its parent, duration, attributes
and status, and the parent/child links survive thread hops because the
current span travels in a :mod:`contextvars` context that callers copy
into worker threads (``contextvars.copy_context().run(...)``).

Design constraints, in order:

* **cheap when off** — :func:`span` on a disabled tracer is a single
  attribute check and a no-op context manager; hot paths keep their
  instrumentation unconditionally.
* **bounded** — finished spans land in a ring buffer
  (:class:`TraceBuffer`); a run that outlives the capacity drops the
  oldest spans and counts the drops rather than growing without bound.
* **no orphans** — a span is only ever published from the ``finally``
  of its context manager, so a worker dying mid-span still closes it
  (status ``error``) before the exception propagates.
* **deterministic export** — :meth:`TraceBuffer.export_jsonl` with
  ``canonical=True`` strips timing/thread fields and renumbers span
  ids by the tree structure (root-to-leaf name path plus attributes),
  so two runs of a deterministic workload produce byte-identical
  trace files; the chaos CI jobs diff exactly that.

Exporters: JSONL (one span per line, the ``repro obs`` interchange
format) and the Chrome ``trace_event`` JSON that Perfetto and
``chrome://tracing`` open directly.
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, Iterator, List, Optional, Tuple, Union

#: Version stamped into exported span records; readers reject versions
#: they do not understand instead of misparsing them.
TRACE_SCHEMA_VERSION = 1

#: Span completion statuses.
STATUS_OK = "ok"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class Span:
    """One finished span: a named, timed, attributed tree node.

    ``start_us`` / ``duration_us`` are microseconds on the tracer's
    own monotonic epoch (comparable within one trace, meaningless
    across processes — the ledger carries the wall-clock anchor).
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start_us: int
    duration_us: int
    thread: str
    status: str = STATUS_OK
    error: Optional[str] = None
    attributes: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        """Full JSONL rendering (one trace-file line)."""
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "thread": self.thread,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "Span":
        """Inverse of :meth:`to_json`; rejects unknown versions."""
        version = payload.get("schema_version", TRACE_SCHEMA_VERSION)
        if version != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported span schema_version {version!r}"
            )
        return cls(
            span_id=int(payload["span_id"]),  # type: ignore[arg-type]
            parent_id=(
                None
                if payload.get("parent_id") is None
                else int(payload["parent_id"])  # type: ignore[arg-type]
            ),
            name=str(payload["name"]),
            start_us=int(payload.get("start_us", 0)),  # type: ignore[arg-type]
            duration_us=int(payload.get("duration_us", 0)),  # type: ignore[arg-type]
            thread=str(payload.get("thread", "")),
            status=str(payload.get("status", STATUS_OK)),
            error=(
                None
                if payload.get("error") is None
                else str(payload["error"])
            ),
            attributes=dict(payload.get("attributes", {})),  # type: ignore[arg-type]
        )


class TraceBuffer:
    """Bounded in-process ring of finished spans (thread-safe).

    The newest ``capacity`` spans are kept; older ones are dropped and
    counted so an export can say how much history it is missing.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._lock = threading.Lock()
        self._capacity = capacity
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self._dropped = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained spans."""
        return self._capacity

    @property
    def dropped(self) -> int:
        """Spans evicted because the buffer was full."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def append(self, span: Span) -> None:
        """Publish one finished span (oldest is evicted when full)."""
        with self._lock:
            if len(self._spans) == self._capacity:
                self._dropped += 1
            self._spans.append(span)

    def spans(self) -> List[Span]:
        """Snapshot of the retained spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Drop every retained span and reset the drop counter."""
        with self._lock:
            self._spans.clear()
            self._dropped = 0


class _ActiveSpan:
    """Mutable in-flight span state, private to the tracer."""

    __slots__ = ("span_id", "parent_id", "name", "start", "attributes")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        attributes: Dict[str, object],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.attributes = attributes


#: The innermost open span of the current logical context.  Copies of
#: the context (``contextvars.copy_context()``) carry it into worker
#: threads, which is how shard-scan and supervisor-worker spans nest
#: under the batch that spawned them.
_CURRENT_SPAN: contextvars.ContextVar[Optional[_ActiveSpan]] = (
    contextvars.ContextVar("repro_obs_current_span", default=None)
)


class Tracer:
    """Span factory bound to one :class:`TraceBuffer`.

    Disabled tracers (the default) make :meth:`span` a no-op; the
    instrumentation in the service layers therefore never needs to be
    conditionally compiled in or out.
    """

    def __init__(
        self, capacity: int = 65536, enabled: bool = True
    ) -> None:
        self.buffer = TraceBuffer(capacity=capacity)
        self.enabled = enabled
        self._lock = threading.Lock()
        self._next_id = 1
        self._epoch = time.perf_counter()

    def _allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    @contextmanager
    def span(
        self, name: str, **attributes: object
    ) -> Iterator[Optional[_ActiveSpan]]:
        """Open a child span of the context's current span.

        The span is published to the buffer from the ``finally`` — on
        an exception it carries status ``error`` and the exception's
        repr, and the exception still propagates.
        """
        if not self.enabled:
            yield None
            return
        parent = _CURRENT_SPAN.get()
        active = _ActiveSpan(
            span_id=self._allocate_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start=time.perf_counter(),
            attributes=dict(attributes),
        )
        token = _CURRENT_SPAN.set(active)
        status = STATUS_OK
        error: Optional[str] = None
        try:
            yield active
        except BaseException as exc:
            status = STATUS_ERROR
            error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            _CURRENT_SPAN.reset(token)
            end = time.perf_counter()
            self.buffer.append(
                Span(
                    span_id=active.span_id,
                    parent_id=active.parent_id,
                    name=active.name,
                    start_us=int((active.start - self._epoch) * 1e6),
                    duration_us=max(0, int((end - active.start) * 1e6)),
                    thread=threading.current_thread().name,
                    status=status,
                    error=error,
                    attributes=active.attributes,
                )
            )

    # -- export --------------------------------------------------------

    def export_jsonl(
        self, target: Union[str, Path], canonical: bool = False
    ) -> int:
        """Write the buffer as JSON Lines; returns the span count.

        ``canonical=True`` produces the deterministic form (see
        :func:`canonical_records`): timing and thread fields dropped,
        ids renumbered by tree structure — byte-identical across runs
        of a deterministic workload.
        """
        spans = self.buffer.spans()
        if canonical:
            records = canonical_records(spans)
        else:
            records = [span.to_json() for span in spans]
        lines = [
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in records
        ]
        data = "".join(line + "\n" for line in lines)
        Path(target).write_text(data, encoding="utf-8")
        return len(records)

    def export_chrome(self, target: Union[str, Path]) -> int:
        """Write the buffer as Chrome ``trace_event`` JSON.

        The output opens directly in Perfetto (https://ui.perfetto.dev)
        or ``chrome://tracing``.  Returns the event count.
        """
        spans = self.buffer.spans()
        payload = chrome_trace(spans)
        Path(target).write_text(
            json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
        )
        return len(payload["traceEvents"])


def current_span() -> Optional[_ActiveSpan]:
    """The context's innermost open span (None outside any span)."""
    return _CURRENT_SPAN.get()


#: Process-wide tracer the module-level :func:`span` delegates to.
#: Starts disabled: importing the observability layer costs nothing
#: until a CLI flag or a benchmark turns it on.
_DEFAULT_TRACER = Tracer(capacity=1, enabled=False)
_tracer_lock = threading.Lock()
_active_tracer: Tracer = _DEFAULT_TRACER


def get_tracer() -> Tracer:
    """The currently installed process-wide tracer."""
    with _tracer_lock:
        return _active_tracer


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install (or, with None, uninstall) the process-wide tracer.

    Returns the previously installed tracer so callers can restore it.
    """
    global _active_tracer
    with _tracer_lock:
        previous = _active_tracer
        _active_tracer = tracer if tracer is not None else _DEFAULT_TRACER
    return previous


@contextmanager
def span(name: str, **attributes: object) -> Iterator[Optional[_ActiveSpan]]:
    """Open a span on the process-wide tracer (no-op when disabled)."""
    tracer = _active_tracer
    if not tracer.enabled:
        yield None
        return
    with tracer.span(name, **attributes) as active:
        yield active


# ----------------------------------------------------------------------
# Deterministic (canonical) export
# ----------------------------------------------------------------------


def _attrs_key(span_record: Span) -> str:
    return json.dumps(
        span_record.attributes,
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )


def canonical_records(spans: List[Span]) -> List[Dict[str, object]]:
    """Timing-free, deterministically ordered span records.

    Each span's sort key is its root-to-leaf path of ``(name,
    attributes)`` pairs — structure the instrumentation chooses, not
    scheduler timing — with the original creation order as the final
    tiebreak for genuinely identical siblings.  Ids are renumbered in
    that order, so two runs that build the same span tree export the
    same bytes regardless of thread interleaving.
    """
    by_id: Dict[int, Span] = {s.span_id: s for s in spans}
    key_cache: Dict[int, Tuple[Tuple[str, str], ...]] = {}

    def structural_key(span_record: Span) -> Tuple[Tuple[str, str], ...]:
        cached = key_cache.get(span_record.span_id)
        if cached is not None:
            return cached
        own = (span_record.name, _attrs_key(span_record))
        parent = (
            by_id.get(span_record.parent_id)
            if span_record.parent_id is not None
            else None
        )
        key: Tuple[Tuple[str, str], ...]
        if parent is None:
            key = (own,)
        else:
            key = structural_key(parent) + (own,)
        key_cache[span_record.span_id] = key
        return key

    ordered = sorted(
        spans, key=lambda s: (structural_key(s), s.span_id)
    )
    renumbered = {s.span_id: index + 1 for index, s in enumerate(ordered)}
    records: List[Dict[str, object]] = []
    for span_record in ordered:
        parent_id = span_record.parent_id
        records.append(
            {
                "schema_version": TRACE_SCHEMA_VERSION,
                "span_id": renumbered[span_record.span_id],
                "parent_id": (
                    renumbered.get(parent_id) if parent_id is not None else None
                ),
                "name": span_record.name,
                "status": span_record.status,
                "error": span_record.error,
                "attributes": dict(span_record.attributes),
            }
        )
    return records


# ----------------------------------------------------------------------
# Chrome trace_event conversion
# ----------------------------------------------------------------------


def chrome_trace(spans: List[Span]) -> Dict[str, object]:
    """Convert spans to the Chrome ``trace_event`` JSON object format.

    Every span becomes one complete (``"ph": "X"``) event; thread names
    map to stable integer tids (sorted first-seen names) and are named
    via ``thread_name`` metadata events so Perfetto's track labels stay
    readable.
    """
    thread_names = sorted({s.thread for s in spans})
    tids = {name: index + 1 for index, name in enumerate(thread_names)}
    events: List[Dict[str, object]] = []
    for name, tid in sorted(tids.items(), key=lambda item: item[1]):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 1,
                "tid": tid,
                "args": {"name": name},
            }
        )
    for span_record in spans:
        args: Dict[str, object] = dict(span_record.attributes)
        args["span_id"] = span_record.span_id
        if span_record.parent_id is not None:
            args["parent_id"] = span_record.parent_id
        if span_record.status != STATUS_OK:
            args["status"] = span_record.status
            if span_record.error is not None:
                args["error"] = span_record.error
        events.append(
            {
                "ph": "X",
                "name": span_record.name,
                "cat": span_record.name.split(".", 1)[0],
                "ts": span_record.start_us,
                "dur": span_record.duration_us,
                "pid": 1,
                "tid": tids[span_record.thread],
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# Trace-file reading and validation (the ``repro obs`` commands)
# ----------------------------------------------------------------------


def read_trace_jsonl(path: Union[str, Path]) -> List[Span]:
    """Parse a (non-canonical) trace JSONL file back into spans."""
    spans: List[Span] = []
    text = Path(path).read_text(encoding="utf-8")
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}:{line_number}: bad JSON: {error}") from error
        if not isinstance(payload, dict):
            raise ValueError(f"{path}:{line_number}: span must be an object")
        try:
            spans.append(Span.from_json(payload))
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"{path}:{line_number}: {error}") from error
    return spans


def validate_spans(spans: List[Span]) -> List[str]:
    """Structural problems in a span list (empty = valid).

    Checks the invariants the exporters promise: unique ids, parent
    references that resolve (no orphans), non-negative timing, and a
    known status on every span.
    """
    problems: List[str] = []
    seen: Dict[int, Span] = {}
    for span_record in spans:
        if span_record.span_id in seen:
            problems.append(f"duplicate span_id {span_record.span_id}")
        seen[span_record.span_id] = span_record
    for span_record in spans:
        if (
            span_record.parent_id is not None
            and span_record.parent_id not in seen
        ):
            problems.append(
                f"span {span_record.span_id} ({span_record.name!r}) is an "
                f"orphan: parent_id {span_record.parent_id} not in trace"
            )
        if span_record.duration_us < 0:
            problems.append(
                f"span {span_record.span_id} has negative duration"
            )
        if span_record.status not in (STATUS_OK, STATUS_ERROR):
            problems.append(
                f"span {span_record.span_id} has unknown status "
                f"{span_record.status!r}"
            )
    return problems
