"""The sanctioned clock seam for the observability layer.

Everything in this repo that measures a *duration* must use a
monotonic clock (invariant REP006): ``time.time()`` jumps under NTP
slew and DST and would corrupt timeouts, backoff schedules and latency
histograms.  But the observability layer genuinely needs one wall-clock
reading per run — the ledger timestamp that lets an operator line a
trace up against the rest of the fleet's logs.

This module is the **only** place in the tree allowed to read the wall
clock (``repro lint`` whitelists exactly this file for REP006).  Code
that needs a timestamp imports :func:`wall_time` from here; code that
needs a duration uses :func:`monotonic` / :func:`perf_counter` like
everywhere else.  Keeping both behind one seam also gives tests a
single monkeypatch point to freeze time.
"""

from __future__ import annotations

import time


def wall_time() -> float:
    """Seconds since the Unix epoch — ledger/trace timestamps only.

    Never use this for durations, timeouts or ordering; it is the one
    sanctioned wall-clock read in the repository.
    """
    return time.time()


def monotonic() -> float:
    """Monotonic seconds for timeouts and coarse durations."""
    return time.monotonic()


def perf_counter() -> float:
    """High-resolution monotonic seconds for latency measurement."""
    return time.perf_counter()
