"""A single metrics registry with Prometheus and JSON exporters.

Before this module, the repo's metrics lived in three dialects:
:class:`~repro.service.metrics.ServiceMetrics` counters/histograms,
breaker counters funnelled through the ``CounterSink`` protocol, and
ad-hoc dicts in benchmark reports.  The registry gives them one export
surface and one naming scheme::

    repro_<subsystem>_<name>            counters end in _total
    repro_<subsystem>_<stage>_seconds   latency histograms

Three instrument kinds are supported directly — :class:`Counter`,
:class:`Gauge`, and :class:`Histogram` with **explicit bucket upper
bounds** — plus *collectors*: callables sampled at scrape time that
translate an external source (in practice a ``ServiceMetrics``
instance, which already receives every breaker, store, batch and
stream counter) into metric families.  Exporters:

* :meth:`MetricsRegistry.exposition` — Prometheus text format 0.0.4
  (``# HELP`` / ``# TYPE`` / cumulative ``le`` buckets), scrapeable or
  diffable as an artifact;
* :meth:`MetricsRegistry.snapshot` — a JSON document with a
  ``schema_version``, written next to traces by the CLI and benches.

Invariant REP007 (``repro lint``) closes the loop: new metrics in the
service/reliability layers must go through this registry or
``ServiceMetrics`` — bare dict counters do not export, do not appear
on dashboards, and rot.
"""

from __future__ import annotations

import json
import re
import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

#: Version stamped into JSON snapshots.
METRICS_SCHEMA_VERSION = 1

#: Required shape of a registered metric name.
_NAME_RE = re.compile(r"^repro_[a-z][a-z0-9_]*$")

#: Characters replaced when deriving exposition names from dotted
#: ``ServiceMetrics`` counter names (``batch.shard_failures`` →
#: ``repro_batch_shard_failures_total``).
_SANITIZE_RE = re.compile(r"[^a-z0-9_]")


def _format_value(value: float) -> str:
    """Prometheus sample rendering: integers without a trailing .0."""
    as_int = int(value)
    if float(as_int) == float(value):
        return str(as_int)
    return repr(float(value))


def sanitize_metric_name(dotted: str, suffix: str = "") -> str:
    """Translate a dotted internal name into the exposition scheme.

    ``batch.queries`` → ``repro_batch_queries<suffix>``; anything not
    ``[a-z0-9_]`` collapses to ``_``.
    """
    flat = _SANITIZE_RE.sub("_", dotted.lower().replace(".", "_"))
    flat = flat.strip("_") or "unnamed"
    return f"repro_{flat}{suffix}"


@dataclass(frozen=True)
class Sample:
    """One exposition line: name, optional labels, value."""

    name: str
    value: float
    labels: Tuple[Tuple[str, str], ...] = ()

    def render(self) -> str:
        """The Prometheus text line for this sample."""
        if not self.labels:
            return f"{self.name} {_format_value(self.value)}"
        inner = ",".join(
            f'{key}="{value}"' for key, value in self.labels
        )
        return f"{self.name}{{{inner}}} {_format_value(self.value)}"


@dataclass
class Family:
    """One metric family: a name, a type, and its samples."""

    name: str
    kind: str  # counter | gauge | histogram
    help: str
    samples: List[Sample] = field(default_factory=list)


class Counter:
    """Monotonically increasing counter (thread-safe)."""

    def __init__(self, name: str, help: str) -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value

    def collect(self) -> Family:
        """This counter as an exposition family."""
        name = self.name if self.name.endswith("_total") else self.name + "_total"
        return Family(
            name=name,
            kind="counter",
            help=self.help,
            samples=[Sample(name=name, value=self.value())],
        )


class Gauge:
    """A value that can go up and down (thread-safe)."""

    def __init__(self, name: str, help: str) -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        with self._lock:
            self._value += amount

    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value

    def collect(self) -> Family:
        """This gauge as an exposition family."""
        return Family(
            name=self.name,
            kind="gauge",
            help=self.help,
            samples=[Sample(name=self.name, value=self.value())],
        )


class Histogram:
    """Histogram over explicit, finite, increasing bucket upper bounds.

    Observations count into the first bucket whose upper bound is >=
    the value; everything above the last bound lands only in the
    implicit ``+Inf`` bucket.  Exposition emits the standard cumulative
    ``le`` series plus ``_sum`` and ``_count``.
    """

    def __init__(
        self, name: str, help: str, buckets: Sequence[float]
    ) -> None:
        bounds = [float(bound) for bound in buckets]
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            raise ValueError(
                f"bucket bounds must be strictly increasing, got {bounds}"
            )
        self.name = name
        self.help = help
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * len(bounds)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            if index < len(self._counts):
                self._counts[index] += 1
            self._count += 1
            self._sum += value

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, finite bounds only."""
        with self._lock:
            counts = list(self._counts)
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            pairs.append((bound, running))
        return pairs

    def collect(self) -> Family:
        """This histogram as an exposition family."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            total_sum = self._sum
        samples: List[Sample] = []
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            samples.append(
                Sample(
                    name=self.name + "_bucket",
                    value=float(running),
                    labels=(("le", _format_value(bound)),),
                )
            )
        samples.append(
            Sample(
                name=self.name + "_bucket",
                value=float(total),
                labels=(("le", "+Inf"),),
            )
        )
        samples.append(Sample(name=self.name + "_sum", value=total_sum))
        samples.append(Sample(name=self.name + "_count", value=float(total)))
        return Family(
            name=self.name, kind="histogram", help=self.help, samples=samples
        )


Instrument = Union[Counter, Gauge, Histogram]

#: A collector returns families computed at scrape time.
Collector = Callable[[], List[Family]]


class MetricsRegistry:
    """The single registry every exported metric flows through.

    Instruments are created through the factory methods (which enforce
    the ``repro_<subsystem>_<name>`` scheme and reject duplicates);
    external sources join via :meth:`add_collector`.  Both exporters
    produce deterministically ordered output: families sorted by name,
    then sample order as collected.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Instrument] = {}
        self._collectors: List[Collector] = []

    @staticmethod
    def _check_name(name: str) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"metric name {name!r} does not match the "
                "repro_<subsystem>_<name> scheme (lowercase, underscores)"
            )

    def _register(self, instrument: Instrument) -> None:
        with self._lock:
            if instrument.name in self._instruments:
                raise ValueError(
                    f"metric {instrument.name!r} is already registered"
                )
            self._instruments[instrument.name] = instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Create and register a counter."""
        self._check_name(name)
        instrument = Counter(name, help)
        self._register(instrument)
        return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Create and register a gauge."""
        self._check_name(name)
        instrument = Gauge(name, help)
        self._register(instrument)
        return instrument

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = ()
    ) -> Histogram:
        """Create and register a histogram with explicit bucket bounds."""
        self._check_name(name)
        instrument = Histogram(name, help, buckets)
        self._register(instrument)
        return instrument

    def add_collector(self, collector: Collector) -> None:
        """Register a scrape-time family source (e.g. a bridge)."""
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> List[Family]:
        """Every family, instruments then collectors, sorted by name."""
        with self._lock:
            instruments = list(self._instruments.values())
            collectors = list(self._collectors)
        families: List[Family] = [
            instrument.collect() for instrument in instruments
        ]
        for collector in collectors:
            families.extend(collector())
        families.sort(key=lambda family: family.name)
        return families

    def exposition(self) -> str:
        """Prometheus text exposition (format 0.0.4) of every family."""
        lines: List[str] = []
        for family in self.collect():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for sample in family.samples:
                lines.append(sample.render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, object]:
        """JSON document of every family (sorted, schema-versioned)."""
        families: List[Dict[str, object]] = []
        for family in self.collect():
            families.append(
                {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "samples": [
                        {
                            "name": sample.name,
                            "labels": dict(sample.labels),
                            "value": sample.value,
                        }
                        for sample in family.samples
                    ],
                }
            )
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "families": families,
        }

    def write_snapshot(self, target: Union[str, Path]) -> None:
        """Write :meth:`snapshot` as pretty, key-sorted JSON."""
        Path(target).write_text(
            json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def write_exposition(self, target: Union[str, Path]) -> None:
        """Write :meth:`exposition` to a file."""
        Path(target).write_text(self.exposition(), encoding="utf-8")


# ----------------------------------------------------------------------
# Bridging ServiceMetrics (and everything that funnels through it)
# ----------------------------------------------------------------------


def service_metrics_families(stats: Dict[str, object]) -> List[Family]:
    """Translate a ``ServiceMetrics.stats()`` snapshot into families.

    Counters become ``repro_<subsystem>_<name>_total``; per-stage
    latency histograms become ``repro_<subsystem>_<stage>_seconds``
    histograms, using the explicit bucket upper bounds the snapshot
    carries (no private geometry re-derivation).
    """
    families: List[Family] = []
    counters = stats.get("counters", {})
    if isinstance(counters, dict):
        for dotted in sorted(counters):
            name = sanitize_metric_name(str(dotted), "_total")
            families.append(
                Family(
                    name=name,
                    kind="counter",
                    help=f"ServiceMetrics counter {dotted!r}",
                    samples=[
                        Sample(name=name, value=float(counters[dotted]))
                    ],
                )
            )
    stages = stats.get("stages", {})
    if isinstance(stages, dict):
        for dotted in sorted(stages):
            summary = stages[dotted]
            if not isinstance(summary, dict):
                continue
            name = sanitize_metric_name(str(dotted), "_seconds")
            samples: List[Sample] = []
            count = float(summary.get("count", 0.0))
            for bucket in summary.get("buckets", []):
                samples.append(
                    Sample(
                        name=name + "_bucket",
                        value=float(bucket["count"]),
                        labels=(("le", _format_value(float(bucket["le"]))),),
                    )
                )
            samples.append(
                Sample(
                    name=name + "_bucket",
                    value=count,
                    labels=(("le", "+Inf"),),
                )
            )
            mean = float(summary.get("mean_s", 0.0))
            samples.append(Sample(name=name + "_sum", value=mean * count))
            samples.append(Sample(name=name + "_count", value=count))
            families.append(
                Family(
                    name=name,
                    kind="histogram",
                    help=f"ServiceMetrics stage {dotted!r} latency",
                    samples=samples,
                )
            )
    reduction = stats.get("candidate_reduction")
    if isinstance(reduction, float):
        name = "repro_index_candidate_reduction_ratio"
        families.append(
            Family(
                name=name,
                kind="gauge",
                help="fraction of the database the LSH filter skipped",
                samples=[Sample(name=name, value=reduction)],
            )
        )
    return families


def bind_service_metrics(
    registry: MetricsRegistry, metrics: "SupportsStats"
) -> None:
    """Register a ``ServiceMetrics``-like source as a live collector.

    ``metrics`` is duck-typed: anything with a ``stats()`` method
    returning the PR 1-3 snapshot shape.  The registry re-reads it at
    every scrape, so one bind covers the whole run.
    """
    registry.add_collector(lambda: service_metrics_families(metrics.stats()))


try:  # pragma: no cover - Protocol exists on every supported Python
    from typing import Protocol

    class SupportsStats(Protocol):
        """Anything exposing a ``stats()`` snapshot (ServiceMetrics)."""

        def stats(self) -> Dict[str, object]:
            """Snapshot of counters and stage histograms."""
            ...

except ImportError:  # pragma: no cover
    SupportsStats = object  # type: ignore[misc,assignment]
