"""Unified observability: tracing, a metrics registry, profiling, ledger.

The service (PR 1), reliability (PR 2) and streaming (PR 3) layers
made the pipeline survive scale and failure; this subsystem makes it
*legible*.  Four pieces, one design rule — instrumentation is always
compiled in, and costs ~nothing until a run turns it on:

* :mod:`repro.obs.trace` — hierarchical :class:`Span` trees propagated
  via ``contextvars`` (across the batch shard fan-out threads and the
  stream supervisor's workers), buffered in a bounded ring, exported
  as JSONL or Chrome ``trace_event`` JSON (opens in Perfetto);
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, explicit-bucket histograms, scrape-time collectors bridging
  :class:`~repro.service.metrics.ServiceMetrics`, and Prometheus-text
  / JSON exporters;
* :mod:`repro.obs.profile` — a sampling wall-clock profiler
  (:class:`SamplingProfiler`), off by default, attachable around hot
  paths, publishing top-of-stack aggregates into the trace;
* :mod:`repro.obs.ledger` — the append-only run ledger
  (:class:`RunLedger`) every CLI entry point and benchmark records
  into, so runs are findable and diffable after the fact.

:mod:`repro.obs.clock` is the one sanctioned wall-clock seam (REP006);
``repro obs summary / export / ledger ls`` are the CLI front ends.
"""

from repro.obs.clock import monotonic, perf_counter, wall_time
from repro.obs.ledger import (
    LEDGER_NAME,
    LEDGER_SCHEMA_VERSION,
    LedgerEntry,
    RunLedger,
    config_digest,
    git_describe,
)
from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Family,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
    bind_service_metrics,
    sanitize_metric_name,
    service_metrics_families,
)
from repro.obs.profile import SamplingProfiler
from repro.obs.trace import (
    STATUS_ERROR,
    STATUS_OK,
    TRACE_SCHEMA_VERSION,
    Span,
    TraceBuffer,
    Tracer,
    canonical_records,
    chrome_trace,
    current_span,
    get_tracer,
    read_trace_jsonl,
    set_tracer,
    span,
    validate_spans,
)

__all__ = [
    "LEDGER_NAME",
    "LEDGER_SCHEMA_VERSION",
    "METRICS_SCHEMA_VERSION",
    "STATUS_ERROR",
    "STATUS_OK",
    "TRACE_SCHEMA_VERSION",
    "Counter",
    "Family",
    "Gauge",
    "Histogram",
    "LedgerEntry",
    "MetricsRegistry",
    "RunLedger",
    "Sample",
    "SamplingProfiler",
    "Span",
    "TraceBuffer",
    "Tracer",
    "bind_service_metrics",
    "canonical_records",
    "chrome_trace",
    "config_digest",
    "current_span",
    "get_tracer",
    "git_describe",
    "monotonic",
    "perf_counter",
    "read_trace_jsonl",
    "sanitize_metric_name",
    "service_metrics_families",
    "set_tracer",
    "span",
    "validate_spans",
    "wall_time",
]
