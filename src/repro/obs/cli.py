"""The ``repro obs`` CLI: summarize, export, and list the run ledger.

Three subcommands over the artifacts the instrumented runs produce:

* ``repro obs summary --trace trace.jsonl [--metrics metrics.json]``
  validates every record (schema versions, orphan spans, negative
  durations, malformed metrics families) and prints a per-span-name
  duration rollup; exit 1 on malformed records — CI's smoke step.
* ``repro obs export --trace trace.jsonl --format chrome|jsonl
  --output out`` converts a JSONL trace to Chrome ``trace_event`` JSON
  (open in Perfetto) or re-emits canonical JSONL for diffing.
* ``repro obs ledger ls [--ledger PATH] [--json]`` lists the run
  ledger, newest last.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

from repro.obs.ledger import LEDGER_NAME, RunLedger
from repro.obs.metrics import METRICS_SCHEMA_VERSION
from repro.obs.trace import (
    Span,
    canonical_records,
    chrome_trace,
    read_trace_jsonl,
    validate_spans,
)


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``obs`` subcommand tree to an argparse parser."""
    sub = parser.add_subparsers(dest="obs_command", required=True)

    summary = sub.add_parser(
        "summary",
        help="validate trace/metrics artifacts and print a rollup",
    )
    summary.add_argument(
        "--trace",
        default=None,
        metavar="TRACE.jsonl",
        help="span JSONL file to validate and summarize",
    )
    summary.add_argument(
        "--metrics",
        default=None,
        metavar="METRICS.json",
        help="metrics JSON snapshot to validate",
    )
    summary.add_argument(
        "--json",
        action="store_true",
        help="emit the summary as JSON on stdout",
    )

    export = sub.add_parser(
        "export",
        help="convert a span JSONL trace for other tools",
    )
    export.add_argument(
        "--trace",
        required=True,
        metavar="TRACE.jsonl",
        help="span JSONL file to convert",
    )
    export.add_argument(
        "--format",
        choices=("chrome", "jsonl"),
        default="chrome",
        help="chrome: trace_event JSON for Perfetto; "
        "jsonl: canonical (deterministic) span lines",
    )
    export.add_argument(
        "--output",
        required=True,
        metavar="FILE",
        help="where to write the converted trace",
    )

    ledger = sub.add_parser(
        "ledger", help="inspect the run ledger"
    )
    ledger_sub = ledger.add_subparsers(dest="ledger_command", required=True)
    ledger_ls = ledger_sub.add_parser(
        "ls", help="list recorded runs, oldest first"
    )
    ledger_ls.add_argument(
        "--ledger",
        default=None,
        metavar="LEDGER.jsonl",
        help=f"ledger file (default <results-dir>/{LEDGER_NAME})",
    )
    ledger_ls.add_argument(
        "--json",
        action="store_true",
        help="emit the entries as JSON on stdout",
    )


def _span_rollup(spans: List[Span]) -> List[Dict[str, object]]:
    """Per-name span aggregates, deterministically ordered by name."""
    grouped: Dict[str, Dict[str, float]] = {}
    for span_record in spans:
        entry = grouped.setdefault(
            span_record.name,
            {"count": 0.0, "total_us": 0.0, "max_us": 0.0, "errors": 0.0},
        )
        entry["count"] += 1
        entry["total_us"] += span_record.duration_us
        entry["max_us"] = max(entry["max_us"], float(span_record.duration_us))
        if span_record.status != "ok":
            entry["errors"] += 1
    return [
        {
            "name": name,
            "count": int(grouped[name]["count"]),
            "total_ms": grouped[name]["total_us"] / 1e3,
            "max_ms": grouped[name]["max_us"] / 1e3,
            "errors": int(grouped[name]["errors"]),
        }
        for name in sorted(grouped)
    ]


def _validate_metrics_snapshot(path: Path) -> List[str]:
    """Structural problems in a metrics JSON snapshot (empty = valid)."""
    problems: List[str] = []
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        return [f"unreadable metrics snapshot: {error}"]
    if not isinstance(payload, dict):
        return ["metrics snapshot must be a JSON object"]
    if payload.get("schema_version") != METRICS_SCHEMA_VERSION:
        problems.append(
            "unsupported metrics schema_version "
            f"{payload.get('schema_version')!r}"
        )
        return problems
    families = payload.get("families")
    if not isinstance(families, list):
        return ["metrics snapshot has no 'families' list"]
    for index, family in enumerate(families):
        if not isinstance(family, dict):
            problems.append(f"family #{index} is not an object")
            continue
        name = family.get("name")
        if not isinstance(name, str) or not name.startswith("repro_"):
            problems.append(
                f"family #{index} name {name!r} violates the "
                "repro_<subsystem>_<name> scheme"
            )
        if family.get("type") not in ("counter", "gauge", "histogram"):
            problems.append(
                f"family {name!r} has unknown type {family.get('type')!r}"
            )
        samples = family.get("samples")
        if not isinstance(samples, list) or not samples:
            problems.append(f"family {name!r} has no samples")
            continue
        for sample in samples:
            if not isinstance(sample, dict) or "value" not in sample:
                problems.append(f"family {name!r} holds a malformed sample")
                break
    return problems


def _summary(args: argparse.Namespace) -> int:
    if args.trace is None and args.metrics is None:
        print("obs summary: pass --trace and/or --metrics", file=sys.stderr)
        return 2
    problems: List[str] = []
    report: Dict[str, object] = {}
    if args.trace is not None:
        trace_path = Path(args.trace)
        if not trace_path.exists():
            print(f"obs summary: no trace at {trace_path}", file=sys.stderr)
            return 2
        try:
            spans = read_trace_jsonl(trace_path)
        except ValueError as error:
            problems.append(str(error))
            spans = []
        else:
            problems.extend(validate_spans(spans))
        report["spans"] = len(spans)
        report["span_rollup"] = _span_rollup(spans)
    if args.metrics is not None:
        metrics_path = Path(args.metrics)
        if not metrics_path.exists():
            print(
                f"obs summary: no metrics snapshot at {metrics_path}",
                file=sys.stderr,
            )
            return 2
        metrics_problems = _validate_metrics_snapshot(metrics_path)
        problems.extend(metrics_problems)
        if not metrics_problems:
            payload = json.loads(metrics_path.read_text(encoding="utf-8"))
            report["metric_families"] = len(payload["families"])
    report["problems"] = problems
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for entry in report.get("span_rollup", []):  # type: ignore[union-attr]
            print(
                f"{entry['name']}: n={entry['count']} "
                f"total={entry['total_ms']:.3f}ms "
                f"max={entry['max_ms']:.3f}ms errors={entry['errors']}"
            )
        if "spans" in report:
            print(f"{report['spans']} span(s) validated")
        if "metric_families" in report:
            print(f"{report['metric_families']} metric families validated")
        for problem in problems:
            print(f"problem: {problem}", file=sys.stderr)
    return 1 if problems else 0


def _export(args: argparse.Namespace) -> int:
    trace_path = Path(args.trace)
    if not trace_path.exists():
        print(f"obs export: no trace at {trace_path}", file=sys.stderr)
        return 2
    try:
        spans = read_trace_jsonl(trace_path)
    except ValueError as error:
        print(f"obs export: {error}", file=sys.stderr)
        return 1
    output = Path(args.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    if args.format == "chrome":
        payload = chrome_trace(spans)
        output.write_text(
            json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(
            f"wrote {len(payload['traceEvents'])} trace events to {output} "
            "(open in https://ui.perfetto.dev or chrome://tracing)"
        )
    else:
        records = canonical_records(spans)
        output.write_text(
            "".join(
                json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
                for record in records
            ),
            encoding="utf-8",
        )
        print(f"wrote {len(records)} canonical span lines to {output}")
    return 0


def _ledger_ls(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import results_dir

    path = (
        Path(args.ledger)
        if args.ledger is not None
        else results_dir() / LEDGER_NAME
    )
    if not path.exists():
        print(f"obs ledger: no ledger at {path}", file=sys.stderr)
        return 2
    try:
        entries = RunLedger(path).entries()
    except ValueError as error:
        print(f"obs ledger: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(
            json.dumps(
                [entry.to_json() for entry in entries],
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    for entry in entries:
        described = entry.git_describe or "-"
        print(
            f"{entry.timestamp:.0f}  {entry.command:<12} "
            f"exit={entry.exit_code} {entry.duration_s:.2f}s "
            f"cfg={entry.config_digest[:12]} git={described}"
        )
    print(f"{len(entries)} run(s) recorded")
    return 0


def run_obs(args: argparse.Namespace) -> int:
    """Dispatch an ``obs`` namespace parsed by :func:`configure_parser`."""
    if args.obs_command == "summary":
        return _summary(args)
    if args.obs_command == "export":
        return _export(args)
    return _ledger_ls(args)
