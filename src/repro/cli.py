"""Command-line interface: experiments plus the identification service.

Usage::

    python -m repro list                 # available experiment ids
    python -m repro run fig07            # run one experiment
    python -m repro run all              # run every experiment
    python -m repro run fig13 --quiet    # save the report, print summary
    python -m repro serve-batch --store DB --ingest fp.pcfp \\
        --queries queries.jsonl          # batch identification service
    python -m repro stream --store DB --observations obs.jsonl \\
        --state-dir STATE                # supervised streaming pipeline
    python -m repro stream --store DB --observations obs.jsonl \\
        --state-dir STATE --resume       # continue after a crash/drain
    python -m repro quarantine ls --state-dir STATE      # triage rejects
    python -m repro quarantine retry --state-dir STATE --store DB
    python -m repro verify-store --store DB   # read-only integrity check
    python -m repro repair --store DB         # recover + quarantine damage
    python -m repro lint                      # repo invariant checker
    python -m repro lint --list-rules         # the rule catalogue
    python -m repro addrmap show --preset ddr2-xor   # mapping layout
    python -m repro addrmap recover --preset ddr2-xor --seed 2015 \\
        --budget 8000 --output recovered.json \\
        --obs-dir obs                         # mapping-recovery attack
    python -m repro obs summary --trace obs/trace.jsonl \\
        --metrics obs/metrics.json            # validate observability
    python -m repro obs export --trace obs/trace.jsonl \\
        --format chrome --output trace.json   # open in Perfetto
    python -m repro obs ledger ls             # list recorded runs
    python -m repro fleet init scenario.json --devices 200 --epochs 6
    python -m repro fleet simulate --scenario scenario.json \\
        --out runs/fleet --obs-dir obs        # fleet-lifecycle simulation
    python -m repro fleet report --out runs/fleet   # accuracy trajectory

Reports are written to ``benchmarks/results/`` (override with the
``REPRO_RESULTS_DIR`` environment variable, or with higher precedence
the ``--results-dir`` flag) and echoed to stdout.

``verify-store`` exits 0 on a consistent store and 1 when it found
problems (a pending crashed ingest, checksum failures, manifest
inconsistencies); ``repair`` resolves them — rolling the ingest
journal forward or back, salvaging readable records out of corrupt
segments and quarantining the rest.  Malformed input (a corrupt
``.pcfp`` file, a missing store) exits 2 with a one-line error.

The ``serve-batch`` query file is JSON Lines: each line holds ``id``,
``nbits`` and either ``errors`` (set-bit indices of a prebuilt error
string) or ``approx`` + ``exact`` (set-bit indices of the output and
its exact value, marked vectorized by the engine).

``stream`` consumes the same wire format as an unbounded feed (a file,
or a directory of ``*.jsonl`` files) through the supervised streaming
pipeline: malformed observations are quarantined with machine-readable
reasons instead of crashing the run, persistently failing shards trip
per-shard circuit breakers, crashed workers restart with backoff, and
the pipeline checkpoints so ``--resume`` continues exactly once after
a crash or a SIGTERM drain.  Exit codes: 0 completed, 3 interrupted
(drained on signal — resume to continue), 1 fatal escalation (see
``fatal.json`` in the state directory), 2 usage errors.

Observability (DESIGN.md §11): ``--obs-dir DIR`` on ``serve-batch``
and ``stream`` turns on the tracer for the run and writes
``trace.jsonl`` (span interchange), ``trace.chrome.json`` (opens in
Perfetto), ``metrics.prom`` (Prometheus text exposition) and
``metrics.json`` into DIR; ``--profile`` additionally samples stacks
around the identification run.  Every service/experiment invocation
appends one record to ``<results-dir>/ledger.jsonl`` (best-effort),
inspectable with ``repro obs ledger ls``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.reporting import (
    load_saved_metrics,
    results_dir,
    save_experiment_report,
    set_results_dir,
)
from repro.addrmap.cli import configure_parser as configure_addrmap_parser
from repro.addrmap.cli import run_addrmap
from repro.experiments import experiment_ids, run_experiment
from repro.fleet.cli import configure_parser as configure_fleet_parser
from repro.fleet.cli import run_fleet
from repro.lint.cli import configure_parser as configure_lint_parser
from repro.lint.cli import run_lint
from repro.obs.cli import configure_parser as configure_obs_parser
from repro.obs.cli import run_obs


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce 'Probable Cause: The Deanonymizing Effects "
        "of Approximate DRAM' (ISCA 2015): regenerate any of the paper's "
        "tables and figures on the simulated platform, or run the batch "
        "identification service.",
    )
    parser.add_argument(
        "--results-dir",
        default=None,
        help="directory for reports (overrides REPRO_RESULTS_DIR)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiment ids")

    subparsers.add_parser(
        "summary",
        help="collate headline metrics from previously saved reports",
    )

    run_parser = subparsers.add_parser(
        "run", help="run one experiment (or 'all')"
    )
    run_parser.add_argument(
        "experiment",
        help="experiment id from 'list', or 'all'",
    )
    run_parser.add_argument(
        "--quiet",
        action="store_true",
        help="save reports without echoing their full text",
    )

    serve_parser = subparsers.add_parser(
        "serve-batch",
        help="ingest fingerprints and answer a batch identification run",
    )
    serve_parser.add_argument(
        "--store",
        required=True,
        help="sharded fingerprint store directory (created if missing)",
    )
    serve_parser.add_argument(
        "--ingest",
        action="append",
        default=[],
        metavar="FILE.pcfp",
        help="fingerprint database file(s) to append to the store",
    )
    serve_parser.add_argument(
        "--shards",
        type=int,
        default=8,
        help="shard count when creating a new store (default 8)",
    )
    serve_parser.add_argument(
        "--queries",
        default=None,
        metavar="FILE.jsonl",
        help="JSON Lines query file to identify",
    )
    serve_parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="Algorithm 2 match threshold (default: paper's 0.1)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker pool width for the shard fan-out",
    )
    serve_parser.add_argument(
        "--report",
        default=None,
        metavar="FILE.json",
        help="where to write the JSON report "
        "(default <results-dir>/serve_batch_report.json)",
    )
    serve_parser.add_argument(
        "--no-cluster-residuals",
        action="store_true",
        help="do not route unmatched queries to the online clusterer",
    )
    serve_parser.add_argument(
        "--quiet",
        action="store_true",
        help="only print the summary line, not the metrics block",
    )
    serve_parser.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help="write trace.jsonl / trace.chrome.json / metrics.prom / "
        "metrics.json observability artifacts into DIR",
    )
    serve_parser.add_argument(
        "--profile",
        action="store_true",
        help="sample stacks around the identification run "
        "(aggregate lands in the trace and on stdout)",
    )

    stream_parser = subparsers.add_parser(
        "stream",
        help="run the supervised streaming identification pipeline",
    )
    stream_parser.add_argument(
        "--store",
        required=True,
        help="sharded fingerprint store directory to identify against",
    )
    stream_parser.add_argument(
        "--observations",
        required=True,
        metavar="FILE_OR_DIR",
        help="JSON Lines observation file, or a directory of *.jsonl files",
    )
    stream_parser.add_argument(
        "--state-dir",
        required=True,
        help="directory for checkpoint/results/quarantine state",
    )
    stream_parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from the state directory's checkpoint",
    )
    stream_parser.add_argument(
        "--batch-size",
        type=int,
        default=64,
        help="valid observations per identification micro-batch",
    )
    stream_parser.add_argument(
        "--queue-depth",
        type=int,
        default=256,
        help="ingest queue bound (backpressure beyond this)",
    )
    stream_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=500,
        help="checkpoint cadence in consumed observations",
    )
    stream_parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="Algorithm 2 match threshold (default: paper's 0.1)",
    )
    stream_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker pool width for the shard fan-out",
    )
    stream_parser.add_argument(
        "--no-breaker",
        action="store_true",
        help="disable per-shard circuit breakers",
    )
    stream_parser.add_argument(
        "--breaker-failures",
        type=int,
        default=3,
        help="consecutive shard failures before the breaker opens",
    )
    stream_parser.add_argument(
        "--breaker-reset-s",
        type=float,
        default=5.0,
        help="seconds an open breaker waits before a half-open probe",
    )
    stream_parser.add_argument(
        "--max-restarts",
        type=int,
        default=3,
        help="worker restarts granted per micro-batch before escalating",
    )
    stream_parser.add_argument(
        "--quiet",
        action="store_true",
        help="only print the summary line, not the metrics block",
    )
    stream_parser.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help="write trace.jsonl / trace.chrome.json / metrics.prom / "
        "metrics.json observability artifacts into DIR",
    )

    quarantine_parser = subparsers.add_parser(
        "quarantine",
        help="triage a stream state directory's quarantined observations",
    )
    quarantine_sub = quarantine_parser.add_subparsers(
        dest="quarantine_command", required=True
    )
    quarantine_ls = quarantine_sub.add_parser(
        "ls", help="list quarantined observations with their reasons"
    )
    quarantine_ls.add_argument(
        "--state-dir",
        required=True,
        help="stream state directory holding quarantine.jsonl",
    )
    quarantine_ls.add_argument(
        "--json",
        action="store_true",
        help="emit the entries as JSON on stdout",
    )
    quarantine_retry = quarantine_sub.add_parser(
        "retry",
        help="re-validate quarantined observations and identify the valid",
    )
    quarantine_retry.add_argument(
        "--state-dir",
        required=True,
        help="stream state directory holding quarantine.jsonl",
    )
    quarantine_retry.add_argument(
        "--store",
        required=True,
        help="sharded fingerprint store directory to identify against",
    )
    quarantine_retry.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="Algorithm 2 match threshold (default: paper's 0.1)",
    )
    quarantine_retry.add_argument(
        "--json",
        action="store_true",
        help="emit the retry report as JSON on stdout",
    )

    verify_parser = subparsers.add_parser(
        "verify-store",
        help="read-only integrity check of a fingerprint store",
    )
    verify_parser.add_argument(
        "--store",
        default=None,
        help="sharded fingerprint store directory to inspect",
    )
    verify_parser.add_argument(
        "--all-shards",
        default=None,
        metavar="CLUSTER_DIR",
        help="fsck every partition replica of a cluster directory and "
        "report per-replica divergence in one JSON report",
    )
    verify_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full verification report as JSON on stdout",
    )

    repair_parser = subparsers.add_parser(
        "repair",
        help="recover a crashed ingest and quarantine corrupt segments",
    )
    repair_parser.add_argument(
        "--store",
        required=True,
        help="sharded fingerprint store directory to repair",
    )
    repair_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full repair report as JSON on stdout",
    )
    repair_parser.add_argument(
        "--prune-quarantine",
        action="store_true",
        help="also delete quarantined segment files older than "
        "--older-than days (their manifest entries fold into the "
        "reclaimed sequence ledger)",
    )
    repair_parser.add_argument(
        "--older-than",
        type=float,
        default=None,
        metavar="DAYS",
        help="retention cutoff in days for --prune-quarantine",
    )
    repair_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="with --prune-quarantine: report what would be pruned "
        "without touching disk (skips the repair pass too)",
    )

    compact_parser = subparsers.add_parser(
        "compact",
        help="merge small and tombstone-carrying store segments "
        "(crash-safe LSM compaction)",
    )
    compact_parser.add_argument(
        "--store",
        required=True,
        help="sharded fingerprint store directory to compact",
    )
    compact_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the compaction plan without executing any merge",
    )
    compact_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the plan/report as JSON on stdout",
    )
    compact_parser.add_argument(
        "--max-merges",
        type=int,
        default=None,
        metavar="N",
        help="cap the number of merges this invocation commits",
    )
    compact_parser.add_argument(
        "--small-records",
        type=int,
        default=None,
        metavar="N",
        help="segments holding at most N records are merge candidates "
        "(default: policy default)",
    )
    compact_parser.add_argument(
        "--obs-dir",
        default=None,
        help="write trace + metrics artifacts for this run into DIR",
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help="check the determinism / crash-safety / lock-discipline "
        "invariants (see DESIGN.md §10)",
    )
    configure_lint_parser(lint_parser)

    obs_parser = subparsers.add_parser(
        "obs",
        help="observability artifacts: validate, convert, list the "
        "run ledger (see DESIGN.md §11)",
    )
    configure_obs_parser(obs_parser)

    addrmap_parser = subparsers.add_parser(
        "addrmap",
        help="physical address mappings: inspect presets, run the "
        "mapping-recovery attacker (see DESIGN.md §12)",
    )
    configure_addrmap_parser(addrmap_parser)

    cluster_parser = subparsers.add_parser(
        "cluster",
        help="process-parallel replicated cluster: serve, status, "
        "rebalance (see DESIGN.md §14)",
    )
    _configure_cluster_parser(cluster_parser)

    fleet_parser = subparsers.add_parser(
        "fleet",
        help="fleet-lifecycle simulation: scenario init, simulate, "
        "report (see DESIGN.md §16)",
    )
    configure_fleet_parser(fleet_parser)
    return parser


def _configure_cluster_parser(parser: argparse.ArgumentParser) -> None:
    """Sub-commands of ``repro cluster``."""
    sub = parser.add_subparsers(dest="cluster_command", required=True)

    serve = sub.add_parser(
        "serve",
        help="build and/or query a replicated worker-process cluster",
    )
    serve.add_argument(
        "--cluster",
        required=True,
        metavar="DIR",
        help="cluster root directory (placement map + replica stores)",
    )
    serve.add_argument(
        "--ingest",
        action="append",
        default=[],
        metavar="FILE.pcfp",
        help="fingerprint database file(s) to build a new cluster from "
        "(enrollment order defines Algorithm 2 sequence priority)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=3,
        help="worker process count when building a new cluster (default 3)",
    )
    serve.add_argument(
        "--partitions",
        type=int,
        default=8,
        help="partition count when building a new cluster (default 8)",
    )
    serve.add_argument(
        "--replication",
        type=int,
        default=2,
        help="replicas per partition when building (default 2)",
    )
    serve.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="Algorithm 2 match threshold (default: paper's 0.1)",
    )
    serve.add_argument(
        "--queries",
        default=None,
        metavar="FILE.jsonl",
        help="JSON Lines query file to identify (batch mode)",
    )
    serve.add_argument(
        "--observations",
        default=None,
        metavar="FILE.jsonl",
        help="observation stream to identify (streaming mode; runs the "
        "stream pipeline's admission/checkpoint machinery over the "
        "cluster engine — requires --state-dir)",
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="stream state directory (checkpoint, quarantine, results) "
        "for --observations",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="with --observations: resume from the last checkpoint",
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=64,
        help="streaming micro-batch size (default 64)",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=500,
        help="streaming checkpoint cadence in observations (default 500)",
    )
    serve.add_argument(
        "--hedge-delay-s",
        type=float,
        default=0.05,
        help="hedge a replica read after this many seconds "
        "(negative disables hedging; default 0.05)",
    )
    serve.add_argument(
        "--jitter-seed",
        type=int,
        default=None,
        help="seed for the restart-backoff jitter RNG (deterministic runs)",
    )
    serve.add_argument(
        "--report",
        default=None,
        metavar="FILE.json",
        help="where to write the JSON report "
        "(default <results-dir>/cluster_serve_report.json)",
    )
    serve.add_argument(
        "--quiet",
        action="store_true",
        help="only print the summary line, not the metrics block",
    )
    serve.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help="write trace + metrics observability artifacts into DIR",
    )

    status = sub.add_parser(
        "status",
        help="print placement, worker liveness and breaker state",
    )
    status.add_argument(
        "--cluster",
        required=True,
        metavar="DIR",
        help="cluster root directory",
    )
    status.add_argument(
        "--json",
        action="store_true",
        help="emit the status as JSON on stdout",
    )

    rebalance = sub.add_parser(
        "rebalance",
        help="re-place partitions after removing/adding workers "
        "(journaled, crash-safe placement commit)",
    )
    rebalance.add_argument(
        "--cluster",
        required=True,
        metavar="DIR",
        help="cluster root directory",
    )
    rebalance.add_argument(
        "--remove",
        action="append",
        default=[],
        metavar="WORKER",
        help="worker id to remove from the placement (repeatable)",
    )
    rebalance.add_argument(
        "--add",
        action="append",
        default=[],
        metavar="WORKER",
        help="worker id to add to the placement (repeatable)",
    )
    rebalance.add_argument(
        "--json",
        action="store_true",
        help="emit the new placement as JSON on stdout",
    )


def _load_queries(path: Path) -> List:
    """Parse a JSON Lines query file into BatchQuery objects."""
    from repro.bits import BitVector
    from repro.service import BatchQuery

    queries = []
    with open(path, "r", encoding="utf-8") as stream:
        for line_number, line in enumerate(stream):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            query_id = str(record.get("id", f"query-{line_number}"))
            nbits = int(record["nbits"])
            if "errors" in record:
                queries.append(
                    BatchQuery.from_errors(
                        query_id,
                        BitVector.from_indices(nbits, record["errors"]),
                    )
                )
            elif "approx" in record and "exact" in record:
                queries.append(
                    BatchQuery.from_pair(
                        query_id,
                        BitVector.from_indices(nbits, record["approx"]),
                        BitVector.from_indices(nbits, record["exact"]),
                    )
                )
            else:
                raise ValueError(
                    f"{path}:{line_number + 1}: query needs 'errors' "
                    "or 'approx'+'exact'"
                )
    return queries


def _write_metrics_artifacts(obs_dir: Path, metrics: object) -> None:
    """Export a ServiceMetrics via the registry into ``obs_dir``.

    Writes both the Prometheus text exposition (``metrics.prom``) and
    the JSON snapshot (``metrics.json``).
    """
    from repro.obs import MetricsRegistry, bind_service_metrics

    registry = MetricsRegistry()
    bind_service_metrics(registry, metrics)  # type: ignore[arg-type]
    obs_dir.mkdir(parents=True, exist_ok=True)
    registry.write_exposition(obs_dir / "metrics.prom")
    registry.write_snapshot(obs_dir / "metrics.json")


def _serve_batch(args: argparse.Namespace) -> int:
    """The serve-batch command body."""
    from repro.core.distance import DEFAULT_THRESHOLD
    from repro.core.serialize import load_database
    from repro.service import BatchIdentificationService, ShardedFingerprintStore

    store = ShardedFingerprintStore(args.store, n_shards=args.shards)
    for ingest_path in args.ingest:
        ingested = store.ingest(load_database(ingest_path))
        count = sum(segment.count for segment in ingested)
        print(f"ingested {count} fingerprints from {ingest_path}")
    print(f"store: {len(store)} fingerprints in {store.n_shards} shards")
    if args.queries is None:
        return 0
    queries = _load_queries(Path(args.queries))
    threshold = args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    service = BatchIdentificationService(
        store,
        threshold=threshold,
        max_workers=args.workers,
        cluster_residuals=not args.no_cluster_residuals,
    )
    if args.profile:
        from repro.obs import SamplingProfiler

        profiler = SamplingProfiler()
        with profiler.attach("serve-batch"):
            report = service.run(queries)
        for location, samples in profiler.top(10):
            print(f"profile: {location} x{samples}")
    else:
        report = service.run(queries)
    if args.obs_dir is not None:
        _write_metrics_artifacts(Path(args.obs_dir), service.metrics)
    report_path = (
        Path(args.report)
        if args.report is not None
        else results_dir() / "serve_batch_report.json"
    )
    report_path.parent.mkdir(parents=True, exist_ok=True)
    report_path.write_text(json.dumps(report.to_json(), indent=2) + "\n")
    print(
        f"queries: {len(queries)}  matched: {report.matched_count}  "
        f"unmatched: {report.unmatched_count}"
    )
    if report.degraded:
        for entry in report.degraded_shards:
            low, high = entry.key_range
            span = f"({low if low is not None else '-inf'}, " \
                f"{high if high is not None else '+inf'}]"
            print(
                f"DEGRADED shard {entry.shard} keys {span}: {entry.reason}",
                file=sys.stderr,
            )
        print(
            "results are tagged degraded; run 'repro verify-store' / "
            "'repro repair'",
            file=sys.stderr,
        )
    if not args.quiet:
        print(service.metrics.format_stats())
    print(f"report written to {report_path}")
    return 0


def _stream(args: argparse.Namespace) -> int:
    """The stream command body."""
    import threading

    from repro.core.distance import DEFAULT_THRESHOLD
    from repro.service import (
        ShardedFingerprintStore,
        StreamingIdentificationService,
        install_signal_handlers,
    )

    store_dir = Path(args.store)
    if not (store_dir / "manifest.json").exists():
        print(f"stream: no store at {store_dir}", file=sys.stderr)
        return 2
    observations = Path(args.observations)
    if not observations.exists():
        print(f"stream: no observations at {observations}", file=sys.stderr)
        return 2
    store = ShardedFingerprintStore(store_dir)
    threshold = args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    service = StreamingIdentificationService(
        store,
        args.state_dir,
        threshold=threshold,
        batch_size=args.batch_size,
        queue_depth=args.queue_depth,
        checkpoint_every=args.checkpoint_every,
        max_workers=args.workers,
        breaker_failure_threshold=0 if args.no_breaker else args.breaker_failures,
        breaker_reset_s=args.breaker_reset_s,
        max_restarts=args.max_restarts,
    )
    stop = threading.Event()
    restore = install_signal_handlers(stop)
    try:
        report = service.run(observations, resume=args.resume, stop_event=stop)
    finally:
        restore()
    if args.obs_dir is not None:
        _write_metrics_artifacts(Path(args.obs_dir), service.metrics)
    print(
        f"stream {report.status}: {report.observations} observations "
        f"({report.start_offset}..{report.final_offset}), "
        f"matched {report.matched}, unmatched {report.unmatched}, "
        f"quarantined {report.quarantined}, "
        f"{report.batches} batches, {report.checkpoints} checkpoints, "
        f"{report.restarts} worker restarts"
    )
    for entry in report.degraded_shards:
        print(
            f"DEGRADED shard {entry.shard} "
            f"({entry.attempts} attempt(s)): {entry.reason}",
            file=sys.stderr,
        )
    open_breakers = [
        name
        for name, snap in report.breakers.items()
        if snap.get("state") != "closed"
    ]
    if open_breakers:
        print(
            "breakers not closed for shard(s): " + ", ".join(open_breakers),
            file=sys.stderr,
        )
    if report.quarantined:
        print(
            f"{report.quarantined} observation(s) quarantined; inspect with "
            f"'python -m repro quarantine ls --state-dir {args.state_dir}'",
            file=sys.stderr,
        )
    if report.fatal is not None:
        print(
            f"FATAL: worker {report.fatal['label']!r} exhausted its restart "
            f"budget ({report.fatal['error_type']}: {report.fatal['error']}); "
            f"progress up to offset {report.final_offset} is checkpointed",
            file=sys.stderr,
        )
    if not args.quiet:
        print(service.metrics.format_stats())
    if report.status == "failed":
        return 1
    if report.status == "interrupted":
        print(
            "interrupted: rerun with --resume to continue", file=sys.stderr
        )
        return 3
    return 0


def _quarantine(args: argparse.Namespace) -> int:
    """The quarantine ls/retry command body."""
    from repro.core.distance import DEFAULT_THRESHOLD
    from repro.service import (
        ShardedFingerprintStore,
        list_quarantine,
        retry_quarantine,
    )

    state_dir = Path(args.state_dir)
    if not state_dir.exists():
        print(f"quarantine: no state directory at {state_dir}", file=sys.stderr)
        return 2
    if args.quarantine_command == "ls":
        entries = list_quarantine(state_dir)
        if args.json:
            print(
                json.dumps(
                    [entry.to_json() for entry in entries],
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0
        for entry in entries:
            preview = entry.observation[:80]
            if len(entry.observation) > 80 or entry.truncated:
                preview += "..."
            print(
                f"offset {entry.offset}  [{entry.reason}] "
                f"{entry.detail}  {preview}"
            )
        print(f"{len(entries)} quarantined observation(s)")
        return 0
    store_dir = Path(args.store)
    if not (store_dir / "manifest.json").exists():
        print(f"quarantine: no store at {store_dir}", file=sys.stderr)
        return 2
    store = ShardedFingerprintStore(store_dir)
    threshold = args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    report = retry_quarantine(store, state_dir, threshold=threshold)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        return 0
    print(
        f"retried {report.retried}: matched {report.matched}, "
        f"unmatched {report.unmatched}; "
        f"{report.still_quarantined} still quarantined"
    )
    return 0


def _verify_cluster(args: argparse.Namespace) -> int:
    """The verify-store --all-shards body: fsck every replica dir."""
    from repro.service.cluster import verify_cluster
    from repro.service.placement import PLACEMENT_NAME

    cluster_dir = Path(args.all_shards)
    if not (cluster_dir / PLACEMENT_NAME).exists():
        print(
            f"verify-store: no cluster at {cluster_dir}", file=sys.stderr
        )
        return 2
    verification = verify_cluster(cluster_dir)
    if args.json:
        print(json.dumps(verification.to_json(), indent=2, sort_keys=True))
        return 0 if verification.ok else 1
    for entry in verification.replicas:
        state = "ok" if entry["ok"] else "INCONSISTENT"
        print(
            f"partition {entry['partition']:>3} @ {entry['worker']}: "
            f"{state}"
        )
        for problem in entry["problems"]:
            print(f"  problem: {problem}")
    for entry in verification.missing_replicas:
        print(
            f"partition {entry['partition']:>3} @ {entry['worker']}: "
            "MISSING replica directory"
        )
    if verification.divergent_partitions:
        print(
            "divergent partitions (replicas disagree): "
            + ", ".join(str(p) for p in verification.divergent_partitions)
        )
    if verification.journal_pending:
        print(
            "placement journal pending: an interrupted rebalance will "
            "roll forward on the next open"
        )
    status = "consistent" if verification.ok else "INCONSISTENT"
    print(
        f"cluster {cluster_dir}: {status} "
        f"(placement v{verification.placement_version}, "
        f"{len(verification.replicas)} replicas checked)"
    )
    return 0 if verification.ok else 1


def _verify_store(args: argparse.Namespace) -> int:
    """The verify-store command body (read-only)."""
    from repro.reliability import verify_store

    if (args.store is None) == (args.all_shards is None):
        print(
            "verify-store: provide exactly one of --store or "
            "--all-shards CLUSTER_DIR",
            file=sys.stderr,
        )
        return 2
    if args.all_shards is not None:
        return _verify_cluster(args)
    store_dir = Path(args.store)
    if not store_dir.exists():
        print(f"verify-store: no store at {store_dir}", file=sys.stderr)
        return 2
    verification = verify_store(store_dir)
    if args.json:
        print(json.dumps(verification.to_json(), indent=2, sort_keys=True))
    else:
        for segment in verification.segments:
            print(segment.describe())
        for problem in verification.problems():
            print(f"problem: {problem}")
        if verification.degraded_shards:
            print(
                "degraded shards (data previously lost to quarantine): "
                + ", ".join(str(s) for s in verification.degraded_shards)
            )
        if verification.ok:
            status = "consistent"
        elif verification.recoverable:
            status = "INCONSISTENT (recoverable: reopen the store or run 'repro repair')"
        else:
            status = "INCONSISTENT"
        print(
            f"store {store_dir}: {status} "
            f"({verification.total_records} records, "
            f"{verification.corrupt_records} corrupt)"
        )
    return 0 if verification.ok else 1


def _repair(args: argparse.Namespace) -> int:
    """The repair command body."""
    from repro.reliability import prune_quarantine, repair_store
    from repro.service import ShardedFingerprintStore

    if args.prune_quarantine and args.older_than is None:
        print(
            "repair: --prune-quarantine requires --older-than DAYS",
            file=sys.stderr,
        )
        return 2
    if args.older_than is not None and not args.prune_quarantine:
        print(
            "repair: --older-than only applies with --prune-quarantine",
            file=sys.stderr,
        )
        return 2
    store_dir = Path(args.store)
    if not (store_dir / "manifest.json").exists():
        print(f"repair: no store at {store_dir}", file=sys.stderr)
        return 2
    store = ShardedFingerprintStore(store_dir)
    if args.prune_quarantine and args.dry_run:
        # Preview-only: report the would-be pruning, skip the repair
        # pass so nothing on disk changes.
        prune = prune_quarantine(store, args.older_than, dry_run=True)
        if args.json:
            print(json.dumps(prune.to_json(), indent=2, sort_keys=True))
        else:
            for filename in prune.pruned_files:
                print(f"would prune {filename}")
            print(
                f"quarantine: {prune.pruned_entries} of {prune.examined} "
                f"entries prunable, {prune.bytes_freed} bytes (dry run)"
            )
        return 0
    report = repair_store(store)
    prune = (
        prune_quarantine(store, args.older_than)
        if args.prune_quarantine
        else None
    )
    if args.json:
        payload = report.to_json()
        if prune is not None:
            payload["prune"] = prune.to_json()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if report.recovery.action != "none":
        print(
            f"recovery: {report.recovery.action} ({report.recovery.detail})"
        )
    for orphan in report.recovery.orphans_removed:
        print(f"removed orphan segment: {orphan}")
    for filename, reason in report.quarantined:
        print(f"quarantined {filename}: {reason}")
    if report.records_salvaged or report.records_lost:
        print(
            f"salvaged {report.records_salvaged} records, "
            f"lost {report.records_lost}"
        )
    if prune is not None:
        for filename in prune.pruned_files:
            print(f"pruned {filename}")
        print(
            f"quarantine: pruned {prune.pruned_entries} of "
            f"{prune.examined} entries, {prune.bytes_freed} bytes freed"
        )
    if report.clean:
        print(f"store {store_dir}: clean, nothing to repair")
    else:
        reliability = store.metrics.counters_with_prefix("reliability.")
        for name in sorted(reliability):
            print(f"{name}: {reliability[name]}")
        print(f"store {store_dir}: repaired")
    return 0


def _compact(args: argparse.Namespace) -> int:
    """The compact command body (manual compaction trigger)."""
    from repro.reliability import CompactionPolicy, Compactor
    from repro.service import ShardedFingerprintStore

    store_dir = Path(args.store)
    if not (store_dir / "manifest.json").exists():
        print(f"compact: no store at {store_dir}", file=sys.stderr)
        return 2
    policy_kwargs: Dict[str, object] = {}
    if args.small_records is not None:
        policy_kwargs["small_segment_records"] = args.small_records
    policy = CompactionPolicy(**policy_kwargs)
    store = ShardedFingerprintStore(store_dir)
    compactor = Compactor(store, policy=policy)
    if args.dry_run:
        plan = compactor.plan()
        if args.json:
            print(json.dumps(plan.to_json(), indent=2, sort_keys=True))
        else:
            for merge in plan.merges:
                sources = ", ".join(
                    record.filename for record in merge.sources
                )
                print(f"shard {merge.shard} [{merge.reason}]: {sources}")
            print(
                f"plan: {len(plan)} merge(s); nothing executed (--dry-run)"
            )
        return 0
    report = compactor.compact_all(max_merges=args.max_merges)
    if args.obs_dir is not None:
        _write_metrics_artifacts(Path(args.obs_dir), store.metrics)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        return 0
    for merge in report.merges:
        output = merge.output or "(all records dropped)"
        print(
            f"shard {merge.shard} [{merge.reason}]: "
            f"{len(merge.sources)} segment(s) -> {output}; "
            f"kept {merge.records_kept}, dropped {merge.records_dropped}, "
            f"reclaimed {merge.bytes_reclaimed} bytes"
        )
    print(
        f"store {store_dir}: {len(report.merges)} merge(s), "
        f"{report.bytes_reclaimed} bytes reclaimed, "
        f"{report.records_dropped} records dropped"
    )
    return 0


def _cluster_serve(args: argparse.Namespace) -> int:
    """The cluster serve body: build and/or answer through the cluster."""
    import threading

    from repro.core.distance import DEFAULT_THRESHOLD
    from repro.core.serialize import load_database
    from repro.service import (
        ClusterConfig,
        ClusterService,
        StreamingIdentificationService,
        build_cluster,
        install_signal_handlers,
    )
    from repro.service.placement import PLACEMENT_NAME

    root = Path(args.cluster)
    exists = (root / PLACEMENT_NAME).exists()
    if args.ingest:
        if exists:
            print(
                f"cluster serve: cluster at {root} already exists; "
                "--ingest only builds new clusters",
                file=sys.stderr,
            )
            return 2
        entries: List = []
        for ingest_path in args.ingest:
            database = load_database(ingest_path)
            added = list(database.items())
            entries.extend(added)
            print(f"enrolling {len(added)} fingerprints from {ingest_path}")
        placement = build_cluster(
            root,
            entries,
            n_workers=args.workers,
            n_partitions=args.partitions,
            replication=args.replication,
        )
        print(
            f"cluster built: {placement.n_partitions} partitions x "
            f"{placement.replication} replicas on "
            f"{len(placement.workers)} workers"
        )
    elif not exists:
        print(
            f"cluster serve: no cluster at {root} "
            "(use --ingest to build one)",
            file=sys.stderr,
        )
        return 2
    if args.queries is None and args.observations is None:
        return 0
    if args.queries is not None and args.observations is not None:
        print(
            "cluster serve: --queries (batch) and --observations "
            "(streaming) are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.observations is not None and args.state_dir is None:
        print(
            "cluster serve: --observations requires --state-dir",
            file=sys.stderr,
        )
        return 2
    threshold = (
        args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    )
    config = ClusterConfig(
        threshold=threshold,
        hedge_delay_s=(
            None if args.hedge_delay_s < 0 else args.hedge_delay_s
        ),
        jitter_seed=args.jitter_seed,
    )
    if args.observations is not None:
        observations = Path(args.observations)
        if not observations.exists():
            print(
                f"cluster serve: no observations at {observations}",
                file=sys.stderr,
            )
            return 2
    service = ClusterService(root, config)
    try:
        with service:
            if args.queries is not None:
                # Batch mode: one identify over the whole query file.
                queries = _load_queries(Path(args.queries))
                report = service.identify(queries)
                report_path = (
                    Path(args.report)
                    if args.report is not None
                    else results_dir() / "cluster_serve_report.json"
                )
                report_path.parent.mkdir(parents=True, exist_ok=True)
                report_path.write_text(
                    json.dumps(report.to_json(), indent=2) + "\n"
                )
                print(
                    f"queries: {len(queries)}  "
                    f"matched: {report.matched_count}  "
                    f"unmatched: {report.unmatched_count}"
                )
                _print_cluster_degraded(report.degraded_shards)
                if not args.quiet:
                    print(service.metrics.format_stats())
                print(f"report written to {report_path}")
                return 1 if report.degraded else 0
            # Streaming mode: the stream pipeline's admission /
            # quarantine / checkpoint machinery over the cluster engine.
            stream_service = StreamingIdentificationService(
                None,
                args.state_dir,
                threshold=threshold,
                batch_size=args.batch_size,
                checkpoint_every=args.checkpoint_every,
                engine=service,
                metrics=service.metrics,
            )
            stop = threading.Event()
            restore = install_signal_handlers(stop)
            try:
                stream_report = stream_service.run(
                    observations, resume=args.resume, stop_event=stop
                )
            finally:
                restore()
            print(
                f"cluster stream {stream_report.status}: "
                f"{stream_report.observations} observations "
                f"({stream_report.start_offset}.."
                f"{stream_report.final_offset}), "
                f"matched {stream_report.matched}, "
                f"unmatched {stream_report.unmatched}, "
                f"quarantined {stream_report.quarantined}, "
                f"{stream_report.batches} batches, "
                f"{stream_report.checkpoints} checkpoints"
            )
            _print_cluster_degraded(stream_report.degraded_shards)
            if not args.quiet:
                print(service.metrics.format_stats())
            if stream_report.status == "failed":
                return 1
            if stream_report.status == "interrupted":
                print(
                    "interrupted: rerun with --resume to continue",
                    file=sys.stderr,
                )
                return 3
            return 0
    finally:
        if args.obs_dir is not None:
            _write_metrics_artifacts(Path(args.obs_dir), service.metrics)


def _print_cluster_degraded(entries: List) -> None:
    """Echo degraded-partition tags to stderr (both serve modes)."""
    for entry in entries:
        print(
            f"DEGRADED partition {entry.shard} "
            f"({entry.attempts} attempt(s)): {entry.reason}",
            file=sys.stderr,
        )


def _cluster_status(args: argparse.Namespace) -> int:
    """The cluster status body (offline inspection)."""
    from repro.service import ClusterService
    from repro.service.placement import PLACEMENT_NAME

    root = Path(args.cluster)
    if not (root / PLACEMENT_NAME).exists():
        print(f"cluster status: no cluster at {root}", file=sys.stderr)
        return 2
    service = ClusterService(root)
    try:
        status = service.status()
    finally:
        service.stop()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    placement = status["placement"]
    print(
        f"cluster {root}: placement v{placement['version']}, "
        f"{placement['n_partitions']} partitions x "
        f"{placement['replication']} replicas on "
        f"{len(placement['workers'])} workers"
    )
    for worker_id in sorted(status["workers"]):
        info = status["workers"][worker_id]
        state = "alive" if info["alive"] else "down"
        parts = ", ".join(str(p) for p in info["partitions"])
        print(
            f"  {worker_id}: {state} (restarts {info['restarts']}) "
            f"partitions [{parts}]"
        )
    if status["journal_pending"]:
        print("  placement journal pending (interrupted rebalance)")
    return 0


def _cluster_rebalance(args: argparse.Namespace) -> int:
    """The cluster rebalance body (journaled placement change)."""
    from repro.service import ClusterService
    from repro.service.placement import PLACEMENT_NAME

    root = Path(args.cluster)
    if not (root / PLACEMENT_NAME).exists():
        print(f"cluster rebalance: no cluster at {root}", file=sys.stderr)
        return 2
    if not args.remove and not args.add:
        print(
            "cluster rebalance: nothing to do (use --remove and/or --add)",
            file=sys.stderr,
        )
        return 2
    service = ClusterService(root)
    try:
        placement = service.rebalance(remove=args.remove, add=args.add)
        moved = service.metrics.counters_with_prefix("cluster.").get(
            "cluster.partitions_moved", 0
        )
    finally:
        service.stop()
    if args.json:
        print(json.dumps(placement.to_payload(), indent=2, sort_keys=True))
        return 0
    print(
        f"placement v{placement.version}: "
        f"{placement.n_partitions} partitions x "
        f"{placement.replication} replicas on "
        f"{len(placement.workers)} workers "
        f"({moved} replica(s) copied)"
    )
    return 0


def _cluster(args: argparse.Namespace) -> int:
    """The cluster command body: dispatch serve/status/rebalance."""
    body = {
        "serve": _cluster_serve,
        "status": _cluster_status,
        "rebalance": _cluster_rebalance,
    }[args.cluster_command]
    return body(args)


def _run_one(experiment_id: str, quiet: bool) -> None:
    started = time.perf_counter()
    report = run_experiment(experiment_id)
    elapsed = time.perf_counter() - started
    save_experiment_report(report, echo=not quiet)
    print(f"[{report.experiment_id}] {report.title}  ({elapsed:.1f}s)")


def _append_ledger(
    command: str,
    argv: List[str],
    args: argparse.Namespace,
    exit_code: int,
    duration_s: float,
    metrics_path: Optional[Path] = None,
    trace_path: Optional[Path] = None,
) -> None:
    """Best-effort run-ledger append (never fails the run it records)."""
    from repro.obs import LEDGER_NAME, RunLedger

    try:
        RunLedger(results_dir() / LEDGER_NAME).record(
            command=command,
            argv=argv,
            config=dict(vars(args)),
            exit_code=exit_code,
            duration_s=duration_s,
            metrics_path=metrics_path,
            trace_path=trace_path,
        )
    except OSError:
        pass


def _run_service_command(
    args: argparse.Namespace, argv: List[str]
) -> int:
    """Dispatch one service command with tracing + ledger around it."""
    from repro.obs import Tracer, set_tracer

    body = {
        "serve-batch": _serve_batch,
        "stream": _stream,
        "quarantine": _quarantine,
        "verify-store": _verify_store,
        "repair": _repair,
        "compact": _compact,
        "addrmap": run_addrmap,
        "cluster": _cluster,
        "fleet": run_fleet,
    }[args.command]
    obs_dir = getattr(args, "obs_dir", None)
    tracer: Optional[Tracer] = None
    previous: Optional[Tracer] = None
    if obs_dir is not None:
        tracer = Tracer()
        previous = set_tracer(tracer)
    started = time.perf_counter()
    try:
        try:
            exit_code = body(args)
        except (ValueError, OSError) as error:
            # Bad store directory, duplicate ingest keys, malformed or
            # missing query file, a corrupt .pcfp stream
            # (CorruptStreamError renders with byte offset and record
            # index) — user input problems, not crashes.
            print(f"{args.command}: {error}", file=sys.stderr)
            exit_code = 2
    finally:
        if tracer is not None:
            set_tracer(previous)
    duration_s = time.perf_counter() - started
    trace_path: Optional[Path] = None
    metrics_path: Optional[Path] = None
    if tracer is not None and obs_dir is not None:
        obs_path = Path(obs_dir)
        obs_path.mkdir(parents=True, exist_ok=True)
        trace_path = obs_path / "trace.jsonl"
        tracer.export_jsonl(trace_path)
        tracer.export_chrome(obs_path / "trace.chrome.json")
        if (obs_path / "metrics.json").exists():
            metrics_path = obs_path / "metrics.json"
        print(f"observability artifacts written to {obs_path}")
    _append_ledger(
        args.command,
        argv,
        args,
        exit_code,
        duration_s,
        metrics_path=metrics_path,
        trace_path=trace_path,
    )
    return exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    raw_argv = list(argv) if argv is not None else sys.argv[1:]
    args = _build_parser().parse_args(argv)
    if args.command == "lint":
        return run_lint(args)
    if args.command == "obs":
        if args.results_dir is not None:
            set_results_dir(args.results_dir)
        return run_obs(args)
    if args.results_dir is not None:
        set_results_dir(args.results_dir)
    if args.command in (
        "serve-batch",
        "stream",
        "quarantine",
        "verify-store",
        "repair",
        "compact",
        "addrmap",
        "cluster",
        "fleet",
    ):
        return _run_service_command(args, raw_argv)
    if args.command == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0
    if args.command == "summary":
        records = load_saved_metrics()
        if not records:
            print("no saved reports; run 'python -m repro run all' first")
            return 1
        for record in records:
            print(f"[{record['experiment_id']}] {record['title']}")
            for key, value in sorted(record["metrics"].items()):
                print(f"    {key}: {value:.6g}")
        return 0
    started = time.perf_counter()
    if args.experiment == "all":
        for experiment_id in experiment_ids():
            _run_one(experiment_id, args.quiet)
        _append_ledger(
            "run", raw_argv, args, 0, time.perf_counter() - started
        )
        return 0
    try:
        _run_one(args.experiment, args.quiet)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    _append_ledger("run", raw_argv, args, 0, time.perf_counter() - started)
    return 0
