"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro list                 # available experiment ids
    python -m repro run fig07            # run one experiment
    python -m repro run all              # run every experiment
    python -m repro run fig13 --quiet    # save the report, print summary

Reports are written to ``benchmarks/results/`` (override with the
``REPRO_RESULTS_DIR`` environment variable) and echoed to stdout.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.analysis.reporting import load_saved_metrics, save_experiment_report
from repro.experiments import experiment_ids, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce 'Probable Cause: The Deanonymizing Effects "
        "of Approximate DRAM' (ISCA 2015): regenerate any of the paper's "
        "tables and figures on the simulated platform.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiment ids")

    subparsers.add_parser(
        "summary",
        help="collate headline metrics from previously saved reports",
    )

    run_parser = subparsers.add_parser(
        "run", help="run one experiment (or 'all')"
    )
    run_parser.add_argument(
        "experiment",
        help="experiment id from 'list', or 'all'",
    )
    run_parser.add_argument(
        "--quiet",
        action="store_true",
        help="save reports without echoing their full text",
    )
    return parser


def _run_one(experiment_id: str, quiet: bool) -> None:
    started = time.perf_counter()
    report = run_experiment(experiment_id)
    elapsed = time.perf_counter() - started
    save_experiment_report(report, echo=not quiet)
    print(f"[{report.experiment_id}] {report.title}  ({elapsed:.1f}s)")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0
    if args.command == "summary":
        records = load_saved_metrics()
        if not records:
            print("no saved reports; run 'python -m repro run all' first")
            return 1
        for record in records:
            print(f"[{record['experiment_id']}] {record['title']}")
            for key, value in sorted(record["metrics"].items()):
                print(f"    {key}: {value:.6g}")
        return 0
    if args.experiment == "all":
        for experiment_id in experiment_ids():
            _run_one(experiment_id, args.quiet)
        return 0
    try:
        _run_one(args.experiment, args.quiet)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    return 0
