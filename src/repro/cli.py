"""Command-line interface: experiments plus the identification service.

Usage::

    python -m repro list                 # available experiment ids
    python -m repro run fig07            # run one experiment
    python -m repro run all              # run every experiment
    python -m repro run fig13 --quiet    # save the report, print summary
    python -m repro serve-batch --store DB --ingest fp.pcfp \\
        --queries queries.jsonl          # batch identification service
    python -m repro verify-store --store DB   # read-only integrity check
    python -m repro repair --store DB         # recover + quarantine damage

Reports are written to ``benchmarks/results/`` (override with the
``REPRO_RESULTS_DIR`` environment variable, or with higher precedence
the ``--results-dir`` flag) and echoed to stdout.

``verify-store`` exits 0 on a consistent store and 1 when it found
problems (a pending crashed ingest, checksum failures, manifest
inconsistencies); ``repair`` resolves them — rolling the ingest
journal forward or back, salvaging readable records out of corrupt
segments and quarantining the rest.  Malformed input (a corrupt
``.pcfp`` file, a missing store) exits 2 with a one-line error.

The ``serve-batch`` query file is JSON Lines: each line holds ``id``,
``nbits`` and either ``errors`` (set-bit indices of a prebuilt error
string) or ``approx`` + ``exact`` (set-bit indices of the output and
its exact value, marked vectorized by the engine).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.analysis.reporting import (
    load_saved_metrics,
    results_dir,
    save_experiment_report,
    set_results_dir,
)
from repro.experiments import experiment_ids, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce 'Probable Cause: The Deanonymizing Effects "
        "of Approximate DRAM' (ISCA 2015): regenerate any of the paper's "
        "tables and figures on the simulated platform, or run the batch "
        "identification service.",
    )
    parser.add_argument(
        "--results-dir",
        default=None,
        help="directory for reports (overrides REPRO_RESULTS_DIR)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiment ids")

    subparsers.add_parser(
        "summary",
        help="collate headline metrics from previously saved reports",
    )

    run_parser = subparsers.add_parser(
        "run", help="run one experiment (or 'all')"
    )
    run_parser.add_argument(
        "experiment",
        help="experiment id from 'list', or 'all'",
    )
    run_parser.add_argument(
        "--quiet",
        action="store_true",
        help="save reports without echoing their full text",
    )

    serve_parser = subparsers.add_parser(
        "serve-batch",
        help="ingest fingerprints and answer a batch identification run",
    )
    serve_parser.add_argument(
        "--store",
        required=True,
        help="sharded fingerprint store directory (created if missing)",
    )
    serve_parser.add_argument(
        "--ingest",
        action="append",
        default=[],
        metavar="FILE.pcfp",
        help="fingerprint database file(s) to append to the store",
    )
    serve_parser.add_argument(
        "--shards",
        type=int,
        default=8,
        help="shard count when creating a new store (default 8)",
    )
    serve_parser.add_argument(
        "--queries",
        default=None,
        metavar="FILE.jsonl",
        help="JSON Lines query file to identify",
    )
    serve_parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="Algorithm 2 match threshold (default: paper's 0.1)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker pool width for the shard fan-out",
    )
    serve_parser.add_argument(
        "--report",
        default=None,
        metavar="FILE.json",
        help="where to write the JSON report "
        "(default <results-dir>/serve_batch_report.json)",
    )
    serve_parser.add_argument(
        "--no-cluster-residuals",
        action="store_true",
        help="do not route unmatched queries to the online clusterer",
    )
    serve_parser.add_argument(
        "--quiet",
        action="store_true",
        help="only print the summary line, not the metrics block",
    )

    verify_parser = subparsers.add_parser(
        "verify-store",
        help="read-only integrity check of a fingerprint store",
    )
    verify_parser.add_argument(
        "--store",
        required=True,
        help="sharded fingerprint store directory to inspect",
    )
    verify_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full verification report as JSON on stdout",
    )

    repair_parser = subparsers.add_parser(
        "repair",
        help="recover a crashed ingest and quarantine corrupt segments",
    )
    repair_parser.add_argument(
        "--store",
        required=True,
        help="sharded fingerprint store directory to repair",
    )
    repair_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full repair report as JSON on stdout",
    )
    return parser


def _load_queries(path: Path) -> List:
    """Parse a JSON Lines query file into BatchQuery objects."""
    from repro.bits import BitVector
    from repro.service import BatchQuery

    queries = []
    with open(path, "r", encoding="utf-8") as stream:
        for line_number, line in enumerate(stream):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            query_id = str(record.get("id", f"query-{line_number}"))
            nbits = int(record["nbits"])
            if "errors" in record:
                queries.append(
                    BatchQuery.from_errors(
                        query_id,
                        BitVector.from_indices(nbits, record["errors"]),
                    )
                )
            elif "approx" in record and "exact" in record:
                queries.append(
                    BatchQuery.from_pair(
                        query_id,
                        BitVector.from_indices(nbits, record["approx"]),
                        BitVector.from_indices(nbits, record["exact"]),
                    )
                )
            else:
                raise ValueError(
                    f"{path}:{line_number + 1}: query needs 'errors' "
                    "or 'approx'+'exact'"
                )
    return queries


def _serve_batch(args: argparse.Namespace) -> int:
    """The serve-batch command body."""
    from repro.core.distance import DEFAULT_THRESHOLD
    from repro.core.serialize import load_database
    from repro.service import BatchIdentificationService, ShardedFingerprintStore

    store = ShardedFingerprintStore(args.store, n_shards=args.shards)
    for ingest_path in args.ingest:
        ingested = store.ingest(load_database(ingest_path))
        count = sum(segment.count for segment in ingested)
        print(f"ingested {count} fingerprints from {ingest_path}")
    print(f"store: {len(store)} fingerprints in {store.n_shards} shards")
    if args.queries is None:
        return 0
    queries = _load_queries(Path(args.queries))
    threshold = args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    service = BatchIdentificationService(
        store,
        threshold=threshold,
        max_workers=args.workers,
        cluster_residuals=not args.no_cluster_residuals,
    )
    report = service.run(queries)
    report_path = (
        Path(args.report)
        if args.report is not None
        else results_dir() / "serve_batch_report.json"
    )
    report_path.parent.mkdir(parents=True, exist_ok=True)
    report_path.write_text(json.dumps(report.to_json(), indent=2) + "\n")
    print(
        f"queries: {len(queries)}  matched: {report.matched_count}  "
        f"unmatched: {report.unmatched_count}"
    )
    if report.degraded:
        for entry in report.degraded_shards:
            low, high = entry.key_range
            span = f"({low if low is not None else '-inf'}, " \
                f"{high if high is not None else '+inf'}]"
            print(
                f"DEGRADED shard {entry.shard} keys {span}: {entry.reason}",
                file=sys.stderr,
            )
        print(
            "results are tagged degraded; run 'repro verify-store' / "
            "'repro repair'",
            file=sys.stderr,
        )
    if not args.quiet:
        print(service.metrics.format_stats())
    print(f"report written to {report_path}")
    return 0


def _verify_store(args: argparse.Namespace) -> int:
    """The verify-store command body (read-only)."""
    from repro.reliability import verify_store

    store_dir = Path(args.store)
    if not store_dir.exists():
        print(f"verify-store: no store at {store_dir}", file=sys.stderr)
        return 2
    verification = verify_store(store_dir)
    if args.json:
        print(json.dumps(verification.to_json(), indent=2, sort_keys=True))
    else:
        for segment in verification.segments:
            print(segment.describe())
        for problem in verification.problems():
            print(f"problem: {problem}")
        if verification.degraded_shards:
            print(
                "degraded shards (data previously lost to quarantine): "
                + ", ".join(str(s) for s in verification.degraded_shards)
            )
        status = "consistent" if verification.ok else "INCONSISTENT"
        print(
            f"store {store_dir}: {status} "
            f"({verification.total_records} records, "
            f"{verification.corrupt_records} corrupt)"
        )
    return 0 if verification.ok else 1


def _repair(args: argparse.Namespace) -> int:
    """The repair command body."""
    from repro.reliability import repair_store
    from repro.service import ShardedFingerprintStore

    store_dir = Path(args.store)
    if not (store_dir / "manifest.json").exists():
        print(f"repair: no store at {store_dir}", file=sys.stderr)
        return 2
    store = ShardedFingerprintStore(store_dir)
    report = repair_store(store)
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
        return 0
    if report.recovery.action != "none":
        print(
            f"recovery: {report.recovery.action} ({report.recovery.detail})"
        )
    for orphan in report.recovery.orphans_removed:
        print(f"removed orphan segment: {orphan}")
    for filename, reason in report.quarantined:
        print(f"quarantined {filename}: {reason}")
    if report.records_salvaged or report.records_lost:
        print(
            f"salvaged {report.records_salvaged} records, "
            f"lost {report.records_lost}"
        )
    if report.clean:
        print(f"store {store_dir}: clean, nothing to repair")
    else:
        reliability = store.metrics.counters_with_prefix("reliability.")
        for name in sorted(reliability):
            print(f"{name}: {reliability[name]}")
        print(f"store {store_dir}: repaired")
    return 0


def _run_one(experiment_id: str, quiet: bool) -> None:
    started = time.perf_counter()
    report = run_experiment(experiment_id)
    elapsed = time.perf_counter() - started
    save_experiment_report(report, echo=not quiet)
    print(f"[{report.experiment_id}] {report.title}  ({elapsed:.1f}s)")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.results_dir is not None:
        set_results_dir(args.results_dir)
    if args.command in ("serve-batch", "verify-store", "repair"):
        body = {
            "serve-batch": _serve_batch,
            "verify-store": _verify_store,
            "repair": _repair,
        }[args.command]
        try:
            return body(args)
        except (ValueError, OSError) as error:
            # Bad store directory, duplicate ingest keys, malformed or
            # missing query file, a corrupt .pcfp stream
            # (CorruptStreamError renders with byte offset and record
            # index) — user input problems, not crashes.
            print(f"{args.command}: {error}", file=sys.stderr)
            return 2
    if args.command == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0
    if args.command == "summary":
        records = load_saved_metrics()
        if not records:
            print("no saved reports; run 'python -m repro run all' first")
            return 1
        for record in records:
            print(f"[{record['experiment_id']}] {record['title']}")
            for key, value in sorted(record["metrics"].items()):
                print(f"    {key}: {value:.6g}")
        return 0
    if args.experiment == "all":
        for experiment_id in experiment_ids():
            _run_one(experiment_id, args.quiet)
        return 0
    try:
        _run_one(args.experiment, args.quiet)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    return 0
