"""§8.2.1 defense — data segregation.

Split memory into an exact region (refreshed at the full JEDEC rate)
and an approximate region, and steer user-flagged *sensitive* data to
the exact region.  Sensitive outputs then carry no decay errors and
cannot be fingerprinted — but the paper lists three structural
weaknesses, each of which this module makes measurable:

1. it relies on the user to flag sensitive data (`miss_rate` models
   mis-flagging);
2. no backward/forward secrecy — outputs that ever went through the
   approximate region stay attributable;
3. it sacrifices resources — the exact region's refresh energy saving
   is forfeited (`energy_penalty_fraction`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.bits import BitVector


@dataclass(frozen=True)
class SegregationPolicy:
    """Configuration of a segregated approximate memory.

    Parameters
    ----------
    exact_fraction:
        Fraction of physical memory reserved for the exact region.
    flagging_miss_rate:
        Probability that a genuinely sensitive output is *not* flagged
        by the user and lands in approximate memory anyway (weakness 1).
    """

    exact_fraction: float
    flagging_miss_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.exact_fraction <= 1.0:
            raise ValueError("exact_fraction must be in [0, 1]")
        if not 0.0 <= self.flagging_miss_rate <= 1.0:
            raise ValueError("flagging_miss_rate must be in [0, 1]")

    @property
    def energy_penalty_fraction(self) -> float:
        """Fraction of the approximate-DRAM energy saving forfeited.

        Refresh energy scales with the refreshed fraction of memory, so
        reserving ``exact_fraction`` of it at full refresh gives back
        that share of the saving (weakness 3).
        """
        return self.exact_fraction


@dataclass(frozen=True)
class SegregatedStoreResult:
    """Outcome of storing one output under segregation."""

    output: BitVector
    went_exact: bool
    was_sensitive: bool

    @property
    def leaked(self) -> bool:
        """True when a sensitive output still traversed approximate DRAM."""
        return self.was_sensitive and not self.went_exact


class SegregatedMemory:
    """Approximate memory with an exact region for flagged data."""

    def __init__(
        self,
        policy: SegregationPolicy,
        approximate_store,
        rng: np.random.Generator,
    ):
        """
        Parameters
        ----------
        policy:
            Region split and user-behaviour model.
        approximate_store:
            Callable ``BitVector -> BitVector`` sending data through
            approximate DRAM (e.g. a bound chip decay trial).
        rng:
            Randomness for the flagging model.
        """
        self._policy = policy
        self._approximate_store = approximate_store
        self._rng = rng
        self._results: List[SegregatedStoreResult] = []

    @property
    def policy(self) -> SegregationPolicy:
        """Active segregation policy."""
        return self._policy

    @property
    def history(self) -> Sequence[SegregatedStoreResult]:
        """All stores, in order."""
        return tuple(self._results)

    def store(self, data: BitVector, sensitive: bool) -> SegregatedStoreResult:
        """Store one output, routing by sensitivity and user accuracy.

        Exact-region stores return the data unchanged (full refresh);
        approximate stores run the supplied decay path.
        """
        flagged = sensitive and (
            self._rng.random() >= self._policy.flagging_miss_rate
        )
        if flagged:
            result = SegregatedStoreResult(
                output=data.copy(), went_exact=True, was_sensitive=sensitive
            )
        else:
            result = SegregatedStoreResult(
                output=self._approximate_store(data),
                went_exact=False,
                was_sensitive=sensitive,
            )
        self._results.append(result)
        return result

    def leak_rate(self) -> float:
        """Fraction of sensitive outputs that leaked to approximate DRAM."""
        sensitive = [r for r in self._results if r.was_sensitive]
        if not sensitive:
            return 0.0
        return sum(r.leaked for r in sensitive) / len(sensitive)


def evaluate_segregation(
    policy: SegregationPolicy,
    approximate_store,
    identify_fn,
    outputs: Sequence[Tuple[BitVector, bool]],
    rng: np.random.Generator,
) -> Tuple[float, float, float]:
    """Measure a segregation deployment end to end.

    Parameters
    ----------
    policy, approximate_store, rng:
        As for :class:`SegregatedMemory`.
    identify_fn:
        Callable ``BitVector -> bool`` returning True when the attacker
        successfully attributes a (post-storage) output.
    outputs:
        ``(data, sensitive)`` pairs to store and publish.

    Returns
    -------
    (sensitive_identified_rate, leak_rate, energy_penalty):
        Attack success against sensitive outputs, the user-error leak
        rate, and the forfeited energy saving.
    """
    memory = SegregatedMemory(policy, approximate_store, rng)
    identified = 0
    sensitive_count = 0
    for data, sensitive in outputs:
        result = memory.store(data, sensitive)
        if sensitive:
            sensitive_count += 1
            if identify_fn(result.output):
                identified += 1
    rate = identified / sensitive_count if sensitive_count else 0.0
    return rate, memory.leak_rate(), policy.energy_penalty_fraction
