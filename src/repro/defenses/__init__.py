"""Defenses against Probable Cause (§8.2) with evaluation hooks."""

from repro.defenses.aslr import (
    ASLRDefenseResult,
    evaluate_aslr_defense,
    policy_for_granularity,
)
from repro.defenses.ecc import (
    ECCOutcome,
    SECDEDConfig,
    SECDEDDefense,
    expected_uncorrectable_word_fraction,
)
from repro.defenses.noise import (
    NoiseDefense,
    NoiseDefenseConfig,
    sweep_noise_levels,
)
from repro.defenses.replay import (
    REASON_DIGEST_REPEAT,
    REASON_TOO_PERFECT,
    ReplayGuard,
    ReplayVerdict,
)
from repro.defenses.segregation import (
    SegregatedMemory,
    SegregatedStoreResult,
    SegregationPolicy,
    evaluate_segregation,
)

__all__ = [
    "ASLRDefenseResult",
    "evaluate_aslr_defense",
    "policy_for_granularity",
    "ECCOutcome",
    "SECDEDConfig",
    "SECDEDDefense",
    "expected_uncorrectable_word_fraction",
    "NoiseDefense",
    "NoiseDefenseConfig",
    "sweep_noise_levels",
    "REASON_DIGEST_REPEAT",
    "REASON_TOO_PERFECT",
    "ReplayGuard",
    "ReplayVerdict",
    "SegregatedMemory",
    "SegregatedStoreResult",
    "SegregationPolicy",
    "evaluate_segregation",
]
