"""SECDED ECC as a defense — an extension beyond the paper's §8.2 list.

Server DRAM already ships with single-error-correct / double-error-
detect codes (e.g. 72,64 Hamming+parity).  An obvious "future work"
defense is to keep ECC active in approximate mode: every decay error
the code corrects disappears from the published output and therefore
from the attacker's error string.

The physics cuts both ways, and this module makes that quantitative:

* at *light* approximation the per-word flip count is usually ≤1, most
  errors are corrected, and the surviving fingerprint is starved;
* at the paper's operating points a 72-bit word sees ~0.7 flips on
  average, multi-flip words are common, correction fails for them, and
  the *residual* errors are still the chip's most volatile cells — a
  thinner but equally unique fingerprint;
* the cost is the classic ECC overhead (``check_bits / word_bits``
  extra storage and its refresh energy), which directly erodes the
  energy saving approximation was buying.

The model operates at the logical level: data is grouped into words;
check bits are not stored explicitly but their decay is modeled (a
flip in a word's check bits consumes the word's correction budget just
like a data flip).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.bits import BitVector


@dataclass(frozen=True)
class SECDEDConfig:
    """Code geometry: ``word_bits`` data bits + ``check_bits`` check bits."""

    word_bits: int = 64
    check_bits: int = 8

    def __post_init__(self) -> None:
        if self.word_bits <= 0 or self.check_bits <= 0:
            raise ValueError("word and check bit counts must be positive")

    @property
    def storage_overhead(self) -> float:
        """Extra storage (and refresh energy) fraction the code costs."""
        return self.check_bits / self.word_bits


@dataclass(frozen=True)
class ECCOutcome:
    """Result of pushing one output through the ECC model."""

    corrected_output: BitVector
    residual_errors: BitVector
    words_corrected: int
    words_uncorrectable: int
    input_error_count: int

    @property
    def residual_error_count(self) -> int:
        """Errors surviving correction."""
        return self.residual_errors.popcount()

    @property
    def suppression_ratio(self) -> float:
        """Fraction of input errors removed by the code (1.0 = all)."""
        if self.input_error_count == 0:
            return 1.0
        return 1.0 - self.residual_error_count / self.input_error_count


class SECDEDDefense:
    """Applies the SECDED correction model to approximate outputs."""

    def __init__(self, config: SECDEDConfig = SECDEDConfig()):
        self._config = config

    @property
    def config(self) -> SECDEDConfig:
        """Code geometry in use."""
        return self._config

    def apply(
        self,
        approx: BitVector,
        exact: BitVector,
        rng: np.random.Generator,
    ) -> ECCOutcome:
        """Correct ``approx`` word-by-word against decay errors.

        Check-bit decay is sampled at the output's own observed bit
        error rate: each word draws a binomial number of check-bit
        flips, which count toward the word's flip budget (a data flip
        plus a check flip is a double error — detected, not corrected).
        The output length must be a whole number of words.
        """
        config = self._config
        if approx.nbits != exact.nbits:
            raise ValueError("approx and exact must cover the same region")
        if approx.nbits % config.word_bits != 0:
            raise ValueError(
                f"output of {approx.nbits} bits is not a whole number of "
                f"{config.word_bits}-bit words"
            )
        errors = (approx ^ exact).to_bool_array()
        n_words = approx.nbits // config.word_bits
        per_word = errors.reshape(n_words, config.word_bits)
        data_flips = per_word.sum(axis=1)

        error_rate = errors.mean()
        check_flips = rng.binomial(config.check_bits, error_rate, size=n_words)
        total_flips = data_flips + check_flips

        # SECDED: exactly one flip in the (data + check) word corrects;
        # anything more is at best detected — the data stays corrupted.
        correctable = total_flips == 1
        corrected_words = correctable & (data_flips == 1)

        residual = per_word.copy()
        residual[corrected_words] = False
        residual_flat = residual.reshape(-1)

        corrected_bools = approx.to_bool_array().copy()
        fixed_positions = errors & ~residual_flat
        exact_bools = exact.to_bool_array()
        corrected_bools[fixed_positions] = exact_bools[fixed_positions]

        return ECCOutcome(
            corrected_output=BitVector.from_bool_array(corrected_bools),
            residual_errors=BitVector.from_bool_array(residual_flat),
            words_corrected=int(corrected_words.sum()),
            words_uncorrectable=int(
                ((data_flips > 0) & ~corrected_words).sum()
            ),
            input_error_count=int(errors.sum()),
        )


def expected_uncorrectable_word_fraction(
    bit_error_rate: float, config: SECDEDConfig = SECDEDConfig()
) -> float:
    """Analytic fraction of words with >= 2 flips (data + check bits).

    Binomial over the full codeword; the quantity that decides whether
    ECC starves the fingerprint (low rates) or merely thins it.
    """
    if not 0.0 <= bit_error_rate <= 1.0:
        raise ValueError("bit_error_rate must be in [0, 1]")
    total_bits = config.word_bits + config.check_bits
    p0 = (1.0 - bit_error_rate) ** total_bits
    p1 = (
        total_bits
        * bit_error_rate
        * (1.0 - bit_error_rate) ** (total_bits - 1)
    )
    return 1.0 - p0 - p1
