"""Replay guard: rejecting too-perfect and repeated observations.

Counterpart of :mod:`repro.attacks.spoofing`.  Genuine probes carry
per-trial noise, so their Algorithm 3 distance to the enrolled
fingerprint sits in a band strictly above zero (Figure 7 puts
within-class decay distances around 1e-3 of the fingerprint weight for
healthy enrollments — but never *exactly* zero across the fleet's
probe sizes).  The guard exploits that and the obvious second tell:

* **too-perfect floor** — an observation whose distance to its claimed
  fingerprint falls below ``min_distance`` is flagged; the only way to
  be that close is to have started from the fingerprint itself.
* **digest history** — a byte-identical repeat of any previously
  accepted observation is flagged regardless of distance; real probes
  re-roll their noise every measurement.

Both checks are cheap (one distance already computed by the matcher,
one set lookup) and neither touches the chip, so the guard composes
with any modality.  What it cannot catch is a perturbed forgery that
re-rolls its noise per submission — that one is handled upstream by
multi-modality verification (DESIGN.md §16), because the forger only
holds the one leaked channel.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Set

from repro.bits import BitVector


@dataclass(frozen=True)
class ReplayVerdict:
    """Outcome of one replay-guard check."""

    accepted: bool
    reason: Optional[str] = None


#: Stable machine-readable rejection reasons.
REASON_TOO_PERFECT = "too-perfect"
REASON_DIGEST_REPEAT = "digest-repeat"


class ReplayGuard:
    """Stateful filter over accepted observations of one fleet.

    ``min_distance`` is the too-perfect floor.  The default (0.005)
    sits well below genuine within-class distances at fleet probe
    sizes (a few set bits of slack on a ~100-bit fingerprint) while
    catching exact and near-exact replays.
    """

    def __init__(self, min_distance: float = 0.005) -> None:
        if min_distance < 0.0:
            raise ValueError("min_distance must be >= 0")
        self._min_distance = min_distance
        self._digests: Set[bytes] = set()

    @property
    def min_distance(self) -> float:
        """The too-perfect distance floor."""
        return self._min_distance

    @property
    def observations_seen(self) -> int:
        """Distinct observations recorded in the digest history."""
        return len(self._digests)

    @staticmethod
    def _digest(probe: BitVector) -> bytes:
        return hashlib.sha256(probe.to_bytes()).digest()

    def check(self, probe: BitVector, distance: float) -> ReplayVerdict:
        """Judge one observation that matched at ``distance``.

        Accepted observations enter the digest history; rejected ones
        do not (a rejected replay must not poison the history against
        the genuine observation it copied).
        """
        digest = self._digest(probe)
        if digest in self._digests:
            return ReplayVerdict(accepted=False, reason=REASON_DIGEST_REPEAT)
        if distance < self._min_distance:
            return ReplayVerdict(accepted=False, reason=REASON_TOO_PERFECT)
        self._digests.add(digest)
        return ReplayVerdict(accepted=True)
