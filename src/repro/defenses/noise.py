"""§8.2.2 defense — noise addition.

Flip random bits in every published output so the device's true error
pattern is buried in chaff.  The paper's verdict: the accuracy/energy
trade-off worsens and "adding noise only slows the attacker down" —
because the modified Jaccard distance ignores *extra* errors, random
additions barely move within-class distance; only noise that *masks*
real error positions (which random flips rarely do at feasible rates)
or drowns the fingerprint in enough chaff to trip the threshold helps.

This module provides the defense plus the two quantities needed to
judge it: attack success versus noise level, and the quality cost paid
in additional output error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.bits import BitVector


@dataclass(frozen=True)
class NoiseDefenseConfig:
    """Noise-injection configuration.

    ``flip_rate`` is the probability that any given bit of the output
    is flipped before publication.
    """

    flip_rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.flip_rate <= 1.0:
            raise ValueError("flip_rate must be in [0, 1]")


class NoiseDefense:
    """Injects random bit flips into outputs before publication."""

    def __init__(self, config: NoiseDefenseConfig, rng: np.random.Generator):
        self._config = config
        self._rng = rng

    @property
    def config(self) -> NoiseDefenseConfig:
        """Active configuration."""
        return self._config

    def protect(self, output: BitVector) -> BitVector:
        """Return the output with defense noise applied."""
        if self._config.flip_rate <= 0.0:
            return output.copy()
        mask = BitVector.random(
            output.nbits, self._rng, density=self._config.flip_rate
        )
        return output ^ mask

    def quality_cost(self, exact: BitVector, protected: BitVector) -> float:
        """Total error rate of the published output (decay + defense).

        This is the §8.2.2 penalty: noise "further degrades the
        accuracy of the results".
        """
        return (exact ^ protected).popcount() / exact.nbits


def sweep_noise_levels(
    flip_rates: Sequence[float],
    outputs: Sequence[Tuple[BitVector, BitVector]],
    identify_fn: Callable[[BitVector, BitVector], bool],
    rng: np.random.Generator,
) -> List[Tuple[float, float, float]]:
    """Attack success and quality cost across defense noise levels.

    Parameters
    ----------
    flip_rates:
        Defense levels to evaluate.
    outputs:
        ``(approx, exact)`` pairs straight from approximate memory.
    identify_fn:
        ``(protected_output, exact) -> bool`` attacker success oracle.
    rng:
        Randomness for the injected noise.

    Returns
    -------
    List of ``(flip_rate, identification_rate, mean_total_error_rate)``.
    """
    results = []
    for flip_rate in flip_rates:
        defense = NoiseDefense(NoiseDefenseConfig(flip_rate=flip_rate), rng)
        hits = 0
        total_error = 0.0
        for approx, exact in outputs:
            protected = defense.protect(approx)
            if identify_fn(protected, exact):
                hits += 1
            total_error += defense.quality_cost(exact, protected)
        results.append(
            (flip_rate, hits / len(outputs), total_error / len(outputs))
        )
    return results
