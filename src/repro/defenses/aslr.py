"""§8.2.3 defense — page-level data scrambling (ASLR).

Randomizing physical placement at (or below) the fingerprint
granularity destroys the contiguity that stitching depends on: no two
outputs ever present a *consistent multi-page overlap*, so the
attacker's assemblies never merge and the suspected-chip count grows
without bound — at the price of page-granular memory-management
overhead.

The evaluation hook runs the same eavesdropping experiment under a
configurable placement policy and reports how (whether) the attacker's
convergence degrades, directly comparing against the undefended
contiguous baseline.  Coarser scrambling granularities
(:class:`~repro.system.memory_map.ChunkASLRPlacement`) quantify the
middle ground the paper gestures at: chunks at least as long as the
stitcher's minimum overlap leave exploitable structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.attacks.eavesdropper import (
    ConvergenceCurve,
    EavesdropperAttacker,
    run_stitching_experiment,
)
from repro.system.approx_system import ModeledApproximateMemory
from repro.system.memory_map import (
    ChunkASLRPlacement,
    ContiguousPlacement,
    PageASLRPlacement,
    PhysicalMemoryMap,
    PlacementPolicy,
)


@dataclass(frozen=True)
class ASLRDefenseResult:
    """Attacker convergence under one placement policy."""

    policy_name: str
    curve: ConvergenceCurve

    @property
    def converged(self) -> bool:
        """True if the attacker ended with fewer suspects than the peak
        (i.e. stitching made progress)."""
        return self.curve.final.suspected_chips < self.curve.peak.suspected_chips


def policy_for_granularity(granularity_pages: int) -> PlacementPolicy:
    """Placement policy scrambling at ``granularity_pages``.

    Granularity 1 is full page-level ASLR; 0 or negative is rejected;
    anything larger scrambles chunk-wise.
    """
    if granularity_pages < 1:
        raise ValueError("granularity must be at least one page")
    if granularity_pages == 1:
        return PageASLRPlacement()
    return ChunkASLRPlacement(chunk_pages=granularity_pages)


def evaluate_aslr_defense(
    total_pages: int,
    sample_pages: int,
    n_samples: int,
    rng: np.random.Generator,
    granularity_pages: Optional[int] = 1,
    chip_seed: int = 0,
    record_every: int = 1,
    attacker: Optional[EavesdropperAttacker] = None,
) -> ASLRDefenseResult:
    """Run the eavesdropping attack against a (possibly) defended victim.

    ``granularity_pages=None`` runs the undefended contiguous baseline.
    """
    if granularity_pages is None:
        policy: PlacementPolicy = ContiguousPlacement()
        name = "contiguous (undefended)"
    else:
        policy = policy_for_granularity(granularity_pages)
        name = (
            "page-level ASLR"
            if granularity_pages == 1
            else f"chunk ASLR ({granularity_pages} pages)"
        )
    memory_map = PhysicalMemoryMap(total_pages, policy=policy)
    machine = ModeledApproximateMemory(chip_seed=chip_seed, memory_map=memory_map)
    curve = run_stitching_experiment(
        machines=[machine],
        n_samples=n_samples,
        sample_pages=sample_pages,
        rng=rng,
        record_every=record_every,
        attacker=attacker,
    )
    return ASLRDefenseResult(policy_name=name, curve=curve)
