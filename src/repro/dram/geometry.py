"""DRAM chip geometry and address mapping.

A DRAM array is a grid of rows and columns; each (row, column) address
holds a word of one or more bits (the paper's KM41464A stores 64 K
4-bit words as 256 rows x 256 columns).  Two geometric facts matter to
Probable Cause (§2):

* **Refresh happens at row granularity** — a refresh is a read followed
  by a write of a whole row, so the decay clock is per row.
* **Every cell has a default value** — the logical value that an
  uncharged capacitor reads as.  All cells in a row share a default, and
  the default alternates every few rows (true-cell vs. anti-cell rows).
  A cell can only decay if it holds the *opposite* of its default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bits import BitVector


@dataclass(frozen=True)
class ChipGeometry:
    """Physical arrangement of a DRAM array.

    Parameters
    ----------
    rows, cols:
        Dimensions of the cell grid (addresses).
    bits_per_word:
        Bits stored at each (row, column) address.
    default_stripe_rows:
        Number of consecutive rows sharing a default value before it
        alternates ("the default value alternates every few rows", §2).
    """

    rows: int
    cols: int
    bits_per_word: int = 1
    default_stripe_rows: int = 2

    def __post_init__(self) -> None:
        for name in ("rows", "cols", "bits_per_word", "default_stripe_rows"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.rows % self.default_stripe_rows != 0:
            # A partial trailing stripe would give the last rows a
            # default pattern no real part exhibits and break the
            # stripe symmetry §2 describes.
            raise ValueError(
                f"default_stripe_rows={self.default_stripe_rows} must "
                f"divide rows={self.rows} (stripes may not end mid-array)"
            )

    @property
    def bits_per_row(self) -> int:
        """Total bits stored in one row (cols x bits_per_word)."""
        return self.cols * self.bits_per_word

    @property
    def total_bits(self) -> int:
        """Capacity of the array in bits."""
        return self.rows * self.bits_per_row

    @property
    def total_bytes(self) -> int:
        """Capacity in bytes (total_bits must be byte-aligned)."""
        return self.total_bits // 8

    # ------------------------------------------------------------------
    # Address mapping.  Bit index i of the linear data image maps to
    # row = i // bits_per_row; within the row, bits are column-major by
    # word: bit j of word w sits at row-offset w * bits_per_word + j.
    # ------------------------------------------------------------------

    def row_of_bit(self, bit_index: int) -> int:
        """Row containing linear bit ``bit_index``."""
        if not 0 <= bit_index < self.total_bits:
            raise IndexError(
                f"bit {bit_index} out of range for {self.total_bits}-bit array"
            )
        return bit_index // self.bits_per_row

    def rows_of_bits(self, bit_indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`row_of_bit`."""
        return np.asarray(bit_indices) // self.bits_per_row

    def bit_range_of_row(self, row: int) -> range:
        """Linear bit indices covered by ``row``."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range for {self.rows} rows")
        start = row * self.bits_per_row
        return range(start, start + self.bits_per_row)

    # ------------------------------------------------------------------
    # Default values
    # ------------------------------------------------------------------

    def row_default(self, row: int) -> bool:
        """Default logical value of every cell in ``row``.

        Rows are grouped into stripes of ``default_stripe_rows``; the
        default flips between consecutive stripes.
        """
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range for {self.rows} rows")
        return bool((row // self.default_stripe_rows) % 2)

    def default_array(self) -> np.ndarray:
        """Boolean array of every cell's default value, in linear bit order."""
        row_defaults = (np.arange(self.rows) // self.default_stripe_rows) % 2
        return np.repeat(row_defaults.astype(bool), self.bits_per_row)

    def default_pattern(self) -> BitVector:
        """The data image of a fully decayed (never refreshed) array."""
        return BitVector.from_bool_array(self.default_array())

    def charged_pattern(self) -> BitVector:
        """Worst-case data: the complement of every default value.

        Writing this charges every storage capacitor, giving every cell
        the possibility of decaying (§6: "a worst case scenario").
        """
        return BitVector.from_bool_array(~self.default_array())

    def charged_mask(self, data: BitVector) -> np.ndarray:
        """Boolean mask of cells that ``data`` leaves charged.

        A cell is charged exactly when the stored bit differs from the
        cell's default value; only charged cells can decay.
        """
        if data.nbits != self.total_bits:
            raise ValueError(
                f"data has {data.nbits} bits, array holds {self.total_bits}"
            )
        return data.to_bool_array() != self.default_array()
