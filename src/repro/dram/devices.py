"""Catalog of simulated DRAM device families.

Each :class:`DeviceSpec` bundles the geometry and statistical retention
behaviour of one device family.  Two families mirror the paper's two
hardware platforms:

* :data:`KM41464A` — the Samsung 64 K x 4 bit NMOS DRAM (32 KB) used in
  the main evaluation platform (§6).  Symmetric (unskewed) volatility
  distribution.
* :data:`MICRON_DDR2` — the Micron MT4HTF3264HY 256 MB DDR2 device from
  the FPGA platform (§8.1), whose volatility distribution the paper
  found "skewed toward higher volatility".

Absolute retention magnitudes are representative rather than measured:
the paper's experiments depend only on decay *ordering* and on ratios
between refresh intervals, both of which are shape properties of the
distribution.  The log-mean anchors typical retention to a few seconds
at 40 °C, consistent with §2 ("some cells decay in less than a tenth of
a second, the majority ... hold their value for tens of seconds").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from typing import Optional

from repro.dram.geometry import ChipGeometry
from repro.dram.retention import NoiseModel, ThermalModel, VoltageModel
from repro.dram.variation import VariationProfile
from repro.dram.vrt import VRTModel


@dataclass(frozen=True)
class DeviceSpec:
    """Complete statistical description of a DRAM device family."""

    name: str
    geometry: ChipGeometry
    variation: VariationProfile
    thermal: ThermalModel = ThermalModel()
    noise: NoiseModel = NoiseModel()
    voltage: VoltageModel = VoltageModel()
    #: Optional variable-retention-time population (None = ideal cells).
    vrt: Optional[VRTModel] = None

    @property
    def total_bits(self) -> int:
        """Capacity of one chip of this family, in bits."""
        return self.geometry.total_bits

    def with_geometry(self, geometry: ChipGeometry) -> "DeviceSpec":
        """Same device physics over a different (usually smaller) array.

        Simulating a 256 MB DDR2 chip cell-by-cell is unnecessary for
        any experiment in the paper; this returns a spec describing a
        window of the device with identical retention statistics.
        """
        return replace(self, geometry=geometry)

    def scaled(self, rows: int, cols: int) -> "DeviceSpec":
        """Convenience: :meth:`with_geometry` with just new dimensions."""
        new_geometry = replace(self.geometry, rows=rows, cols=cols)
        return self.with_geometry(new_geometry)


#: Samsung KM41464A: 64 K 4-bit words as 256 rows x 256 columns (32 KB).
KM41464A = DeviceSpec(
    name="KM41464A",
    geometry=ChipGeometry(rows=256, cols=256, bits_per_word=4),
    variation=VariationProfile(
        log_mean=1.6,       # median retention ~5 s at 40 degC
        log_sigma=0.8,
        mask_fraction=0.05,
        skew=0.0,
    ),
)

#: Micron MT4HTF3264HY DDR2, 256 MB.  Full geometry is recorded for
#: fidelity; experiments instantiate windows via :meth:`DeviceSpec.scaled`.
MICRON_DDR2 = DeviceSpec(
    name="MT4HTF3264HY",
    geometry=ChipGeometry(rows=16384, cols=16384, bits_per_word=8),
    variation=VariationProfile(
        log_mean=3.0,       # denser process retains longer at reference
        log_sigma=0.7,
        mask_fraction=0.05,
        skew=-4.0,          # volatility skewed high (retention skewed short)
    ),
    voltage=VoltageModel(nominal_v=1.8),  # DDR2 rail
)

#: Tiny device for fast unit tests: 1 KB array, same physics as KM41464A.
TEST_DEVICE = DeviceSpec(
    name="test-1kb",
    geometry=ChipGeometry(rows=32, cols=64, bits_per_word=4),
    variation=VariationProfile(log_mean=1.6, log_sigma=0.8, mask_fraction=0.05),
)


_CATALOG = {spec.name: spec for spec in (KM41464A, MICRON_DDR2, TEST_DEVICE)}


def get_device(name: str) -> DeviceSpec:
    """Look up a device family by name; raises :class:`KeyError` with
    the available names if unknown."""
    try:
        return _CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(_CATALOG)}"
        ) from None
