"""Rowhammer bit-flip-location model — the disturbance side channel.

FP-Rowhammer / Centauri (arXiv:2307.00143) fingerprint DRAM by
*which* cells flip under Rowhammer: repeatedly activating aggressor
rows disturbs physically adjacent victim rows, and the set of cells
weak enough to flip is chip-unique, highly repeatable, and largely
stable over time — usable as a device identifier even across systems
with identical populations of modules.

The model here reproduces the parts that matter to the fleet
simulation:

* Hammering aggressor rows can only flip *charged* cells in the two
  physically adjacent victim rows (row granularity matches the refresh
  and decay model of :class:`~repro.dram.chip.DRAMChip`).
* Per-cell flip susceptibility has two components: a part correlated
  with retention weakness (a leaky cell is also easier to disturb) and
  an independent chip-unique part, mixed by ``retention_weight``.
  Because susceptibility reads the chip's *current* retention, aging
  moves the correlated part — the Rowhammer fingerprint drifts slower
  than the decay fingerprint but is not immune.
* Only the most susceptible ``flip_fraction`` of cells flip, plus
  per-trial measurement noise near the threshold, so repeated hammer
  trials mostly — not exactly — agree, exactly the property that makes
  intersection-based characterization (Algorithm 1) applicable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.bits import BitVector
from repro.dram.chip import DRAMChip
from repro.dram.geometry import ChipGeometry

#: Seed-spawn key separating disturbance randomness from retention and
#: startup draws on the same chip.
_HAMMER_KEY = 0x524F57  # "ROW"


@dataclass(frozen=True)
class RowhammerModel:
    """Parameters of the disturbance-susceptibility population.

    Parameters
    ----------
    flip_fraction:
        Fraction of victim cells susceptible enough to flip in a
        noise-free hammer trial.
    retention_weight:
        Correlation between disturbance susceptibility and retention
        weakness, in [0, 1).  0 makes Rowhammer fully independent of
        decay (and of aging); 1 would make it the same channel.
    noise_sigma:
        Per-trial jitter added to susceptibility before thresholding —
        the source of trial-to-trial disagreement near the threshold.
    """

    flip_fraction: float = 0.02
    retention_weight: float = 0.35
    noise_sigma: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 < self.flip_fraction < 1.0:
            raise ValueError("flip_fraction must be in (0, 1)")
        if not 0.0 <= self.retention_weight < 1.0:
            raise ValueError("retention_weight must be in [0, 1)")
        if self.noise_sigma < 0.0:
            raise ValueError("noise_sigma must be non-negative")


#: Default model shared by every simulated family unless overridden.
DEFAULT_ROWHAMMER_MODEL = RowhammerModel()


def hammer_susceptibility(
    chip: DRAMChip, model: RowhammerModel = DEFAULT_ROWHAMMER_MODEL
) -> np.ndarray:
    """Per-cell disturbance susceptibility (higher = flips sooner).

    The retention-correlated component is the standardized *negative*
    log retention of the chip's current cells — weak-retention cells
    are also disturbance-weak — so :meth:`DRAMChip.age_retention`
    shifts it.  The independent component is manufacturing-locked by
    the chip seeds and never drifts.
    """
    log_ret = np.log(chip.retention_reference_s)
    spread = float(log_ret.std())
    if spread <= 0.0:
        retention_part = np.zeros_like(log_ret)
    else:
        retention_part = -(log_ret - float(log_ret.mean())) / spread
    unique_rng = np.random.default_rng(
        np.random.SeedSequence(
            entropy=chip.chip_seed ^ (chip.mask_seed << 16),
            spawn_key=(_HAMMER_KEY,),
        )
    )
    unique_part = unique_rng.standard_normal(log_ret.size)
    alpha = model.retention_weight
    return alpha * retention_part + float(np.sqrt(1.0 - alpha * alpha)) * (
        unique_part
    )


def victim_rows(geometry: ChipGeometry, aggressor_rows: Iterable[int]) -> List[int]:
    """Rows physically adjacent to the aggressors (excluding aggressors).

    Double-sided hammering of row ``r`` disturbs rows ``r-1`` and
    ``r+1``; rows that are themselves aggressors are being activated
    (and therefore implicitly refreshed), so they cannot flip.
    """
    aggressors = set()
    for row in aggressor_rows:
        if not 0 <= row < geometry.rows:
            raise IndexError(
                f"row {row} out of range for {geometry.rows} rows"
            )
        aggressors.add(int(row))
    victims = set()
    for row in aggressors:
        for neighbour in (row - 1, row + 1):
            if 0 <= neighbour < geometry.rows and neighbour not in aggressors:
                victims.add(neighbour)
    return sorted(victims)


def default_aggressor_rows(
    geometry: ChipGeometry, stride: int = 4
) -> List[int]:
    """Evenly spaced aggressor rows covering the array.

    A stride of 4 leaves every aggressor's neighbours free to act as
    victims while sweeping the whole array — the access pattern the
    fleet fingerprinter uses unless the scenario overrides it.
    """
    if stride < 2:
        raise ValueError("stride must be at least 2")
    return list(range(1, geometry.rows, stride))


def hammer_trial(
    chip: DRAMChip,
    aggressor_rows: Iterable[int],
    rng: np.random.Generator,
    model: RowhammerModel = DEFAULT_ROWHAMMER_MODEL,
) -> BitVector:
    """One hammer campaign; returns the bit-flip locations.

    The victim rows are assumed freshly written with the worst-case
    (all-charged) pattern, as in FP-Rowhammer's measurement procedure;
    a cell flips when its susceptibility plus per-trial noise clears
    the population's ``1 - flip_fraction`` quantile.
    """
    geometry = chip.geometry
    susceptibility = hammer_susceptibility(chip, model)
    threshold = float(
        np.quantile(susceptibility, 1.0 - model.flip_fraction)
    )
    noisy = susceptibility
    if model.noise_sigma > 0.0:
        noisy = susceptibility + rng.normal(
            0.0, model.noise_sigma, susceptibility.size
        )
    victim_mask = np.zeros(geometry.total_bits, dtype=bool)
    for row in victim_rows(geometry, aggressor_rows):
        start = row * geometry.bits_per_row
        victim_mask[start : start + geometry.bits_per_row] = True
    flips = victim_mask & (noisy > threshold)
    return BitVector.from_bool_array(flips)
