"""Command-timeline execution for the DRAM simulator.

The platform abstraction (`ExperimentPlatform`) covers the paper's
write → decay → read experiments, but studying refresh *schedules*
(staggered per-row refresh, burst refresh, missed refreshes) needs a
general command stream: a time-ordered sequence of writes, reads,
row refreshes and environment changes executed against one chip.

:class:`Timeline` provides that: commands carry absolute timestamps,
execution inserts the implied idle windows between them, and every read
returns the data image the chip would produce at that instant.  This is
the layer on which a downstream user can model, say, a DDR controller
issuing one-row-per-7.8 µs distributed refresh, or an OS suspending
refresh during self-refresh exit — without touching chip internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

from repro.bits import BitVector
from repro.dram.chip import DRAMChip


@dataclass(frozen=True)
class WriteCommand:
    """Write a full data image at time ``at_s``."""

    at_s: float
    data: BitVector


@dataclass(frozen=True)
class ReadCommand:
    """Read the full array at time ``at_s`` (restores charge)."""

    at_s: float
    tag: Optional[str] = None


@dataclass(frozen=True)
class RefreshCommand:
    """Refresh specific rows (or all rows) at time ``at_s``."""

    at_s: float
    rows: Optional[Sequence[int]] = None  # None = all rows


@dataclass(frozen=True)
class SetTemperatureCommand:
    """Change ambient temperature at time ``at_s``."""

    at_s: float
    temperature_c: float


@dataclass(frozen=True)
class SetVoltageCommand:
    """Change the supply voltage at time ``at_s``."""

    at_s: float
    supply_v: float


Command = Union[
    WriteCommand,
    ReadCommand,
    RefreshCommand,
    SetTemperatureCommand,
    SetVoltageCommand,
]


@dataclass(frozen=True)
class ReadRecord:
    """One read's outcome within a timeline run."""

    at_s: float
    tag: Optional[str]
    data: BitVector


@dataclass
class TimelineResult:
    """All reads produced by one timeline execution."""

    reads: List[ReadRecord] = field(default_factory=list)

    def by_tag(self, tag: str) -> ReadRecord:
        """The (single) read carrying ``tag``."""
        matches = [record for record in self.reads if record.tag == tag]
        if len(matches) != 1:
            raise KeyError(
                f"expected exactly one read tagged {tag!r}, found {len(matches)}"
            )
        return matches[0]


class Timeline:
    """A time-ordered command stream executable against a chip."""

    def __init__(self, commands: Iterable[Command] = ()):
        self._commands: List[Command] = list(commands)

    # ------------------------------------------------------------------
    # Construction helpers (fluent)
    # ------------------------------------------------------------------

    def write(self, at_s: float, data: BitVector) -> "Timeline":
        """Append a write."""
        self._commands.append(WriteCommand(at_s=at_s, data=data))
        return self

    def read(self, at_s: float, tag: Optional[str] = None) -> "Timeline":
        """Append a read."""
        self._commands.append(ReadCommand(at_s=at_s, tag=tag))
        return self

    def refresh(
        self, at_s: float, rows: Optional[Sequence[int]] = None
    ) -> "Timeline":
        """Append a refresh of ``rows`` (all rows when None)."""
        self._commands.append(RefreshCommand(at_s=at_s, rows=rows))
        return self

    def set_temperature(self, at_s: float, temperature_c: float) -> "Timeline":
        """Append a temperature change."""
        self._commands.append(
            SetTemperatureCommand(at_s=at_s, temperature_c=temperature_c)
        )
        return self

    def set_voltage(self, at_s: float, supply_v: float) -> "Timeline":
        """Append a supply-voltage change."""
        self._commands.append(SetVoltageCommand(at_s=at_s, supply_v=supply_v))
        return self

    def distributed_refresh(
        self,
        start_s: float,
        end_s: float,
        period_s: float,
        rows: int,
    ) -> "Timeline":
        """Append a JEDEC-style distributed refresh schedule.

        One row is refreshed every ``period_s / rows`` seconds, cycling
        through all rows so each row's interval is ``period_s`` — the
        standard staggering real controllers use.
        """
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        step = period_s / rows
        tick = start_s
        row = 0
        while tick < end_s:
            self._commands.append(RefreshCommand(at_s=tick, rows=[row]))
            row = (row + 1) % rows
            tick += step
        return self

    @property
    def commands(self) -> List[Command]:
        """Commands in insertion order (execution sorts by time)."""
        return list(self._commands)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, chip: DRAMChip) -> TimelineResult:
        """Run the command stream against ``chip``.

        Commands are ordered by timestamp (stable for ties); the gaps
        between consecutive timestamps become idle windows at whatever
        temperature/voltage is current.  Time starts at the first
        command's timestamp.
        """
        ordered = sorted(
            enumerate(self._commands), key=lambda pair: (pair[1].at_s, pair[0])
        )
        result = TimelineResult()
        if not ordered:
            return result
        clock = ordered[0][1].at_s
        for _index, command in ordered:
            if command.at_s < clock - 1e-12:
                raise ValueError("commands moved backwards in time")
            gap = max(0.0, command.at_s - clock)
            if gap > 0:
                chip.idle(gap)
            clock = command.at_s
            if isinstance(command, WriteCommand):
                chip.write(command.data)
            elif isinstance(command, ReadCommand):
                result.reads.append(
                    ReadRecord(at_s=clock, tag=command.tag, data=chip.read())
                )
            elif isinstance(command, RefreshCommand):
                if command.rows is None:
                    chip.refresh_all()
                else:
                    chip.refresh_rows(command.rows)
            elif isinstance(command, SetTemperatureCommand):
                chip.set_temperature(command.temperature_c)
            elif isinstance(command, SetVoltageCommand):
                chip.set_supply_voltage(command.supply_v)
            else:  # pragma: no cover - exhaustive over Command
                raise TypeError(f"unknown command {command!r}")
        return result
