"""Retention-time physics: temperature scaling and per-trial noise.

The decay of a DRAM cell is a charge leak: once a refresh stops topping
the capacitor up, the stored charge drains through the access
transistor until the sensed voltage crosses the detection threshold and
the cell reads as its default value.  The time this takes is the cell's
*retention time*.  Two dynamic effects sit on top of the static
per-cell retention values sampled by :mod:`repro.dram.variation`:

**Temperature.**  Leakage is thermally activated; retention shortens
roughly exponentially with temperature (Hamamoto et al., the paper's
[10]).  We use the standard rule of thumb that retention halves for
every ``halving_celsius`` degrees (default 10 °C), i.e.::

    t_ret(T) = t_ret(T_ref) * 2 ** (-(T - T_ref) / halving_celsius)

Crucially this factor is *common to all cells*, so relative decay order
is temperature-invariant — the physical basis of the paper's §7.3
finding.

**Per-trial noise.**  Retention is not perfectly deterministic:
measurement noise, variable retention time (VRT) effects and data
pattern sensitivity perturb each trial slightly.  §7.2 measures that
~98 % of failing bits repeat across 21 trials; we reproduce that with a
small multiplicative lognormal jitter applied independently per cell
per decay window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: JEDEC refresh period the paper quotes for < 85 °C operation (§2).
JEDEC_REFRESH_S = 0.064

#: Reference temperature at which static retention values are defined.
REFERENCE_TEMPERATURE_C = 40.0


@dataclass(frozen=True)
class ThermalModel:
    """Exponential temperature acceleration of DRAM decay.

    Parameters
    ----------
    reference_c:
        Temperature at which the per-cell retention samples are defined.
    halving_celsius:
        Temperature increase that halves retention time.
    """

    reference_c: float = REFERENCE_TEMPERATURE_C
    halving_celsius: float = 10.0

    def __post_init__(self) -> None:
        if self.halving_celsius <= 0:
            raise ValueError("halving_celsius must be positive")

    def retention_scale(self, temperature_c: float) -> float:
        """Multiplier on retention time at ``temperature_c``.

        1.0 at the reference temperature, 0.5 one halving-step hotter,
        2.0 one step colder.
        """
        exponent = -(temperature_c - self.reference_c) / self.halving_celsius
        return float(2.0 ** exponent)

    def scale_retention(
        self, retention_s: np.ndarray, temperature_c: float
    ) -> np.ndarray:
        """Per-cell retention times at ``temperature_c``."""
        return retention_s * self.retention_scale(temperature_c)


@dataclass(frozen=True)
class VoltageModel:
    """Supply-voltage dependence of retention — the *other* approximation
    knob (§1: "lowering the input voltage [3] or by decreasing the
    refresh rate").

    Stored charge scales with the supply voltage and the sensing margin
    shrinks with it, so retention falls super-linearly as VDD drops.
    We model ``t_ret(V) = t_ret(V_nom) * (V / V_nom) ** gamma`` with a
    representative ``gamma`` of 2 (charge x margin).  Like temperature,
    the factor is common to all cells, so decay *ordering* — and hence
    the fingerprint — is voltage-invariant.
    """

    nominal_v: float = 5.0
    gamma: float = 2.0
    min_v: float = 0.1

    def __post_init__(self) -> None:
        if self.nominal_v <= 0:
            raise ValueError("nominal_v must be positive")
        if self.gamma <= 0:
            raise ValueError("gamma must be positive")

    def retention_scale(self, supply_v: float) -> float:
        """Multiplier on retention time at ``supply_v``."""
        if supply_v < self.min_v:
            raise ValueError(
                f"supply voltage {supply_v} below operating floor {self.min_v}"
            )
        return float((supply_v / self.nominal_v) ** self.gamma)


@dataclass(frozen=True)
class NoiseModel:
    """Per-trial multiplicative jitter on effective retention.

    ``log_sigma`` is the standard deviation of the natural-log jitter;
    each decay window draws fresh jitter for every cell.  The default is
    calibrated (see ``tests/dram/test_calibration.py``) so that at the
    paper's 1 % error level roughly 98 % of failing bits repeat across
    21 trials, matching §7.2.
    """

    log_sigma: float = 0.0018

    def __post_init__(self) -> None:
        if self.log_sigma < 0:
            raise ValueError("log_sigma must be non-negative")

    def jitter(self, n_cells: int, rng: np.random.Generator) -> np.ndarray:
        """Multiplicative jitter factors for one decay window."""
        if self.log_sigma <= 0.0:
            return np.ones(n_cells)
        return np.exp(rng.normal(0.0, self.log_sigma, size=n_cells))


def decayed_mask(
    retention_s: np.ndarray,
    elapsed_s: float,
    temperature_c: float,
    thermal: ThermalModel,
    noise: NoiseModel = NoiseModel(log_sigma=0.0),
    rng: np.random.Generator = None,
) -> np.ndarray:
    """Boolean mask of cells whose charge is lost after ``elapsed_s``.

    A *charged* cell decays when the elapsed unrefreshed time exceeds
    its (temperature-scaled, noise-jittered) retention time.  The caller
    is responsible for intersecting this with the charged-cell mask —
    cells already at their default value have nothing to lose.
    """
    if elapsed_s < 0:
        raise ValueError("elapsed_s must be non-negative")
    effective = thermal.scale_retention(retention_s, temperature_c)
    if noise.log_sigma <= 0.0:
        return effective < elapsed_s
    if rng is None:
        raise ValueError("rng is required when noise is enabled")
    # Jitter can only flip cells whose retention sits within a few
    # noise sigmas of the decay window; everything else is decided
    # deterministically.  Drawing jitter for the borderline band alone
    # (typically a few percent of cells) keeps large-array trials fast
    # while remaining statistically identical to full-array jitter.
    mask = effective < elapsed_s
    if elapsed_s <= 0.0:
        return mask
    band = float(np.exp(6.0 * noise.log_sigma))
    borderline = (effective > elapsed_s / band) & (effective < elapsed_s * band)
    count = int(borderline.sum())
    if count:
        jitter = np.exp(rng.normal(0.0, noise.log_sigma, size=count))
        mask[borderline] = effective[borderline] * jitter < elapsed_s
    return mask
