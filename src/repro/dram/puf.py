"""DRAM decay PUF — the constructive twin of Probable Cause (§9.1).

The paper situates itself against DRAM PUFs (Rosenblatt et al.): both
exploit the same physics — chip-unique, spatially stable cell decay —
but a PUF *intentionally* manipulates decay for attestation, while
approximate memory leaks the same signal unintentionally.  Implementing
the PUF on the shared substrate does two things: it validates the
substrate against the PUF literature's standard metrics (reliability,
uniqueness), and it makes the paper's contrast executable — the same
chips serve authentication and deanonymization with the same bits.

A challenge selects a row subset and a decay-interval index; the
response is the decayed-bit pattern of those rows.  Key material is
derived by majority-voting the response over several measurements
(a fuzzy-extractor-lite) and hashing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.bits import BitVector
from repro.dram.chip import DRAMChip


@dataclass(frozen=True)
class PUFChallenge:
    """One challenge: which rows to expose, and for how long.

    ``interval_index`` selects from the PUF's calibrated interval
    ladder, so challenges are device-independent tokens.
    """

    rows: Tuple[int, ...]
    interval_index: int

    def __post_init__(self) -> None:
        if not self.rows:
            raise ValueError("challenge must select at least one row")
        if self.interval_index < 0:
            raise ValueError("interval_index must be non-negative")


class DRAMDecayPUF:
    """Challenge-response interface over a chip's decay behaviour."""

    #: Error-rate ladder the interval indices map to.
    INTERVAL_ERROR_RATES = (0.01, 0.02, 0.05)

    def __init__(self, chip: DRAMChip):
        self._chip = chip
        self._intervals = [
            chip.interval_for_error_rate(rate)
            for rate in self.INTERVAL_ERROR_RATES
        ]

    @property
    def chip(self) -> DRAMChip:
        """The physical device behind this PUF instance."""
        return self._chip

    def evaluate(self, challenge: PUFChallenge) -> BitVector:
        """Measure one response: decayed-bit pattern of the chosen rows.

        The full array is charged, decays for the challenge interval,
        and the response is the concatenated error pattern of the
        challenge rows (row order as given).
        """
        chip = self._chip
        geometry = chip.geometry
        if max(challenge.rows) >= geometry.rows:
            raise IndexError("challenge row out of range for this chip")
        if challenge.interval_index >= len(self._intervals):
            raise IndexError("interval_index beyond the calibrated ladder")
        data = geometry.charged_pattern()
        readback = chip.decay_trial(
            data, self._intervals[challenge.interval_index]
        )
        errors = (readback ^ data).to_bool_array()
        parts = [
            errors[row * geometry.bits_per_row : (row + 1) * geometry.bits_per_row]
            for row in challenge.rows
        ]
        return BitVector.from_bool_array(np.concatenate(parts))

    def derive_key(
        self, challenge: PUFChallenge, measurements: int = 9
    ) -> bytes:
        """256-bit key from majority-voted responses.

        Majority voting across ``measurements`` evaluations suppresses
        the borderline-cell noise, the same way Algorithm 1's
        intersection does for the attack.  Voting is not a full fuzzy
        extractor: a cell whose failure probability is genuinely near
        1/2 can still flip the key between derivations, so production
        use would wrap this in an error-correcting extractor; the
        experiment harness reports the measured re-derivation
        stability honestly.
        """
        if measurements < 1:
            raise ValueError("measurements must be positive")
        votes = np.zeros(0)
        for _ in range(measurements):
            response = self.evaluate(challenge).to_bool_array()
            if votes.size == 0:
                votes = np.zeros(response.size, dtype=np.int32)
            votes += response
        stable = votes > measurements // 2
        return hashlib.sha256(np.packbits(stable).tobytes()).digest()


def fractional_hamming(a: BitVector, b: BitVector) -> float:
    """Normalized Hamming distance between two responses."""
    if a.nbits != b.nbits:
        raise ValueError("responses must have equal length")
    if a.nbits == 0:
        return 0.0
    return a.hamming_distance(b) / a.nbits


def reliability(
    puf: DRAMDecayPUF, challenge: PUFChallenge, measurements: int = 10
) -> float:
    """Intra-chip reliability: 1 - mean pairwise fractional Hamming.

    The PUF literature wants this near 1 (responses repeat); the decay
    substrate's ~98 % bit stability puts it in the high 0.99s because
    only ~1 % of bits are set at all.
    """
    responses = [puf.evaluate(challenge) for _ in range(measurements)]
    distances = [
        fractional_hamming(responses[i], responses[j])
        for i in range(len(responses))
        for j in range(i + 1, len(responses))
    ]
    return 1.0 - float(np.mean(distances))


def uniqueness(
    pufs: Sequence[DRAMDecayPUF], challenge: PUFChallenge
) -> float:
    """Inter-chip distance, normalized to its sparse-response ideal.

    Classic dense PUFs target 0.5 fractional Hamming; a decay response
    at error rate ``p`` is sparse, so two independent chips differ in
    ~``2p(1-p)`` of positions.  This metric reports the measured mean
    inter-chip fractional Hamming divided by that ideal — 1.0 means
    chips are as distinguishable as independent randomness allows.
    """
    if len(pufs) < 2:
        raise ValueError("uniqueness needs at least two devices")
    responses = [puf.evaluate(challenge) for puf in pufs]
    densities = [response.density() for response in responses]
    distances = []
    ideals = []
    for i in range(len(responses)):
        for j in range(i + 1, len(responses)):
            distances.append(fractional_hamming(responses[i], responses[j]))
            p, q = densities[i], densities[j]
            ideals.append(p * (1 - q) + q * (1 - p))
    return float(np.mean(distances) / np.mean(ideals))


def make_challenges(
    n_challenges: int,
    geometry_rows: int,
    rows_per_challenge: int,
    rng: np.random.Generator,
) -> List[PUFChallenge]:
    """Random challenge set over a chip geometry."""
    if rows_per_challenge > geometry_rows:
        raise ValueError("challenge asks for more rows than the chip has")
    challenges = []
    for _ in range(n_challenges):
        rows = tuple(
            int(row)
            for row in rng.choice(geometry_rows, rows_per_challenge, replace=False)
        )
        interval = int(rng.integers(0, len(DRAMDecayPUF.INTERVAL_ERROR_RATES)))
        challenges.append(PUFChallenge(rows=rows, interval_index=interval))
    return challenges
