"""Approximate-DRAM refresh schemes from the paper's related work (§9.2).

Probable Cause attacks *whatever* puts decay errors into outputs.  The
paper names the concrete energy-saving schemes that do so — Flikker
(two refresh zones), RAIDR (retention-binned refresh groups), RAPID
(retention-aware placement) — and its own platform's fixed-interval
controller.  This module implements each scheme over the chip
simulator, with a common energy model, so the attack can be
demonstrated (and benchmarked) against every published flavour of
approximate DRAM rather than only the paper's test rig.

**Energy model.**  DRAM refresh energy is proportional to the number of
row-refresh operations issued per unit time.  A plan assigns each row a
refresh interval; its cost is ``sum(1 / interval)`` row-refreshes per
second, normalized against the JEDEC baseline (every row every 64 ms).
This captures exactly the quantity the schemes compete on and nothing
they don't.

**Steady-state decay.**  Under a periodic per-row interval ``tau`` a
charged cell sees at most ``tau`` seconds unrefreshed, so a cell decays
in steady state iff its (temperature-scaled, jittered) retention is
below its row's interval.  :func:`readback_under_plan` evaluates that
directly via :meth:`DRAMChip.idle_rows`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Tuple

import numpy as np

from repro.bits import BitVector
from repro.dram.chip import DRAMChip
from repro.dram.retention import JEDEC_REFRESH_S


@dataclass(frozen=True)
class RefreshPlan:
    """Per-row refresh intervals chosen by a policy."""

    row_intervals_s: np.ndarray

    def __post_init__(self) -> None:
        if (np.asarray(self.row_intervals_s) <= 0).any():
            raise ValueError("refresh intervals must be positive")

    @property
    def rows(self) -> int:
        """Number of rows covered by the plan."""
        return self.row_intervals_s.size

    def refresh_ops_per_second(self) -> float:
        """Row-refresh operations issued per second under this plan."""
        return float(np.sum(1.0 / self.row_intervals_s))

    def energy_saving_vs_jedec(self) -> float:
        """Fraction of JEDEC refresh energy saved (can be negative)."""
        baseline = self.rows / JEDEC_REFRESH_S
        return 1.0 - self.refresh_ops_per_second() / baseline


class RefreshPolicy(Protocol):
    """Strategy assigning refresh intervals to a chip's rows."""

    name: str

    def plan(self, chip: DRAMChip, temperature_c: float) -> RefreshPlan:
        """Build a refresh plan for ``chip`` at ``temperature_c``."""
        ...


def _row_min_retention(chip: DRAMChip, temperature_c: float) -> np.ndarray:
    """Weakest-cell retention per row at the operating temperature.

    This is the quantity RAIDR-style profiling measures: how long each
    row can safely go unrefreshed.
    """
    geometry = chip.geometry
    scaled = chip.spec.thermal.scale_retention(
        chip.retention_reference_s, temperature_c
    )
    return scaled.reshape(geometry.rows, geometry.bits_per_row).min(axis=1)


@dataclass(frozen=True)
class JEDECRefresh:
    """The exact-computing baseline: every row every 64 ms (§2)."""

    name: str = "JEDEC 64ms"

    def plan(self, chip: DRAMChip, temperature_c: float) -> RefreshPlan:
        """Uniform 64 ms intervals for every row."""
        return RefreshPlan(
            row_intervals_s=np.full(chip.geometry.rows, JEDEC_REFRESH_S)
        )


@dataclass(frozen=True)
class FixedIntervalRefresh:
    """The paper's own platform: one global interval picked for a target
    accuracy (the knob §6 turns)."""

    interval_s: float
    name: str = "fixed interval"

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")

    def plan(self, chip: DRAMChip, temperature_c: float) -> RefreshPlan:
        """One global interval for every row (the paper's knob)."""
        return RefreshPlan(
            row_intervals_s=np.full(chip.geometry.rows, self.interval_s)
        )


@dataclass(frozen=True)
class FlikkerRefresh:
    """Flikker (Liu et al.): high-refresh and low-refresh zones.

    The first ``high_zone_fraction`` of rows hold critical data at the
    JEDEC rate; the rest refresh ``low_rate_divisor`` times slower and
    hold error-tolerant data.
    """

    high_zone_fraction: float = 0.25
    low_rate_divisor: float = 16.0
    name: str = "Flikker"

    def __post_init__(self) -> None:
        if not 0.0 <= self.high_zone_fraction <= 1.0:
            raise ValueError("high_zone_fraction must be in [0, 1]")
        if self.low_rate_divisor < 1.0:
            raise ValueError("low_rate_divisor must be >= 1")

    def high_zone_rows(self, chip: DRAMChip) -> int:
        """Number of rows in the full-refresh zone."""
        return int(round(self.high_zone_fraction * chip.geometry.rows))

    def plan(self, chip: DRAMChip, temperature_c: float) -> RefreshPlan:
        """JEDEC rate for the high zone, divided rate for the rest."""
        intervals = np.full(
            chip.geometry.rows, JEDEC_REFRESH_S * self.low_rate_divisor
        )
        intervals[: self.high_zone_rows(chip)] = JEDEC_REFRESH_S
        return RefreshPlan(row_intervals_s=intervals)


@dataclass(frozen=True)
class RAIDRRefresh:
    """RAIDR (Liu et al., ISCA 2012): retention-binned refresh groups.

    Rows are profiled for their weakest cell and assigned to the
    longest bin interval that still (conservatively) retains it.  Bins
    are power-of-two multiples of the JEDEC period, as in the paper.
    ``safety_factor`` scales the per-row retention budget: exactly 1 is
    faithful RAIDR (error-free), below 1 adds guard band, and above 1
    deliberately over-states retention — the *approximate* RAIDR
    variant whose weakest-cell errors give Probable Cause its signal.
    """

    n_bins: int = 4
    safety_factor: float = 1.0
    name: str = "RAIDR"

    def __post_init__(self) -> None:
        if self.n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        if self.safety_factor <= 0:
            raise ValueError("safety_factor must be positive")

    def bin_intervals(self) -> np.ndarray:
        """Available refresh intervals: 64 ms x {1, 2, 4, ...}."""
        return JEDEC_REFRESH_S * (2.0 ** np.arange(self.n_bins))

    def plan(self, chip: DRAMChip, temperature_c: float) -> RefreshPlan:
        """Bin each row by its weakest cell's (scaled) retention."""
        budget = _row_min_retention(chip, temperature_c) * self.safety_factor
        bins = self.bin_intervals()
        # Longest bin interval not exceeding the row's budget; rows too
        # weak even for the base bin get the base bin (and may err when
        # safety_factor < 1).
        assignment = np.searchsorted(bins, budget, side="right") - 1
        assignment = np.clip(assignment, 0, self.n_bins - 1)
        return RefreshPlan(row_intervals_s=bins[assignment])


@dataclass(frozen=True)
class RAPIDRefresh:
    """RAPID (Venkatesan et al., HPCA 2006): retention-aware placement.

    Pages (rows, at this granularity) are ranked by retention and
    populated strongest-first; the refresh interval is set by the
    weakest *populated* row, so the unpopulated weak tail stops
    constraining the refresh rate entirely.
    """

    populated_fraction: float = 0.75
    name: str = "RAPID"

    def __post_init__(self) -> None:
        if not 0.0 < self.populated_fraction <= 1.0:
            raise ValueError("populated_fraction must be in (0, 1]")

    def populated_rows(self, chip: DRAMChip, temperature_c: float) -> np.ndarray:
        """Row indices that hold data, strongest retention first."""
        per_row = _row_min_retention(chip, temperature_c)
        count = max(1, int(round(self.populated_fraction * per_row.size)))
        return np.argsort(per_row)[::-1][:count]

    def plan(self, chip: DRAMChip, temperature_c: float) -> RefreshPlan:
        """Interval set by the weakest *populated* row; the rest idle."""
        per_row = _row_min_retention(chip, temperature_c)
        populated = self.populated_rows(chip, temperature_c)
        interval = float(per_row[populated].min())
        intervals = np.full(chip.geometry.rows, interval)
        # Unpopulated rows need no refresh at all; model that as an
        # effectively infinite interval (negligible energy).
        unpopulated = np.setdiff1d(np.arange(per_row.size), populated)
        intervals[unpopulated] = 1e9
        return RefreshPlan(row_intervals_s=intervals)


def raidr_plan_from_profile(
    profile_retention_s: np.ndarray,
    n_bins: int = 4,
    safety_factor: float = 1.0,
) -> RefreshPlan:
    """RAIDR bin assignment from a *measured* row profile.

    The realistic deployment loop: profile rows with
    :func:`repro.dram.profiling.profile_rows`, then bin them — no
    oracle access to per-cell retention anywhere.  ``safety_factor``
    semantics match :class:`RAIDRRefresh`.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    if safety_factor <= 0:
        raise ValueError("safety_factor must be positive")
    budget = np.asarray(profile_retention_s, dtype=float) * safety_factor
    bins = JEDEC_REFRESH_S * (2.0 ** np.arange(n_bins))
    assignment = np.searchsorted(bins, budget, side="right") - 1
    assignment = np.clip(assignment, 0, n_bins - 1)
    return RefreshPlan(row_intervals_s=bins[assignment])


# ----------------------------------------------------------------------
# Execution and evaluation
# ----------------------------------------------------------------------


def readback_under_plan(
    chip: DRAMChip,
    data: BitVector,
    plan: RefreshPlan,
    temperature_c: Optional[float] = None,
) -> BitVector:
    """Steady-state readback of ``data`` stored under a refresh plan."""
    if temperature_c is not None:
        chip.set_temperature(temperature_c)
    chip.write(data)
    chip.idle_rows(plan.row_intervals_s)
    return chip.read()


@dataclass(frozen=True)
class PolicyEvaluation:
    """Energy/error/identifiability summary for one policy run."""

    policy_name: str
    energy_saving: float
    error_rate: float
    errors: int


def evaluate_policy(
    chip: DRAMChip,
    policy: RefreshPolicy,
    temperature_c: float = 40.0,
    data: Optional[BitVector] = None,
) -> Tuple[PolicyEvaluation, BitVector]:
    """Run one policy and report (evaluation, error_string).

    Placement-aware policies (RAPID) expose ``populated_rows``; errors
    are then counted only over rows that actually hold data — the
    unpopulated weak tail is never written, so its decay is not an
    error.
    """
    if data is None:
        data = chip.geometry.charged_pattern()
    plan = policy.plan(chip, temperature_c)
    readback = readback_under_plan(chip, data, plan, temperature_c)
    errors = readback ^ data

    populated_rows_fn = getattr(policy, "populated_rows", None)
    if populated_rows_fn is not None:
        geometry = chip.geometry
        mask = np.zeros(geometry.total_bits, dtype=bool)
        for row in populated_rows_fn(chip, temperature_c):
            start = int(row) * geometry.bits_per_row
            mask[start : start + geometry.bits_per_row] = True
        errors = BitVector.from_bool_array(errors.to_bool_array() & mask)
        data_bits = int(mask.sum())
    else:
        data_bits = data.nbits

    evaluation = PolicyEvaluation(
        policy_name=policy.name,
        energy_saving=plan.energy_saving_vs_jedec(),
        error_rate=errors.popcount() / data_bits,
        errors=errors.popcount(),
    )
    return evaluation, errors


def compare_policies(
    chip: DRAMChip,
    policies: List[RefreshPolicy],
    temperature_c: float = 40.0,
) -> List[Tuple[PolicyEvaluation, BitVector]]:
    """Evaluate several policies on the same chip and data."""
    return [
        evaluate_policy(chip, policy, temperature_c) for policy in policies
    ]
