"""Measurement-based retention profiling.

RAIDR, RAPID and every retention-aware scheme need to know how long
each row can go unrefreshed — and a real controller learns that by
*measurement*, not by reading the manufacturer's mind.  The refresh
policies in :mod:`repro.dram.refresh` use an oracle
(:func:`~repro.dram.refresh._row_min_retention`) for speed; this module
provides the realistic path: write a worst-case pattern, sweep decay
intervals, and bisect each row's failure point from readbacks alone.

Profiling noise matters: a row's weakest cell jitters trial to trial,
so profiles built from single measurements under-estimate occasionally.
:func:`profile_rows` therefore supports multiple passes with a
min-reduce (conservative, like production profiling does) and the test
suite checks the profile brackets the oracle truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bits import BitVector
from repro.dram.chip import DRAMChip


@dataclass(frozen=True)
class RowProfile:
    """Measured per-row retention budget at one operating point."""

    retention_s: np.ndarray
    temperature_c: float
    passes: int

    @property
    def rows(self) -> int:
        """Number of profiled rows."""
        return self.retention_s.size


def _failing_rows(chip: DRAMChip, pattern: BitVector, interval_s: float) -> np.ndarray:
    """Boolean per-row mask: did any cell of the row decay at this interval?"""
    readback = chip.decay_trial(pattern, interval_s)
    errors = (readback ^ pattern).to_indices()
    mask = np.zeros(chip.geometry.rows, dtype=bool)
    if errors.size:
        mask[np.unique(chip.geometry.rows_of_bits(errors))] = True
    return mask


def profile_rows(
    chip: DRAMChip,
    temperature_c: float = 40.0,
    resolution: float = 0.05,
    passes: int = 1,
    max_probes: int = 64,
) -> RowProfile:
    """Measure each row's retention budget by interval bisection.

    Parameters
    ----------
    chip:
        Device under profiling (its refresh is driven directly, as a
        profiling controller would).
    temperature_c:
        Operating point to profile at.
    resolution:
        Advisory relative resolution; the ladder sweep spends its probe
        budget to reach roughly uniform per-row resolution of
        ``(high/low)**(1/budget)``, clamped by ``max_probes``.
    passes:
        Independent profiling passes; the per-row minimum over passes
        is kept (conservative against trial noise).
    max_probes:
        Trial budget per pass.

    Returns
    -------
    RowProfile
        Per-row safe unrefreshed durations (seconds of wall clock at
        ``temperature_c``).
    """
    if not 0.0 < resolution < 1.0:
        raise ValueError("resolution must be in (0, 1)")
    if passes < 1:
        raise ValueError("passes must be positive")
    previous_temperature = chip.temperature_c
    chip.set_temperature(temperature_c)
    pattern = chip.geometry.charged_pattern()
    rows = chip.geometry.rows
    try:
        best = np.full(rows, np.inf)
        for _ in range(passes):
            # Bracket: grow until every row fails, shrink until none does.
            high = 1.0
            probes = 0
            while not _failing_rows(chip, pattern, high).all():
                high *= 4.0
                probes += 1
                if probes > max_probes:
                    raise RuntimeError("profiling failed to bracket above")
            low = high
            while _failing_rows(chip, pattern, low).any():
                low /= 4.0
                probes += 1
                if probes > max_probes:
                    raise RuntimeError("profiling failed to bracket below")
            # Log-spaced ladder sweep: every probe trial yields a
            # pass/fail bit for *every* row simultaneously, so K probes
            # pin each row's budget to within a factor of
            # (high/low)^(1/K) — uniform resolution across rows, unlike
            # per-row bisection with shared probes.
            budget = max(4, max_probes - probes)
            ladder = np.geomspace(low, high, num=budget)
            row_low = np.full(rows, low)
            locked = np.zeros(rows, dtype=bool)
            for interval in ladder:
                failing = _failing_rows(chip, pattern, float(interval))
                # A row that has ever failed is locked: trial noise can
                # make it "survive" a longer interval, but raising its
                # budget past an observed failure would overshoot.
                survivors = ~failing & ~locked
                row_low[survivors] = np.maximum(
                    row_low[survivors], float(interval)
                )
                locked |= failing
                probes += 1
                if locked.all():
                    break
            best = np.minimum(best, row_low)
        return RowProfile(
            retention_s=best, temperature_c=temperature_c, passes=passes
        )
    finally:
        chip.set_temperature(previous_temperature)


def profile_matches_oracle(
    chip: DRAMChip, profile: RowProfile, slack: float = 0.5
) -> bool:
    """Sanity check: the measured budget brackets the oracle truth.

    Every row's measured safe interval must not exceed its true
    weakest-cell retention by more than the bisection slack, and must
    not be pessimistic by more than ``slack`` (fraction below truth).
    """
    from repro.dram.refresh import _row_min_retention

    truth = _row_min_retention(chip, profile.temperature_c)
    measured = profile.retention_s
    no_overshoot = bool((measured <= truth * 1.1).all())
    not_too_pessimistic = bool((measured >= truth * slack).mean() > 0.9)
    return no_overshoot and not_too_pessimistic
