"""Behavioural simulator for a single DRAM chip.

:class:`DRAMChip` reproduces the slice of DRAM behaviour the paper's
experiments exercise:

* a full-array **write** charges every cell whose stored bit differs
  from the cell's default value and restarts every row's decay clock;
* **idle** time (refresh disabled, as on the paper's MSP430 platform)
  advances the decay clock, faster at higher temperature;
* a **read** senses each cell — charged cells whose accumulated decay
  exceeded their retention time have silently reverted to the default
  value — and, like real DRAM, the read's write-back *restores* the
  surviving charges, restarting the decay clock;
* **refresh** is modelled as a read/write-back at row granularity (§2).

Decay accounting uses a per-row *reference-normalized* elapsed time:
each second of wall-clock idle at temperature ``T`` contributes
``1 / thermal.retention_scale(T)`` reference-seconds, so temperature
changes mid-window integrate correctly and a cell decays exactly when
its reference retention (times a per-window noise jitter) is exceeded.

Manufacturing state is locked at construction: the per-cell retention
array is a pure function of ``(spec, mask_seed, chip_seed)``, so two
`DRAMChip` objects with the same identity are the *same physical chip*
— the property every fingerprinting experiment rests on.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.bits import BitVector
from repro.dram.devices import DeviceSpec
from repro.dram.retention import decayed_mask
from repro.dram.vrt import VRTState


class DRAMChip:
    """One simulated DRAM chip with manufacturing-locked retention."""

    def __init__(
        self,
        spec: DeviceSpec,
        chip_seed: int,
        mask_seed: int = 0,
        label: Optional[str] = None,
        noise_rng: Optional[np.random.Generator] = None,
    ):
        self._spec = spec
        self._chip_seed = int(chip_seed)
        self._mask_seed = int(mask_seed)
        self._label = label if label is not None else f"{spec.name}#{chip_seed}"
        n_cells = spec.geometry.total_bits
        log_retention = spec.variation.sample_log_retention(
            n_cells, mask_seed=self._mask_seed, chip_seed=self._chip_seed
        )
        self._retention_ref_s = np.exp(log_retention)
        self._defaults = spec.geometry.default_array()
        self._data = self._defaults.copy()
        # Reference-normalized seconds since each row's last recharge.
        self._row_elapsed_ref = np.zeros(spec.geometry.rows)
        self._temperature_c = spec.thermal.reference_c
        self._supply_v = spec.voltage.nominal_v
        # Noise stream is separate from manufacturing randomness so the
        # same chip produces different trial-to-trial jitter.
        self._noise_rng = (
            noise_rng
            if noise_rng is not None
            else np.random.default_rng((self._chip_seed << 20) ^ 0x5EED)
        )
        # Variable-retention-time population (membership is locked by
        # the chip seed; state evolves one step per decay window).
        if spec.vrt is not None:
            self._vrt = VRTState(
                spec.vrt, n_cells, self._chip_seed, self._noise_rng
            )
            self._retention_active = self._vrt.apply(self._retention_ref_s)
        else:
            self._vrt = None
            self._retention_active = self._retention_ref_s

    # ------------------------------------------------------------------
    # Identity and static properties
    # ------------------------------------------------------------------

    @property
    def spec(self) -> DeviceSpec:
        """Device family this chip belongs to."""
        return self._spec

    @property
    def label(self) -> str:
        """Human-readable chip identity (used as ground truth in tests)."""
        return self._label

    @property
    def chip_seed(self) -> int:
        """Manufacturing seed; equal seeds mean the same physical chip."""
        return self._chip_seed

    @property
    def mask_seed(self) -> int:
        """Mask-set seed shared by chips fabricated from the same mask."""
        return self._mask_seed

    @property
    def geometry(self):
        """Shortcut for ``spec.geometry``."""
        return self._spec.geometry

    @property
    def retention_reference_s(self) -> np.ndarray:
        """Read-only view of per-cell retention (reference temperature).

        This is the manufacturing-locked baseline; VRT cells may
        currently be in their weak state (see :attr:`vrt_state`).
        """
        view = self._retention_ref_s.view()
        view.flags.writeable = False
        return view

    @property
    def vrt_state(self):
        """Dynamic VRT population state, or None for ideal cells."""
        return self._vrt

    # ------------------------------------------------------------------
    # Environment
    # ------------------------------------------------------------------

    @property
    def temperature_c(self) -> float:
        """Current ambient temperature (the thermal chamber setting)."""
        return self._temperature_c

    def set_temperature(self, temperature_c: float) -> None:
        """Change ambient temperature; affects subsequent :meth:`idle`."""
        self._temperature_c = float(temperature_c)

    @property
    def supply_voltage_v(self) -> float:
        """Current DRAM supply voltage (the other approximation knob)."""
        return self._supply_v

    def set_supply_voltage(self, supply_v: float) -> None:
        """Change the supply voltage; affects subsequent :meth:`idle`.

        Validation happens here so an out-of-range rail fails at the
        call site rather than at the next decay computation.
        """
        self._spec.voltage.retention_scale(supply_v)  # validates range
        self._supply_v = float(supply_v)

    def _retention_scale(self) -> float:
        """Combined retention multiplier for the current environment."""
        return self._spec.thermal.retention_scale(
            self._temperature_c
        ) * self._spec.voltage.retention_scale(self._supply_v)

    # ------------------------------------------------------------------
    # Aging
    # ------------------------------------------------------------------

    def age_retention(self, log_shift) -> None:
        """Permanently shift per-cell log-retention (wear-out aging).

        Real DRAM retention drifts over a device's lifetime: leakage
        rises as gate oxides wear, and individual cells walk up or down
        as trapped charge accumulates.  The fleet-lifecycle simulation
        models one epoch of that drift as an additive shift in log
        domain — ``retention *= exp(log_shift)`` — either a scalar
        (uniform wear) or one value per cell (random walk).  The shift
        is applied to the manufacturing baseline, so it persists across
        writes, reads and VRT window advances; it is *not* an
        environment knob like temperature and cannot be undone.
        """
        shift = np.asarray(log_shift, dtype=float)
        n_cells = self._retention_ref_s.size
        if shift.shape not in ((), (n_cells,)):
            raise ValueError(
                f"log_shift must be a scalar or one value per cell "
                f"({n_cells}), got shape {shift.shape}"
            )
        self._retention_ref_s = self._retention_ref_s * np.exp(shift)
        if self._vrt is not None:
            self._retention_active = self._vrt.apply(self._retention_ref_s)
        else:
            self._retention_active = self._retention_ref_s

    # ------------------------------------------------------------------
    # Memory operations
    # ------------------------------------------------------------------

    def write(self, data: BitVector) -> None:
        """Write a full data image; recharges cells and resets decay clocks."""
        if data.nbits != self.geometry.total_bits:
            raise ValueError(
                f"data has {data.nbits} bits, chip holds "
                f"{self.geometry.total_bits}"
            )
        self._data = data.to_bool_array()
        self._row_elapsed_ref[:] = 0.0
        if self._vrt is not None:
            # A fresh decay window begins: advance each VRT cell's
            # two-state Markov chain and refresh the active retention.
            self._vrt.advance()
            self._retention_active = self._vrt.apply(self._retention_ref_s)

    def idle(self, seconds: float) -> None:
        """Let the chip sit unrefreshed for ``seconds`` of wall-clock time.

        Decay is committed lazily at the next read/refresh; this only
        accumulates temperature-weighted elapsed time.
        """
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self._row_elapsed_ref += seconds / self._retention_scale()

    def idle_rows(self, seconds_per_row: np.ndarray) -> None:
        """Advance each row's decay clock by its own wall-clock amount.

        Refresh-policy simulation (:mod:`repro.dram.refresh`) uses this
        to model schemes that refresh different rows at different rates:
        a row refreshed every ``tau`` seconds spends at most ``tau``
        unrefreshed, so its steady-state decay window is ``tau``.
        """
        seconds_per_row = np.asarray(seconds_per_row, dtype=float)
        if seconds_per_row.shape != (self.geometry.rows,):
            raise ValueError(
                f"expected one duration per row ({self.geometry.rows}), "
                f"got shape {seconds_per_row.shape}"
            )
        if (seconds_per_row < 0).any():
            raise ValueError("durations must be non-negative")
        self._row_elapsed_ref += seconds_per_row / self._retention_scale()

    def read(self) -> BitVector:
        """Sense the full array, restoring surviving charges.

        Returns the logical contents after any decay that accrued since
        each row's last recharge.
        """
        self._commit_decay(np.arange(self.geometry.rows))
        return BitVector.from_bool_array(self._data)

    def refresh_rows(self, rows: Iterable[int]) -> None:
        """Refresh specific rows (read + write-back, §2)."""
        rows = np.asarray(list(rows), dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.geometry.rows):
            raise IndexError("row index out of range")
        self._commit_decay(rows)

    def refresh_all(self) -> None:
        """Refresh every row."""
        self._commit_decay(np.arange(self.geometry.rows))

    # ------------------------------------------------------------------
    # Convenience used throughout the experiments
    # ------------------------------------------------------------------

    def decay_trial(self, data: BitVector, interval_s: float) -> BitVector:
        """Write ``data``, idle ``interval_s`` at the current temperature,
        read back.  The paper's basic experimental step."""
        self.write(data)
        self.idle(interval_s)
        return self.read()

    def interval_for_error_rate(
        self, error_rate: float, temperature_c: Optional[float] = None
    ) -> float:
        """Oracle decay interval producing ``error_rate`` with worst-case data.

        With every cell charged, the fraction of decayed cells after an
        idle window equals the retention CDF at the window length; the
        requested error rate is therefore the retention distribution's
        ``error_rate`` quantile, rescaled to the operating temperature.
        The adaptive controller (:mod:`repro.dram.controller`) offers a
        measurement-based alternative that does not peek at retention.
        """
        if not 0.0 < error_rate < 1.0:
            raise ValueError(f"error_rate must be in (0, 1), got {error_rate}")
        if temperature_c is None:
            temperature_c = self._temperature_c
        quantile_ref = float(np.quantile(self._retention_ref_s, error_rate))
        scale = self._spec.thermal.retention_scale(
            temperature_c
        ) * self._spec.voltage.retention_scale(self._supply_v)
        return quantile_ref * scale

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _commit_decay(self, rows: np.ndarray) -> None:
        """Apply accumulated decay to ``rows``, then recharge them."""
        if rows.size == 0:
            return
        geometry = self.geometry
        bits_per_row = geometry.bits_per_row
        active = rows[self._row_elapsed_ref[rows] > 0.0]
        # Fast path: whole-array commit with one shared decay window --
        # the shape of every write/idle/read trial.  One vectorized pass
        # instead of a per-row Python loop.
        if active.size == geometry.rows:
            elapsed = self._row_elapsed_ref[active]
            if elapsed.max() - elapsed.min() <= 1e-15 * max(elapsed.max(), 1.0):
                charged = self._data != self._defaults
                if charged.any():
                    lost = decayed_mask(
                        self._retention_active,
                        elapsed_s=float(elapsed[0]),
                        temperature_c=self._spec.thermal.reference_c,
                        thermal=self._spec.thermal,
                        noise=self._spec.noise,
                        rng=self._noise_rng,
                    )
                    reverted = charged & lost
                    self._data[reverted] = self._defaults[reverted]
                self._row_elapsed_ref[rows] = 0.0
                return
        for row in active:
            start = int(row) * bits_per_row
            stop = start + bits_per_row
            cells = slice(start, stop)
            charged = self._data[cells] != self._defaults[cells]
            if not charged.any():
                continue
            lost = decayed_mask(
                self._retention_active[cells],
                elapsed_s=float(self._row_elapsed_ref[row]),
                temperature_c=self._spec.thermal.reference_c,
                thermal=self._spec.thermal,
                noise=self._spec.noise,
                rng=self._noise_rng,
            )
            reverted = charged & lost
            self._data[cells] = np.where(
                reverted, self._defaults[cells], self._data[cells]
            )
        self._row_elapsed_ref[rows] = 0.0
