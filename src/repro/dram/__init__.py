"""Simulated approximate-DRAM substrate.

This subpackage replaces the paper's physical platform (KM41464A chips,
MSP430 harness, thermal chamber, FPGA DDR2 rig) with a behavioural
simulator whose only tunable physics are the ones the paper's results
rest on: manufacturing-locked per-cell retention variation, thermally
accelerated decay, row-granularity refresh, and small per-trial noise.
See DESIGN.md §2 for the substitution rationale.
"""

from repro.dram.chip import DRAMChip
from repro.dram.controller import (
    ApproximateMemoryController,
    CalibrationResult,
    accuracy_to_error_rate,
)
from repro.dram.devices import (
    KM41464A,
    MICRON_DDR2,
    TEST_DEVICE,
    DeviceSpec,
    get_device,
)
from repro.dram.geometry import ChipGeometry
from repro.dram.platform import (
    ChipFamily,
    ExperimentPlatform,
    TrialConditions,
    TrialResult,
)
from repro.dram.profiling import (
    RowProfile,
    profile_matches_oracle,
    profile_rows,
)
from repro.dram.puf import (
    DRAMDecayPUF,
    PUFChallenge,
    fractional_hamming,
    make_challenges,
    reliability,
    uniqueness,
)
from repro.dram.refresh import (
    FixedIntervalRefresh,
    FlikkerRefresh,
    JEDECRefresh,
    PolicyEvaluation,
    RAIDRRefresh,
    RAPIDRefresh,
    RefreshPlan,
    RefreshPolicy,
    compare_policies,
    evaluate_policy,
    raidr_plan_from_profile,
    readback_under_plan,
)
from repro.dram.retention import (
    JEDEC_REFRESH_S,
    REFERENCE_TEMPERATURE_C,
    NoiseModel,
    ThermalModel,
    VoltageModel,
    decayed_mask,
)
from repro.dram.rowhammer import (
    DEFAULT_ROWHAMMER_MODEL,
    RowhammerModel,
    default_aggressor_rows,
    hammer_susceptibility,
    hammer_trial,
    victim_rows,
)
from repro.dram.startup import (
    DEFAULT_STARTUP_MODEL,
    OriginStatistics,
    StartupModel,
    origin_statistics,
    startup_read,
    startup_structure,
)
from repro.dram.timeline import (
    ReadCommand,
    ReadRecord,
    RefreshCommand,
    SetTemperatureCommand,
    SetVoltageCommand,
    Timeline,
    TimelineResult,
    WriteCommand,
)
from repro.dram.variation import VariationProfile
from repro.dram.voltage_control import VoltageCalibration, VoltageScalingController
from repro.dram.vrt import VRTModel, VRTState

__all__ = [
    "DRAMChip",
    "RowProfile",
    "profile_matches_oracle",
    "profile_rows",
    "VoltageCalibration",
    "VoltageScalingController",
    "DRAMDecayPUF",
    "PUFChallenge",
    "fractional_hamming",
    "make_challenges",
    "reliability",
    "uniqueness",
    "FixedIntervalRefresh",
    "FlikkerRefresh",
    "JEDECRefresh",
    "PolicyEvaluation",
    "RAIDRRefresh",
    "RAPIDRefresh",
    "RefreshPlan",
    "RefreshPolicy",
    "compare_policies",
    "evaluate_policy",
    "raidr_plan_from_profile",
    "readback_under_plan",
    "ApproximateMemoryController",
    "CalibrationResult",
    "accuracy_to_error_rate",
    "DeviceSpec",
    "get_device",
    "KM41464A",
    "MICRON_DDR2",
    "TEST_DEVICE",
    "ChipGeometry",
    "ChipFamily",
    "ExperimentPlatform",
    "TrialConditions",
    "TrialResult",
    "ThermalModel",
    "NoiseModel",
    "VoltageModel",
    "decayed_mask",
    "JEDEC_REFRESH_S",
    "REFERENCE_TEMPERATURE_C",
    "DEFAULT_ROWHAMMER_MODEL",
    "RowhammerModel",
    "default_aggressor_rows",
    "hammer_susceptibility",
    "hammer_trial",
    "victim_rows",
    "DEFAULT_STARTUP_MODEL",
    "OriginStatistics",
    "StartupModel",
    "origin_statistics",
    "startup_read",
    "startup_structure",
    "VariationProfile",
    "VRTModel",
    "VRTState",
    "Timeline",
    "TimelineResult",
    "WriteCommand",
    "ReadCommand",
    "ReadRecord",
    "RefreshCommand",
    "SetTemperatureCommand",
    "SetVoltageCommand",
]
