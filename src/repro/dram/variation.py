"""Process-variation model for DRAM cell retention.

Section 2 of the paper identifies two manufacturing-variation sources
behind per-cell retention differences:

1. **Capacitance variation** — possibly *mask-dependent*, i.e. partially
   replicated across wafers produced from the same mask set.
2. **Leakage-current variation** — caused by random dopant fluctuation
   in the access transistor's channel, hence *mask-independent* and,
   per the paper, the **dominant** factor.

We model log-retention as the sum of three zero-mean Gaussian
components around a device-family mean:

``log t_ret = mu_device + mask_component + dopant_component``

where the mask component is drawn once per *mask* (shared by all chips
built from it) and the dopant component once per *chip*.  The variance
split is a device parameter; keeping the dopant share dominant is what
makes fingerprints device-unique rather than mask-unique, and the test
suite asserts exactly that property.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class VariationProfile:
    """Statistical description of retention variation for a device family.

    Parameters
    ----------
    log_mean:
        Mean of natural-log retention time (log seconds) at the
        reference temperature.
    log_sigma:
        Total standard deviation of log retention.
    mask_fraction:
        Fraction of the log-retention *variance* attributable to the
        mask-dependent capacitance component.  The paper expects this to
        be small ("we expect leakage current to be the dominant
        factor").
    skew:
        Skew-normal shape parameter applied to the dopant component in
        log domain.  0 gives a symmetric (Gaussian) log distribution,
        matching the legacy DRAM; negative values skew retention short,
        i.e. volatility skews *high*, matching the DDR2 observation in
        §8.1.
    """

    log_mean: float
    log_sigma: float
    mask_fraction: float = 0.05
    skew: float = 0.0

    def __post_init__(self) -> None:
        if self.log_sigma <= 0:
            raise ValueError("log_sigma must be positive")
        if not 0.0 <= self.mask_fraction < 1.0:
            raise ValueError("mask_fraction must be in [0, 1)")

    @property
    def mask_sigma(self) -> float:
        """Std-dev of the mask-dependent log-retention component."""
        return self.log_sigma * float(np.sqrt(self.mask_fraction))

    @property
    def dopant_sigma(self) -> float:
        """Std-dev of the chip-unique (dopant) log-retention component."""
        return self.log_sigma * float(np.sqrt(1.0 - self.mask_fraction))

    # ------------------------------------------------------------------

    def sample_mask_component(self, n_cells: int, mask_seed: int) -> np.ndarray:
        """Per-cell mask-dependent offsets, identical for a given seed.

        Chips manufactured from the same mask call this with the same
        ``mask_seed`` and therefore share this component exactly.
        """
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=mask_seed, spawn_key=(0x4D41534B,))
        )
        return rng.normal(0.0, self.mask_sigma, size=n_cells)

    def sample_dopant_component(self, n_cells: int, chip_seed: int) -> np.ndarray:
        """Per-cell chip-unique offsets from random dopant fluctuation.

        When :attr:`skew` is non-zero the component follows a
        skew-normal distribution (standardized to zero mean and
        :attr:`dopant_sigma` standard deviation) so that the *shape* of
        the volatility distribution differs while its scale does not.
        """
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=chip_seed, spawn_key=(0x444F50,))
        )
        if self.skew == 0.0:  # repro-lint: disable=REP005 -- exact config sentinel, set literally and never computed; skew may be negative so no ordering test exists
            return rng.normal(0.0, self.dopant_sigma, size=n_cells)
        return _standardized_skew_normal(rng, self.skew, n_cells) * self.dopant_sigma

    def sample_log_retention(
        self, n_cells: int, mask_seed: int, chip_seed: int
    ) -> np.ndarray:
        """Full per-cell log-retention values for one chip."""
        return (
            self.log_mean
            + self.sample_mask_component(n_cells, mask_seed)
            + self.sample_dopant_component(n_cells, chip_seed)
        )


def _standardized_skew_normal(
    rng: np.random.Generator, shape: float, size: int
) -> np.ndarray:
    """Skew-normal samples rescaled to zero mean and unit variance.

    Uses the classic construction ``X = delta * |Z0| + sqrt(1 - delta^2)
    * Z1`` with ``delta = shape / sqrt(1 + shape^2)``, then removes the
    analytic mean ``delta * sqrt(2/pi)`` and divides by the analytic
    standard deviation so the caller controls scale independently of
    shape.
    """
    delta = shape / np.sqrt(1.0 + shape * shape)
    z0 = np.abs(rng.normal(size=size))
    z1 = rng.normal(size=size)
    raw = delta * z0 + np.sqrt(1.0 - delta * delta) * z1
    mean = delta * np.sqrt(2.0 / np.pi)
    std = np.sqrt(1.0 - (2.0 / np.pi) * delta * delta)
    return (raw - mean) / std
