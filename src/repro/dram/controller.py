"""Adaptive approximate-memory controller.

Approximate DRAM systems (Flikker, RAIDR, RAPID — the paper's §9.2)
trade refresh energy for bounded data error.  The paper's platform
"adjusts its refresh rate to maintain a desired accuracy across changes
in temperature" (§7.3); this module provides that control loop.

The controller maps a target *accuracy* (fraction of bits preserved;
99 % accuracy = 1 % error) to a refresh interval for the current
temperature.  Two strategies are provided:

* ``oracle`` — uses the chip's retention quantile directly.  Exact and
  fast; corresponds to a perfectly calibrated system.
* ``measure`` — the realistic path: runs write/decay/read probe trials
  with worst-case data and binary-searches the interval until the
  measured error rate brackets the target.  This is how a real
  controller (with no access to per-cell retention) would calibrate,
  and it is what keeps the *achieved* error rate on target even though
  temperature shifts every cell's decay rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.dram.chip import DRAMChip


def accuracy_to_error_rate(accuracy: float) -> float:
    """Convert the paper's accuracy notation (e.g. 0.99) to an error rate."""
    if not 0.0 < accuracy < 1.0:
        raise ValueError(f"accuracy must be in (0, 1), got {accuracy}")
    return 1.0 - accuracy


@dataclass
class CalibrationResult:
    """Outcome of one controller calibration."""

    interval_s: float
    achieved_error_rate: float
    probes: int


class ApproximateMemoryController:
    """Chooses refresh intervals that hold a chip at a target accuracy."""

    def __init__(
        self,
        chip: DRAMChip,
        strategy: str = "oracle",
        tolerance: float = 0.05,
        max_probes: int = 40,
    ):
        """
        Parameters
        ----------
        chip:
            The chip under control.
        strategy:
            ``"oracle"`` or ``"measure"`` (see module docstring).
        tolerance:
            Relative error-rate tolerance for the ``measure`` strategy:
            calibration stops when ``|measured - target| <= tolerance *
            target``.
        max_probes:
            Probe-trial budget for the ``measure`` strategy.
        """
        if strategy not in ("oracle", "measure"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self._chip = chip
        self._strategy = strategy
        self._tolerance = tolerance
        self._max_probes = max_probes
        self._cache: Dict[Tuple[float, float], CalibrationResult] = {}

    @property
    def chip(self) -> DRAMChip:
        """The chip this controller manages."""
        return self._chip

    @property
    def strategy(self) -> str:
        """Calibration strategy in use."""
        return self._strategy

    def interval_for(
        self, accuracy: float, temperature_c: float
    ) -> CalibrationResult:
        """Refresh interval holding the chip at ``accuracy`` at the given
        temperature.  Results are cached per (accuracy, temperature)."""
        key = (accuracy, temperature_c)
        if key not in self._cache:
            if self._strategy == "oracle":
                self._cache[key] = self._oracle(accuracy, temperature_c)
            else:
                self._cache[key] = self._measure(accuracy, temperature_c)
        return self._cache[key]

    # ------------------------------------------------------------------

    def _oracle(self, accuracy: float, temperature_c: float) -> CalibrationResult:
        error_rate = accuracy_to_error_rate(accuracy)
        interval = self._chip.interval_for_error_rate(error_rate, temperature_c)
        return CalibrationResult(
            interval_s=interval, achieved_error_rate=error_rate, probes=0
        )

    def _measure(self, accuracy: float, temperature_c: float) -> CalibrationResult:
        """Binary search on the decay interval using probe trials.

        Probe trials run with worst-case (all-charged) data so the
        measured error fraction equals the decayed-cell fraction.
        """
        target = accuracy_to_error_rate(accuracy)
        chip = self._chip
        previous_temperature = chip.temperature_c
        chip.set_temperature(temperature_c)
        pattern = chip.geometry.charged_pattern()
        try:
            low, high = self._bracket(pattern, target)
            probes_used = self._bracket_probes
            interval = 0.5 * (low + high)
            measured = self._probe_error_rate(pattern, interval)
            while (
                abs(measured - target) > self._tolerance * target
                and probes_used < self._max_probes
            ):
                if measured < target:
                    low = interval
                else:
                    high = interval
                interval = 0.5 * (low + high)
                measured = self._probe_error_rate(pattern, interval)
                probes_used += 1
            return CalibrationResult(
                interval_s=interval,
                achieved_error_rate=measured,
                probes=probes_used,
            )
        finally:
            chip.set_temperature(previous_temperature)

    def _bracket(self, pattern, target: float) -> Tuple[float, float]:
        """Find an interval range whose error rates straddle ``target``."""
        self._bracket_probes = 0
        low, high = 1e-3, 1.0
        while self._probe_error_rate(pattern, high) < target:
            high *= 4.0
            self._bracket_probes += 1
            if self._bracket_probes > self._max_probes:
                raise RuntimeError("calibration failed to bracket target error")
        while self._probe_error_rate(pattern, low) > target:
            low /= 4.0
            self._bracket_probes += 1
            if self._bracket_probes > self._max_probes:
                raise RuntimeError("calibration failed to bracket target error")
        return low, high

    def _probe_error_rate(self, pattern, interval_s: float) -> float:
        """Measured fraction of bits lost after one decay window."""
        readback = self._chip.decay_trial(pattern, interval_s)
        return (readback ^ pattern).popcount() / pattern.nbits
