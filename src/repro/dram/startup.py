"""Power-up (startup) value model — the counterfeit-origin side channel.

Talukder et al. ("Towards the Avoidance of Counterfeit Memory:
Identifying the DRAM Origin", arXiv:1911.03395) show that the values a
DRAM array holds right after power-on — before any write — carry two
signals at once: a *chip-unique* pattern usable as an identifier, and
*family-level statistics* (the fraction of cells that power up against
their default) that distinguish manufacturers and process generations,
which is what makes counterfeit parts detectable.

The physics behind both: at power-on each cell settles to a value set
by the mismatch between its capacitor and the sense amplifier.  Most
cells are strongly biased and power up the same way every time; a small
*weak* population sits near the metastable point and settles randomly
per power cycle.

The model here mirrors that structure on the simulated substrate:

* **Biased cells** hold a chip-unique preferred value drawn once from
  the chip's manufacturing seeds (mask + chip, like retention).  A
  fraction ``invert_fraction`` of them prefers the *opposite* of the
  cell's default — that fraction is the family-level statistic the
  counterfeit check monitors.
* **Weak cells** (fraction ``weak_fraction``, membership chip-unique)
  settle uniformly at random on every power-up.

Startup values are independent of retention, so this side channel does
**not** drift with retention aging — the property the fleet simulation
exploits when decay fingerprints go stale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bits import BitVector
from repro.dram.chip import DRAMChip

#: Seed-spawn keys separating startup randomness from retention draws.
_STARTUP_BIAS_KEY = 0x535550  # "SUP"
_STARTUP_WEAK_KEY = 0x57454B  # "WEK"


@dataclass(frozen=True)
class StartupModel:
    """Statistical description of a family's power-up behaviour.

    Parameters
    ----------
    weak_fraction:
        Fraction of cells whose power-up value is random per cycle.
    invert_fraction:
        Fraction of *biased* cells preferring the opposite of their
        default value — the family-level origin statistic.
    """

    weak_fraction: float = 0.05
    invert_fraction: float = 0.30

    def __post_init__(self) -> None:
        if not 0.0 <= self.weak_fraction < 1.0:
            raise ValueError("weak_fraction must be in [0, 1)")
        if not 0.0 < self.invert_fraction < 1.0:
            raise ValueError("invert_fraction must be in (0, 1)")


#: Default model shared by every simulated family unless overridden.
DEFAULT_STARTUP_MODEL = StartupModel()


def _chip_rng(chip: DRAMChip, spawn_key: int) -> np.random.Generator:
    """Manufacturing-locked RNG for one chip's startup structure."""
    return np.random.default_rng(
        np.random.SeedSequence(
            entropy=chip.chip_seed ^ (chip.mask_seed << 16),
            spawn_key=(spawn_key,),
        )
    )


def startup_structure(
    chip: DRAMChip, model: StartupModel = DEFAULT_STARTUP_MODEL
):
    """The chip's locked power-up structure: (preferred, weak_mask).

    ``preferred`` is the boolean value each cell settles to when it is
    biased; ``weak_mask`` marks the cells that instead settle randomly
    per power cycle.  Both are pure functions of the chip's
    manufacturing seeds, so two :class:`DRAMChip` objects with the same
    identity power up the same way — the property the counterfeit and
    identification checks rest on.
    """
    n_cells = chip.geometry.total_bits
    defaults = chip.geometry.default_array()
    bias_rng = _chip_rng(chip, _STARTUP_BIAS_KEY)
    inverted = bias_rng.random(n_cells) < model.invert_fraction
    preferred = np.where(inverted, ~defaults, defaults)
    weak_rng = _chip_rng(chip, _STARTUP_WEAK_KEY)
    weak_mask = weak_rng.random(n_cells) < model.weak_fraction
    return preferred, weak_mask


def startup_read(
    chip: DRAMChip,
    rng: np.random.Generator,
    model: StartupModel = DEFAULT_STARTUP_MODEL,
) -> BitVector:
    """One simulated power cycle: the array's contents at power-on.

    Biased cells return their preferred value; weak cells flip a coin
    from ``rng`` (per-trial noise, *not* manufacturing state — pass a
    fresh seeded generator per measurement campaign).
    """
    preferred, weak_mask = startup_structure(chip, model)
    values = preferred.copy()
    n_weak = int(weak_mask.sum())
    if n_weak:
        values[weak_mask] = rng.random(n_weak) < 0.5
    return BitVector.from_bool_array(values)


@dataclass(frozen=True)
class OriginStatistics:
    """Family-level startup statistics of one measured device.

    ``against_default_fraction`` is Talukder et al.'s headline origin
    signature: the fraction of cells powering up against their default.
    ``flaky_fraction`` estimates the weak-cell population from
    disagreement across reads.
    """

    against_default_fraction: float
    flaky_fraction: float

    def z_score(self, model: StartupModel) -> float:
        """Standardized deviation of the measured origin signature.

        Under ``model`` the expected against-default fraction is
        ``invert_fraction`` adjusted for the weak half-coin; a large
        absolute z-score marks a device whose startup statistics do not
        match the family it claims to be — the counterfeit signal.
        """
        expected = (
            model.invert_fraction * (1.0 - model.weak_fraction)
            + 0.5 * model.weak_fraction
        )
        variance = expected * (1.0 - expected)
        if variance <= 0.0:
            return 0.0
        return (self.against_default_fraction - expected) / float(
            np.sqrt(variance)
        )


def origin_statistics(
    chip: DRAMChip,
    rng: np.random.Generator,
    reads: int = 3,
    model: StartupModel = DEFAULT_STARTUP_MODEL,
) -> OriginStatistics:
    """Measure a device's origin statistics from ``reads`` power cycles."""
    if reads < 1:
        raise ValueError("need at least one startup read")
    defaults = chip.geometry.default_array()
    images = [
        startup_read(chip, rng, model).to_bool_array() for _ in range(reads)
    ]
    stacked = np.stack(images)
    against = float((stacked[0] != defaults).mean())
    flaky = float((stacked.max(axis=0) != stacked.min(axis=0)).mean())
    return OriginStatistics(
        against_default_fraction=against, flaky_fraction=flaky
    )
