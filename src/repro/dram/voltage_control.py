"""Voltage-mode approximate memory controller.

The refresh-interval controller (:mod:`repro.dram.controller`) turns
the paper's primary knob.  This module turns the other one named in §1
— "lowering the input voltage" (David et al., Deng et al.) — while the
refresh clock stays at the standard JEDEC period: the controller finds
the supply voltage at which the target fraction of cells decays within
one 64 ms refresh window.

Energy motivation: DRAM dynamic power scales roughly with VDD², so a
voltage-mode approximate system trades the same accuracy for a
quadratic supply-power saving instead of a refresh-rate saving — and,
as ``tests/dram/test_voltage.py`` shows, leaks exactly the same
fingerprint while doing it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.chip import DRAMChip
from repro.dram.controller import accuracy_to_error_rate
from repro.dram.retention import JEDEC_REFRESH_S


@dataclass(frozen=True)
class VoltageCalibration:
    """Outcome of one voltage-mode calibration."""

    supply_v: float
    achieved_error_rate: float
    probes: int

    def supply_power_saving(self, nominal_v: float) -> float:
        """Dynamic-power saving vs nominal, under the P ~ V^2 model."""
        return 1.0 - (self.supply_v / nominal_v) ** 2


class VoltageScalingController:
    """Chooses supply voltages that hold a chip at a target accuracy.

    ``oracle`` inverts the device's voltage model analytically from the
    retention quantile; ``measure`` bisects the rail with probe trials
    (write worst-case, one JEDEC window, read), the way a real
    closed-loop undervolting controller would.
    """

    def __init__(
        self,
        chip: DRAMChip,
        strategy: str = "oracle",
        refresh_interval_s: float = JEDEC_REFRESH_S,
        tolerance: float = 0.1,
        max_probes: int = 40,
    ):
        if strategy not in ("oracle", "measure"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if refresh_interval_s <= 0:
            raise ValueError("refresh_interval_s must be positive")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self._chip = chip
        self._strategy = strategy
        self._interval = refresh_interval_s
        self._tolerance = tolerance
        self._max_probes = max_probes

    @property
    def chip(self) -> DRAMChip:
        """The chip under control."""
        return self._chip

    @property
    def strategy(self) -> str:
        """Calibration strategy in use."""
        return self._strategy

    def voltage_for(
        self, accuracy: float, temperature_c: float = None
    ) -> VoltageCalibration:
        """Supply voltage holding the chip at ``accuracy`` under the
        standard refresh clock."""
        if temperature_c is None:
            temperature_c = self._chip.temperature_c
        if self._strategy == "oracle":
            return self._oracle(accuracy, temperature_c)
        return self._measure(accuracy, temperature_c)

    # ------------------------------------------------------------------

    def _oracle(self, accuracy: float, temperature_c: float) -> VoltageCalibration:
        """Invert ``t_q * thermal * (V/Vnom)^gamma = interval`` for V."""
        error_rate = accuracy_to_error_rate(accuracy)
        chip = self._chip
        voltage_model = chip.spec.voltage
        quantile_ref = float(
            np.quantile(chip.retention_reference_s, error_rate)
        )
        thermal_scale = chip.spec.thermal.retention_scale(temperature_c)
        needed_scale = self._interval / (quantile_ref * thermal_scale)
        supply = voltage_model.nominal_v * needed_scale ** (
            1.0 / voltage_model.gamma
        )
        supply = max(supply, voltage_model.min_v)
        return VoltageCalibration(
            supply_v=supply, achieved_error_rate=error_rate, probes=0
        )

    def _measure(self, accuracy: float, temperature_c: float) -> VoltageCalibration:
        """Bisect the rail against probe trials at the JEDEC window."""
        target = accuracy_to_error_rate(accuracy)
        chip = self._chip
        voltage_model = chip.spec.voltage
        saved_temperature = chip.temperature_c
        saved_voltage = chip.supply_voltage_v
        chip.set_temperature(temperature_c)
        pattern = chip.geometry.charged_pattern()

        def probe(supply: float) -> float:
            chip.set_supply_voltage(supply)
            readback = chip.decay_trial(pattern, self._interval)
            return (readback ^ pattern).popcount() / pattern.nbits

        try:
            # Lower rail -> more error.  Bracket between the floor and
            # the nominal voltage.
            low_v = voltage_model.min_v
            high_v = voltage_model.nominal_v
            probes = 2
            if probe(high_v) > target:
                # Already too lossy at nominal: nothing to undervolt.
                return VoltageCalibration(
                    supply_v=high_v,
                    achieved_error_rate=probe(high_v),
                    probes=probes,
                )
            supply = 0.5 * (low_v + high_v)
            measured = probe(supply)
            while (
                abs(measured - target) > self._tolerance * target
                and probes < self._max_probes
            ):
                if measured > target:
                    low_v = supply   # too lossy: raise the rail
                else:
                    high_v = supply  # too clean: drop the rail
                supply = 0.5 * (low_v + high_v)
                measured = probe(supply)
                probes += 1
            return VoltageCalibration(
                supply_v=supply, achieved_error_rate=measured, probes=probes
            )
        finally:
            chip.set_temperature(saved_temperature)
            chip.set_supply_voltage(saved_voltage)
