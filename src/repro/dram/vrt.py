"""Variable Retention Time (VRT) cell model.

Real DRAM has a small population of cells whose retention time toggles
between two metastable states (charge-trap driven random telegraph
noise); a cell can hold for seconds in one state and a tenth of that in
the other.  VRT is the main *physical* threat to fingerprint stability
beyond measurement noise: a VRT cell near the decay threshold drifts in
and out of the error pattern over timescales of minutes to days.

The paper's 21-trial consistency experiment implicitly bounds the
impact (≥98 % repeatability); this extension makes VRT an explicit,
tunable population so the robustness of characterization (which
suppresses unstable cells by intersection) can be studied directly:
``tests/dram/test_vrt.py`` and the consistency experiment exercise it.

Model: each chip owns a manufacturing-locked set of VRT cells
(``fraction`` of the array, chosen by the chip seed).  Each VRT cell is
a two-state Markov chain advanced once per decay window: with
probability ``toggle_probability`` it flips between its *strong* state
(nominal retention) and its *weak* state (retention divided by
``retention_ratio``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class VRTModel:
    """Population parameters for variable-retention-time cells.

    Parameters
    ----------
    fraction:
        Fraction of cells that are VRT-susceptible.
    retention_ratio:
        Retention divisor in the weak state (>1).
    toggle_probability:
        Per-decay-window probability that a VRT cell switches state.
    weak_initial_probability:
        Probability a VRT cell starts in its weak state.
    """

    fraction: float = 0.002
    retention_ratio: float = 5.0
    toggle_probability: float = 0.1
    weak_initial_probability: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.retention_ratio <= 1.0:
            raise ValueError("retention_ratio must exceed 1")
        if not 0.0 <= self.toggle_probability <= 1.0:
            raise ValueError("toggle_probability must be in [0, 1]")
        if not 0.0 <= self.weak_initial_probability <= 1.0:
            raise ValueError("weak_initial_probability must be in [0, 1]")


class VRTState:
    """Per-chip dynamic VRT state (which cells, which state).

    The *membership* of the VRT population is manufacturing randomness
    (derived from the chip seed); the *state trajectory* is runtime
    randomness (driven by the chip's noise RNG).
    """

    def __init__(self, model: VRTModel, n_cells: int, chip_seed: int,
                 rng: np.random.Generator):
        self._model = model
        self._rng = rng
        membership_rng = np.random.default_rng(
            np.random.SeedSequence(entropy=chip_seed, spawn_key=(0x565254,))
        )
        count = int(round(model.fraction * n_cells))
        self.cell_indices = np.sort(
            membership_rng.choice(n_cells, size=count, replace=False)
        )
        self.weak = rng.random(count) < model.weak_initial_probability

    @property
    def n_vrt_cells(self) -> int:
        """Size of the VRT population."""
        return self.cell_indices.size

    def retention_multipliers(self) -> np.ndarray:
        """Current retention multiplier for each VRT cell (1 or 1/ratio)."""
        multipliers = np.ones(self.n_vrt_cells)
        multipliers[self.weak] = 1.0 / self._model.retention_ratio
        return multipliers

    def advance(self) -> None:
        """Advance every VRT cell's Markov chain by one decay window."""
        if self.n_vrt_cells == 0:
            return
        toggles = self._rng.random(self.n_vrt_cells) < self._model.toggle_probability
        self.weak ^= toggles

    def apply(self, retention_s: np.ndarray) -> np.ndarray:
        """Copy of ``retention_s`` with current VRT multipliers applied.

        ``retention_s`` must cover the whole array (VRT indices are
        absolute cell positions).
        """
        adjusted = retention_s.copy()
        adjusted[self.cell_indices] *= self.retention_multipliers()
        return adjusted
