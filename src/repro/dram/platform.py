"""Experimental platform: the simulated counterpart of the paper's rig.

The paper's platform (§6, Figure 6) is an MSP430 microcontroller that
writes/reads a DRAM chip with automatic refresh disabled, inside a
thermal chamber, with a JTAG link hauling results back for analysis.
:class:`ExperimentPlatform` plays all of those roles: it sets the
chamber temperature, asks the controller for the refresh interval that
yields the requested accuracy, runs the write → decay → read sequence,
and packages the outcome as a :class:`TrialResult` carrying everything
the analysis layer needs (exact data, approximate readback, conditions,
ground-truth chip identity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.bits import BitVector
from repro.dram.chip import DRAMChip
from repro.dram.controller import ApproximateMemoryController
from repro.dram.devices import DeviceSpec


@dataclass(frozen=True)
class TrialConditions:
    """Operating point of one trial."""

    accuracy: float
    temperature_c: float

    def __post_init__(self) -> None:
        if not 0.0 < self.accuracy < 1.0:
            raise ValueError(f"accuracy must be in (0, 1), got {self.accuracy}")


@dataclass(frozen=True)
class TrialResult:
    """One approximate output together with its provenance.

    ``chip_label`` is ground truth for evaluating the attack; the
    attacker-side algorithms never look at it.
    """

    exact: BitVector
    approx: BitVector
    conditions: TrialConditions
    chip_label: str
    interval_s: float

    @property
    def error_string(self) -> BitVector:
        """XOR of approximate output and exact data (§5, Algorithm 1)."""
        return self.approx ^ self.exact

    @property
    def error_count(self) -> int:
        """Number of flipped bits in this output."""
        return self.error_string.popcount()

    @property
    def measured_error_rate(self) -> float:
        """Fraction of bits flipped in this output."""
        return self.error_count / self.exact.nbits


class ExperimentPlatform:
    """Thermal chamber + test harness around one chip."""

    def __init__(
        self,
        chip: DRAMChip,
        controller: Optional[ApproximateMemoryController] = None,
    ):
        self._chip = chip
        self._controller = (
            controller
            if controller is not None
            else ApproximateMemoryController(chip, strategy="oracle")
        )

    @property
    def chip(self) -> DRAMChip:
        """Chip currently mounted on the platform."""
        return self._chip

    @property
    def controller(self) -> ApproximateMemoryController:
        """Refresh controller used to hit target accuracies."""
        return self._controller

    def run_trial(
        self,
        conditions: TrialConditions,
        data: Optional[BitVector] = None,
    ) -> TrialResult:
        """Execute one write → decay → read trial.

        ``data`` defaults to the worst-case all-charged pattern (§6),
        which gives every cell the opportunity to decay.
        """
        chip = self._chip
        if data is None:
            data = chip.geometry.charged_pattern()
        chip.set_temperature(conditions.temperature_c)
        calibration = self._controller.interval_for(
            conditions.accuracy, conditions.temperature_c
        )
        approx = chip.decay_trial(data, calibration.interval_s)
        return TrialResult(
            exact=data,
            approx=approx,
            conditions=conditions,
            chip_label=chip.label,
            interval_s=calibration.interval_s,
        )

    def run_trials(
        self,
        conditions: Sequence[TrialConditions],
        data: Optional[BitVector] = None,
    ) -> List[TrialResult]:
        """Run one trial per operating point, in order."""
        return [self.run_trial(point, data) for point in conditions]


@dataclass
class ChipFamily:
    """A batch of chips from one fabrication run (shared mask).

    The paper evaluates 10 KM41464A chips; this helper manufactures an
    equivalent batch with distinct chip seeds but a common mask seed, so
    the mask-dependent capacitance component is genuinely shared.
    """

    spec: DeviceSpec
    n_chips: int
    mask_seed: int = 0
    base_chip_seed: int = 1000
    chips: List[DRAMChip] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_chips <= 0:
            raise ValueError("n_chips must be positive")
        self.chips = [
            DRAMChip(
                self.spec,
                chip_seed=self.base_chip_seed + index,
                mask_seed=self.mask_seed,
                label=f"{self.spec.name}#{index}",
            )
            for index in range(self.n_chips)
        ]

    def __iter__(self):
        return iter(self.chips)

    def __len__(self) -> int:
        return self.n_chips

    def __getitem__(self, index: int) -> DRAMChip:
        return self.chips[index]

    def platforms(self) -> List[ExperimentPlatform]:
        """One oracle-controlled platform per chip."""
        return [ExperimentPlatform(chip) for chip in self.chips]
