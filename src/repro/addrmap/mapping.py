"""Physical DRAM address-mapping functions (GF(2)-linear model).

A memory controller does not lay pages out contiguously: the physical
page address is decomposed into **channel / rank / bank / row /
column** coordinates, and on every platform the paper's era onward the
interleave coordinates are *XOR-folded* functions of the address bits
(the reverse-engineered Intel functions of the Rowhammer literature;
DRAMA, FP-Rowhammer).  Every such decomposition — including the plain
linear-offset ones and the KM41464A's degenerate flat layout — is a
linear bijection on address bits over GF(2).

:class:`MappingFunction` represents the map explicitly as one XOR mask
per physical address bit: physical bit ``j`` is the parity of
``logical & masks[j]``.  Construction verifies the map is invertible
(a bijection) and precomputes the inverse; translation is vectorized
over numpy ``uint64`` arrays so the fingerprint pipeline can translate
whole placements per call.

Field semantics live in :class:`FieldLayout`: the *physical* address
packs, LSB to MSB, ``column | channel | rank | bank | row``.  Column
bits address pages within one DRAM row; channel/rank/bank are the
interleave coordinates the recovery attacker targets; row bits select
the refresh-granular row.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.addrmap import gf2

#: Version stamped into mapping JSON documents.
MAPPING_SCHEMA_VERSION = 1

#: Field names, in physical-address LSB-to-MSB order.
FIELD_ORDER = ("column", "channel", "rank", "bank", "row")

#: Interleave fields — the coordinates XOR-folded by real controllers
#: and the target of mapping recovery.
INTERLEAVE_FIELDS = ("channel", "rank", "bank")


class MappingError(ValueError):
    """An address mapping that is not a verified bijection."""


@dataclass(frozen=True)
class FieldLayout:
    """Bit widths of the physical-address fields (page granularity).

    ``column_bits`` counts pages per DRAM row (a 4 KB-page model of an
    8 KB row has one column bit); ``row_bits`` must be positive — every
    device has rows.  The degenerate single-channel / single-rank /
    single-bank chip (the paper's KM41464A) sets the corresponding
    widths to zero.
    """

    column_bits: int = 0
    channel_bits: int = 0
    rank_bits: int = 0
    bank_bits: int = 0
    row_bits: int = 1

    def __post_init__(self) -> None:
        for name in (
            "column_bits", "channel_bits", "rank_bits", "bank_bits", "row_bits"
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.row_bits <= 0:
            raise ValueError("row_bits must be positive (devices have rows)")

    @property
    def address_bits(self) -> int:
        """Total width of a physical (and logical) page address."""
        return (
            self.column_bits + self.channel_bits + self.rank_bits
            + self.bank_bits + self.row_bits
        )

    @property
    def interleave_bits(self) -> int:
        """Channel + rank + bank width — the XOR-foldable coordinates."""
        return self.channel_bits + self.rank_bits + self.bank_bits

    def widths(self) -> Dict[str, int]:
        """Field name → bit width, in :data:`FIELD_ORDER`."""
        return {
            "column": self.column_bits,
            "channel": self.channel_bits,
            "rank": self.rank_bits,
            "bank": self.bank_bits,
            "row": self.row_bits,
        }

    def field_positions(self, field: str) -> range:
        """Physical bit positions of ``field`` (LSB-first packing)."""
        offset = 0
        for name in FIELD_ORDER:
            width = self.widths()[name]
            if name == field:
                return range(offset, offset + width)
            offset += width
        raise KeyError(f"unknown field {field!r}; known: {FIELD_ORDER}")

    def to_json(self) -> Dict[str, int]:
        """JSON-serializable widths."""
        return {f"{name}_bits": width for name, width in self.widths().items()}

    @classmethod
    def from_json(cls, payload: Dict[str, int]) -> "FieldLayout":
        """Inverse of :meth:`to_json`."""
        return cls(**{key: int(value) for key, value in payload.items()})


@dataclass(frozen=True)
class DramCoordinate:
    """One page's physical location in the device hierarchy."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int


def _parity_u64(values: np.ndarray) -> np.ndarray:
    """Vectorized bit-parity of a uint64 array."""
    folded = values.astype(np.uint64, copy=True)
    for shift in (32, 16, 8, 4, 2, 1):
        folded ^= folded >> np.uint64(shift)
    return folded & np.uint64(1)


@dataclass(frozen=True)
class MappingFunction:
    """A verified-bijective logical↔physical page-address map.

    ``masks[j]`` is the XOR mask over *logical* address bits producing
    *physical* bit ``j``.  Construction inverts the map over GF(2) and
    raises :class:`MappingError` when it is singular, so holding a
    ``MappingFunction`` is proof of bijectivity over the full
    ``2**address_bits`` space.
    """

    layout: FieldLayout
    masks: Tuple[int, ...]

    def __post_init__(self) -> None:
        n = self.layout.address_bits
        if len(self.masks) != n:
            raise MappingError(
                f"layout has {n} address bits but {len(self.masks)} masks "
                "were given (one mask per physical bit)"
            )
        limit = 1 << n
        for j, mask in enumerate(self.masks):
            if not 0 <= mask < limit:
                raise MappingError(
                    f"mask for physical bit {j} ({mask:#x}) uses bits "
                    f"outside the {n}-bit address space"
                )
        inverse = gf2.invert(self.masks, n)
        if inverse is None:
            raise MappingError(
                "mapping is singular (two logical pages would share one "
                "physical page); XOR masks must form an invertible "
                "GF(2) matrix"
            )
        object.__setattr__(self, "_inverse_masks", tuple(inverse))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def address_bits(self) -> int:
        """Width of the address space."""
        return self.layout.address_bits

    @property
    def total_pages(self) -> int:
        """Size of the full address space."""
        return 1 << self.layout.address_bits

    @property
    def inverse_masks(self) -> Tuple[int, ...]:
        """Masks of the inverse map (physical → logical)."""
        return self._inverse_masks  # type: ignore[attr-defined]

    @property
    def is_flat(self) -> bool:
        """True for the identity (contiguous, un-interleaved) map."""
        return all(mask == 1 << j for j, mask in enumerate(self.masks))

    def field_masks(self, field: str) -> Tuple[int, ...]:
        """Logical-space XOR masks computing one physical field."""
        return tuple(
            self.masks[j] for j in self.layout.field_positions(field)
        )

    def colocation_masks(self, fields: Iterable[str]) -> Tuple[int, ...]:
        """Masks that must all have even parity on ``a ^ b`` for two
        logical pages to share the given physical fields."""
        masks: List[int] = []
        for field in fields:
            masks.extend(self.field_masks(field))
        return tuple(masks)

    @property
    def interleave_masks(self) -> Tuple[int, ...]:
        """The channel/rank/bank function masks — the recovery target."""
        return self.colocation_masks(INTERLEAVE_FIELDS)

    def interleave_span(self) -> Tuple[int, ...]:
        """Canonical (RREF) span of the interleave masks.

        Two mappings induce the same bank/rank/channel co-location
        structure exactly when their spans are equal, so this is the
        comparison key for recovered mappings.
        """
        return gf2.rref(self.interleave_masks)

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------

    def _check_scalar(self, address: int, direction: str) -> None:
        if not 0 <= address < self.total_pages:
            raise IndexError(
                f"{direction} page {address} out of range for "
                f"{self.address_bits}-bit mapping"
            )

    def to_physical_scalar(self, logical: int) -> int:
        """Reference (scalar) logical → physical translation."""
        self._check_scalar(logical, "logical")
        physical = 0
        for j, mask in enumerate(self.masks):
            physical |= gf2.dot(mask, logical) << j
        return physical

    def to_logical_scalar(self, physical: int) -> int:
        """Reference (scalar) physical → logical translation."""
        self._check_scalar(physical, "physical")
        logical = 0
        for i, mask in enumerate(self.inverse_masks):
            logical |= gf2.dot(mask, physical) << i
        return logical

    def _translate_batch(
        self, addresses: np.ndarray, masks: Sequence[int], direction: str
    ) -> np.ndarray:
        array = np.asarray(addresses, dtype=np.uint64)
        if array.size and int(array.max()) >= self.total_pages:
            raise IndexError(
                f"{direction} page {int(array.max())} out of range for "
                f"{self.address_bits}-bit mapping"
            )
        out = np.zeros_like(array)
        for j, mask in enumerate(masks):
            out |= _parity_u64(array & np.uint64(mask)) << np.uint64(j)
        return out

    def to_physical(
        self, logical: Union[int, np.ndarray]
    ) -> Union[int, np.ndarray]:
        """Vectorized logical → physical translation (scalar passthrough)."""
        if isinstance(logical, (int, np.integer)):
            return self.to_physical_scalar(int(logical))
        return self._translate_batch(logical, self.masks, "logical")

    def to_logical(
        self, physical: Union[int, np.ndarray]
    ) -> Union[int, np.ndarray]:
        """Vectorized physical → logical translation (scalar passthrough)."""
        if isinstance(physical, (int, np.integer)):
            return self.to_logical_scalar(int(physical))
        return self._translate_batch(physical, self.inverse_masks, "physical")

    # ------------------------------------------------------------------
    # Coordinates and co-location
    # ------------------------------------------------------------------

    def _extract_field(
        self, physical: np.ndarray, field: str
    ) -> np.ndarray:
        positions = self.layout.field_positions(field)
        if len(positions) == 0:
            return np.zeros_like(physical)
        start = np.uint64(positions.start)
        mask = np.uint64((1 << len(positions)) - 1)
        return (physical >> start) & mask

    def decompose(self, logical: int) -> DramCoordinate:
        """Physical device coordinates of one logical page."""
        physical = self.to_physical_scalar(logical)
        values = {}
        for field in FIELD_ORDER:
            positions = self.layout.field_positions(field)
            width_mask = (1 << len(positions)) - 1
            values[field] = (physical >> positions.start) & width_mask
        return DramCoordinate(
            channel=values["channel"],
            rank=values["rank"],
            bank=values["bank"],
            row=values["row"],
            column=values["column"],
        )

    def coordinates(self, logical: np.ndarray) -> Dict[str, np.ndarray]:
        """Vectorized :meth:`decompose`: field name → value array."""
        physical = np.asarray(
            self.to_physical(np.asarray(logical, dtype=np.uint64))
        )
        return {
            field: self._extract_field(physical, field)
            for field in FIELD_ORDER
        }

    def colocated(self, a: int, b: int, fields: Iterable[str]) -> bool:
        """True when two logical pages share the given physical fields.

        Linearity makes this a function of ``a ^ b`` alone — the fact
        the recovery attacker exploits.
        """
        delta = a ^ b
        return all(
            gf2.dot(mask, delta) == 0
            for mask in self.colocation_masks(fields)
        )

    def same_bank_group(self, a: int, b: int) -> bool:
        """Share channel, rank and bank (same physically-banked unit)."""
        return self.colocated(a, b, INTERLEAVE_FIELDS)

    def same_row(self, a: int, b: int) -> bool:
        """Share channel, rank, bank *and* row (same refresh unit)."""
        return self.colocated(a, b, INTERLEAVE_FIELDS + ("row",))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        """JSON document (masks as hex strings for legibility)."""
        return {
            "schema_version": MAPPING_SCHEMA_VERSION,
            "layout": self.layout.to_json(),
            "masks": [hex(mask) for mask in self.masks],
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "MappingFunction":
        """Inverse of :meth:`to_json` (re-verifies bijectivity)."""
        version = payload.get("schema_version")
        if version != MAPPING_SCHEMA_VERSION:
            raise MappingError(
                f"unsupported mapping schema_version {version!r}"
            )
        layout = FieldLayout.from_json(payload["layout"])  # type: ignore[arg-type]
        masks = tuple(int(mask, 16) for mask in payload["masks"])  # type: ignore[union-attr]
        return cls(layout=layout, masks=masks)

    def dumps(self) -> str:
        """Pretty JSON string of :meth:`to_json`."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------


def flat_mapping(
    address_bits: int, layout: Optional[FieldLayout] = None
) -> MappingFunction:
    """The identity map: logical page == physical page.

    This is the degenerate single-channel/rank/bank case — the paper's
    KM41464A platform, and the implicit assumption the stitching
    experiment made before this layer existed.
    """
    if layout is None:
        layout = FieldLayout(row_bits=address_bits)
    if layout.address_bits != address_bits:
        raise MappingError(
            f"layout covers {layout.address_bits} bits, "
            f"expected {address_bits}"
        )
    return MappingFunction(
        layout=layout,
        masks=tuple(1 << j for j in range(address_bits)),
    )


def km41464a_mapping() -> MappingFunction:
    """Flat mapping of the KM41464A's 256 rows (one page per row).

    The 64 K x 4 bit part has one internal array: no channels, ranks or
    banks to interleave, so the physical decomposition is row index ==
    page index.
    """
    return flat_mapping(8, FieldLayout(row_bits=8))


def _ddr2_layout(address_bits: int) -> FieldLayout:
    """DDR2-style field widths scaled to ``address_bits`` pages.

    One column bit (8 KB rows of 4 KB pages), one channel, one rank,
    four banks (DDR2 x8 parts expose 4 or 8); the rest is rows.
    """
    fixed = 1 + 1 + 1 + 2
    if address_bits <= fixed:
        raise MappingError(
            f"DDR2 presets need more than {fixed} address bits, "
            f"got {address_bits}"
        )
    return FieldLayout(
        column_bits=1,
        channel_bits=1,
        rank_bits=1,
        bank_bits=2,
        row_bits=address_bits - fixed,
    )


def ddr2_linear_mapping(address_bits: int = 13) -> MappingFunction:
    """DDR2 linear-offset decomposition (bit reorder, no XOR folding).

    Consecutive logical pages alternate channels, then columns, then
    banks — the stride interleave of a controller with XOR folding
    disabled.  Logical LSB-first source order: channel, column, bank,
    rank, row.
    """
    layout = _ddr2_layout(address_bits)
    source_order: List[Tuple[str, int]] = []
    for field in ("channel", "column", "bank", "rank", "row"):
        source_order.extend(
            (field, k) for k in range(layout.widths()[field])
        )
    source_of = {
        field_bit: position for position, field_bit in enumerate(source_order)
    }
    masks = [0] * address_bits
    for field in FIELD_ORDER:
        for k, j in enumerate(layout.field_positions(field)):
            masks[j] = 1 << source_of[(field, k)]
    return MappingFunction(layout=layout, masks=tuple(masks))


def ddr2_xor_mapping(address_bits: int = 13) -> MappingFunction:
    """DDR2 decomposition with XOR-folded bank/channel functions.

    Starts from :func:`ddr2_linear_mapping` and folds low row bits into
    the bank and channel functions — the shape of the reverse-
    engineered Intel addressing functions (bank XOR-ed with row bits to
    spread row-buffer conflicts).  Row-op folding keeps the matrix
    invertible by construction.
    """
    linear = ddr2_linear_mapping(address_bits)
    layout = linear.layout
    masks = list(linear.masks)
    row_positions = list(layout.field_positions("row"))
    fold_targets = list(layout.field_positions("bank")) + list(
        layout.field_positions("channel")
    )
    for k, j in enumerate(fold_targets):
        masks[j] ^= masks[row_positions[k % len(row_positions)]]
    return MappingFunction(layout=layout, masks=tuple(masks))


def random_mapping(
    layout: FieldLayout, rng: np.random.Generator, folds: int = 16
) -> MappingFunction:
    """Random invertible mapping: a bit permutation plus XOR folds.

    Built from elementary operations only (source permutation, then
    ``masks[j] ^= masks[k]`` with ``j != k``), so the result is
    invertible by construction — property tests use it to exercise the
    bijection verifier across arbitrary geometries.
    """
    n = layout.address_bits
    permutation = rng.permutation(n)
    masks = [1 << int(source) for source in permutation]
    for _ in range(folds if n >= 2 else 0):
        j, k = (int(v) for v in rng.choice(n, size=2, replace=False))
        masks[j] ^= masks[k]
    return MappingFunction(layout=layout, masks=tuple(masks))


#: CLI preset names → constructors taking ``address_bits``.
def preset_mapping(name: str, address_bits: Optional[int] = None) -> MappingFunction:
    """Look up a named preset (CLI / experiment configuration)."""
    if name == "flat":
        return flat_mapping(13 if address_bits is None else address_bits)
    if name == "km41464a":
        if address_bits not in (None, 8):
            raise MappingError("km41464a is a fixed 8-bit (256-row) preset")
        return km41464a_mapping()
    if name == "ddr2-linear":
        return ddr2_linear_mapping(13 if address_bits is None else address_bits)
    if name == "ddr2-xor":
        return ddr2_xor_mapping(13 if address_bits is None else address_bits)
    raise MappingError(
        f"unknown mapping preset {name!r}; "
        "available: flat, km41464a, ddr2-linear, ddr2-xor"
    )
