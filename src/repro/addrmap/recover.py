"""Mapping recovery: learn XOR interleave functions from co-decay.

The partial-knowledge attacker of this layer does not know the
controller's channel/rank/bank functions, only that they are XOR folds
of address bits (true of every documented or reverse-engineered
controller; the linear structure is the standing assumption of the
DRAMA / FP-Rowhammer line of work).  What they *can* observe is decay:
pages sharing a physical bank group share a staggered refresh phase,
so their volatile cells decay in the same window — a co-occurrence of
decay clusters that acts as a *same-bank oracle*.

Linearity makes the oracle a function of the XOR of the two queried
addresses: ``same_bank(a, b)`` holds iff ``a ^ b`` lies in the kernel
of the interleave functions.  Recovery is therefore null-space
learning:

1. probe single-bit deltas (cheap wins: every address bit no function
   uses),
2. sample random deltas, keeping those the oracle places in the
   kernel (for ``k`` interleave bits a random delta hits the kernel
   with probability ``2**-k`` — a handful of banks makes this fast),
3. stop when the kernel basis reaches the expected dimension (partial
   knowledge: datasheets state bank/rank/channel counts) or stalls,
4. the recovered interleave functions are the kernel's orthogonal
   complement, reported in canonical (RREF) form.

Every physical probe — including majority-vote repeats that pay down
measurement noise — is charged against a :class:`QueryBudget`; the
attacker either converges within budget or reports failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.addrmap import gf2
from repro.addrmap.mapping import MappingFunction
from repro.addrmap.memory import InterleavedApproximateMemory
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class BudgetExceededError(RuntimeError):
    """The recovery attacker ran out of probe budget."""


class QueryBudget:
    """Tracks physical probes spent against a hard limit."""

    def __init__(self, limit: int):
        if limit <= 0:
            raise ValueError(f"budget limit must be positive, got {limit}")
        self._limit = int(limit)
        self._used = 0

    @property
    def limit(self) -> int:
        """Total probes allowed."""
        return self._limit

    @property
    def used(self) -> int:
        """Probes spent so far."""
        return self._used

    @property
    def remaining(self) -> int:
        """Probes left before exhaustion."""
        return self._limit - self._used

    def charge(self, probes: int = 1) -> None:
        """Spend ``probes``; raises :class:`BudgetExceededError` when
        the limit would be crossed."""
        if self._used + probes > self._limit:
            raise BudgetExceededError(
                f"query budget exhausted: {self._used} used + {probes} "
                f"requested > {self._limit} allowed"
            )
        self._used += probes


@dataclass
class AddrmapMetrics:
    """The ``repro_addrmap_*`` instruments, bound to one registry."""

    recovery_queries: Counter
    recovery_rounds: Counter
    recoveries: Counter
    recovery_failures: Counter
    kernel_dim: Gauge
    recovery_query_spread: Histogram
    translated_pages: Counter


def register_addrmap_metrics(registry: MetricsRegistry) -> AddrmapMetrics:
    """Create the addrmap instrument set on ``registry``."""
    return AddrmapMetrics(
        recovery_queries=registry.counter(
            "repro_addrmap_recovery_queries_total",
            "physical co-decay probes spent on mapping recovery",
        ),
        recovery_rounds=registry.counter(
            "repro_addrmap_recovery_rounds_total",
            "oracle rounds (majority votes) during mapping recovery",
        ),
        recoveries=registry.counter(
            "repro_addrmap_recoveries_total",
            "mapping recoveries that converged within budget",
        ),
        recovery_failures=registry.counter(
            "repro_addrmap_recovery_failures_total",
            "mapping recoveries that exhausted their budget",
        ),
        kernel_dim=registry.gauge(
            "repro_addrmap_kernel_dim",
            "dimension of the learned co-location kernel",
        ),
        recovery_query_spread=registry.histogram(
            "repro_addrmap_recovery_queries",
            "probes needed per recovery",
            buckets=[128, 256, 512, 1024, 2048, 4096, 8192, 16384],
        ),
        translated_pages=registry.counter(
            "repro_addrmap_translated_pages_total",
            "pages translated through a mapping by instrumented callers",
        ),
    )


class CoDecayOracle:
    """Budgeted, majority-voted front end over a machine's co-decay.

    One :meth:`colocated` round costs ``repeats`` probes (each charged
    to the budget); the majority answer suppresses ``probe_error``
    noise quadratically.
    """

    def __init__(
        self,
        memory: InterleavedApproximateMemory,
        budget: QueryBudget,
        rng: np.random.Generator,
        repeats: int = 3,
        probe_error: float = 0.0,
        metrics: Optional[AddrmapMetrics] = None,
    ):
        if repeats <= 0:
            raise ValueError(f"repeats must be positive, got {repeats}")
        if not 0.0 <= probe_error < 0.5:
            raise ValueError(
                f"probe_error must be in [0, 0.5), got {probe_error}"
            )
        self._memory = memory
        self._budget = budget
        self._rng = rng
        self._repeats = repeats
        self._probe_error = probe_error
        self._metrics = metrics

    @property
    def budget(self) -> QueryBudget:
        """The probe budget this oracle charges."""
        return self._budget

    @property
    def address_bits(self) -> int:
        """Address width of the probed machine."""
        return self._memory.geometry.address_bits

    def colocated(self, page_a: int, page_b: int) -> bool:
        """Majority-voted same-bank-group answer for two pages."""
        votes = 0
        for _ in range(self._repeats):
            self._budget.charge(1)
            if self._metrics is not None:
                self._metrics.recovery_queries.inc()
            if self._memory.co_decay_probe(
                page_a, page_b, self._rng, probe_error=self._probe_error
            ):
                votes += 1
        if self._metrics is not None:
            self._metrics.recovery_rounds.inc()
        return votes * 2 > self._repeats


@dataclass(frozen=True)
class RecoveredMapping:
    """Outcome of one mapping-recovery run.

    ``interleave_masks`` are the recovered channel/rank/bank XOR
    functions in canonical (RREF) form — recoverable only up to an
    invertible relabeling of bank numbers, which RREF quotients out, so
    equality with :meth:`MappingFunction.interleave_span` is exactly
    "induces the same co-location structure".
    """

    address_bits: int
    interleave_masks: Tuple[int, ...]
    kernel_basis: Tuple[int, ...]
    converged: bool
    queries_used: int
    budget_limit: int

    @property
    def interleave_bits(self) -> int:
        """Number of independent interleave functions recovered."""
        return len(self.interleave_masks)

    def matches(self, mapping: MappingFunction) -> bool:
        """True when the recovery equals the mapping's true structure."""
        return self.interleave_masks == mapping.interleave_span()

    def bank_classes(self, pages: np.ndarray) -> np.ndarray:
        """Recovered-bank class label of each page.

        Labels are canonical up to the recovery's relabeling freedom;
        distinct-count statistics are relabeling-invariant.
        """
        array = np.asarray(pages, dtype=np.uint64)
        labels = np.zeros_like(array)
        for mask in self.interleave_masks:
            folded = array & np.uint64(mask)
            for shift in (32, 16, 8, 4, 2, 1):
                folded ^= folded >> np.uint64(shift)
            labels = (labels << np.uint64(1)) | (folded & np.uint64(1))
        return labels

    def to_json(self) -> Dict[str, object]:
        """JSON document for the CLI artifact."""
        return {
            "schema_version": 1,
            "address_bits": self.address_bits,
            "interleave_masks": [hex(m) for m in self.interleave_masks],
            "kernel_basis": [hex(m) for m in self.kernel_basis],
            "converged": self.converged,
            "queries_used": self.queries_used,
            "budget_limit": self.budget_limit,
        }


@dataclass
class _KernelLearner:
    """Incremental RREF basis of observed kernel (same-bank) deltas."""

    basis: List[int] = field(default_factory=list)

    @property
    def dim(self) -> int:
        return len(self.basis)

    def knows(self, delta: int) -> bool:
        return gf2.in_span(delta, self.basis)

    def add(self, delta: int) -> bool:
        """Insert a kernel vector; returns True if it was new."""
        if self.knows(delta):
            return False
        self.basis = list(gf2.rref(list(self.basis) + [delta]))
        return True


def recover_interleave(
    oracle: CoDecayOracle,
    rng: np.random.Generator,
    expected_interleave_bits: Optional[int] = None,
    patience: int = 200,
    known_kernel: Tuple[int, ...] = (),
) -> RecoveredMapping:
    """Recover the interleave functions through a co-decay oracle.

    ``expected_interleave_bits`` encodes the attacker's partial
    knowledge (bank/rank/channel counts from the datasheet): recovery
    stops the moment the kernel dimension accounts for every other
    bit.  Without it, recovery stops after ``patience`` consecutive
    uninformative rounds.  ``known_kernel`` seeds already-known
    co-located deltas (e.g. column bits from a prior run).

    Never raises on exhaustion: a budget overrun returns a result with
    ``converged=False`` and whatever structure was learned.
    """
    n = oracle.address_bits
    if n <= 0:
        raise ValueError("oracle must cover a positive address width")
    if expected_interleave_bits is not None and not (
        0 <= expected_interleave_bits < n
    ):
        raise ValueError(
            f"expected_interleave_bits must be in [0, {n}), "
            f"got {expected_interleave_bits}"
        )
    learner = _KernelLearner()
    for delta in known_kernel:
        learner.add(delta)
    target_dim = (
        None
        if expected_interleave_bits is None
        else n - expected_interleave_bits
    )
    total = 1 << n
    converged = False
    exhausted = False

    def done() -> bool:
        return target_dim is not None and learner.dim >= target_dim

    try:
        # Pass 1: single-bit deltas — every bit no function uses is a
        # kernel vector, learned in one round each.
        for bit in range(n):
            if done():
                break
            delta = 1 << bit
            if learner.knows(delta):
                continue
            base = int(rng.integers(0, total))
            if oracle.colocated(base, base ^ delta):
                learner.add(delta)
        # Pass 2: random deltas pick up the XOR-folded combinations.
        stall = 0
        while not done() and stall < patience:
            delta = int(rng.integers(1, total))
            if learner.knows(delta):
                continue
            base = int(rng.integers(0, total))
            if oracle.colocated(base, base ^ delta):
                # Confirm at a second base before trusting: a false
                # positive here would corrupt the basis, and kernel
                # hits are rare enough that the extra round is cheap.
                confirm = int(rng.integers(0, total))
                if oracle.colocated(confirm, confirm ^ delta):
                    learner.add(delta)
                    stall = 0
                    continue
            stall += 1
        converged = done() or (target_dim is None and learner.dim > 0)
    except BudgetExceededError:
        exhausted = True

    masks = gf2.complement_basis(learner.basis, n)
    return RecoveredMapping(
        address_bits=n,
        interleave_masks=masks,
        kernel_basis=tuple(learner.basis),
        converged=converged and not exhausted,
        queries_used=oracle.budget.used,
        budget_limit=oracle.budget.limit,
    )


def run_recovery(
    memory: InterleavedApproximateMemory,
    budget_limit: int,
    rng: np.random.Generator,
    repeats: int = 3,
    probe_error: float = 0.0,
    expected_interleave_bits: Optional[int] = None,
    patience: int = 200,
    metrics: Optional[AddrmapMetrics] = None,
) -> RecoveredMapping:
    """End-to-end recovery against one machine (oracle + attacker).

    ``expected_interleave_bits`` defaults to the machine's true
    interleave width when omitted — the datasheet-knowledge attacker.
    """
    if expected_interleave_bits is None:
        expected_interleave_bits = memory.geometry.layout.interleave_bits
    budget = QueryBudget(budget_limit)
    oracle = CoDecayOracle(
        memory,
        budget,
        rng,
        repeats=repeats,
        probe_error=probe_error,
        metrics=metrics,
    )
    recovered = recover_interleave(
        oracle,
        rng,
        expected_interleave_bits=expected_interleave_bits,
        patience=patience,
    )
    if metrics is not None:
        metrics.kernel_dim.set(len(recovered.kernel_basis))
        metrics.recovery_query_spread.observe(recovered.queries_used)
        if recovered.converged:
            metrics.recoveries.inc()
        else:
            metrics.recovery_failures.inc()
    return recovered
