"""Mapped physical geometry: the adapter between mappings and models.

:class:`MappedGeometry` binds a :class:`~repro.addrmap.mapping.
MappingFunction` to a concrete page count and is what the rest of the
system consumes: the stitching experiment, the interleaved memory
model and the CLI all speak ``MappedGeometry``, never raw masks.

The mapping itself is a verified bijection over the full
``2**address_bits`` space; a geometry may cover *fewer* pages (devices
with non-power-of-two row counts), in which case construction verifies
the restriction is still closed — every logical page below
``total_pages`` must land on a physical page below ``total_pages`` —
and therefore still a bijection on the valid domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.addrmap.mapping import (
    FieldLayout,
    MappingError,
    MappingFunction,
    flat_mapping,
)
from repro.dram.geometry import ChipGeometry


@dataclass(frozen=True)
class MappedCoverage:
    """Physical coverage of a set of pages, per device coordinate."""

    pages: int
    rows_touched: int
    rows_complete: int
    banks_touched: int
    channels_touched: int

    def to_metrics(self, prefix: str = "addrmap") -> Dict[str, float]:
        """Flat float dict for experiment reports."""
        return {
            f"{prefix}_pages_covered": float(self.pages),
            f"{prefix}_rows_touched": float(self.rows_touched),
            f"{prefix}_rows_complete": float(self.rows_complete),
            f"{prefix}_banks_touched": float(self.banks_touched),
            f"{prefix}_channels_touched": float(self.channels_touched),
        }


@dataclass(frozen=True)
class MappedGeometry:
    """A mapping restricted to (and verified over) ``total_pages``."""

    mapping: MappingFunction
    total_pages: Optional[int] = None

    def __post_init__(self) -> None:
        full = self.mapping.total_pages
        total = full if self.total_pages is None else int(self.total_pages)
        if not 0 < total <= full:
            raise MappingError(
                f"total_pages must be in (0, {full}], got {self.total_pages}"
            )
        object.__setattr__(self, "total_pages", total)
        if total < full:
            physical = self.mapping.to_physical(
                np.arange(total, dtype=np.uint64)
            )
            escaped = np.nonzero(physical >= total)[0]
            if escaped.size:
                page = int(escaped[0])
                raise MappingError(
                    f"mapping is not closed over {total} pages: logical "
                    f"page {page} maps to physical page "
                    f"{int(physical[page])} (use a power-of-two page count "
                    "or a mapping that keeps the padded range invariant)"
                )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def layout(self) -> FieldLayout:
        """Field widths of the physical decomposition."""
        return self.mapping.layout

    @property
    def address_bits(self) -> int:
        """Address width of the underlying mapping."""
        return self.mapping.address_bits

    @property
    def pages_per_row(self) -> int:
        """Pages sharing one DRAM row (the refresh/decay unit)."""
        return 1 << self.layout.column_bits

    @property
    def is_flat(self) -> bool:
        """True when logical and physical pages coincide."""
        return self.mapping.is_flat

    @property
    def is_interleaved(self) -> bool:
        """True when channel/rank/bank coordinates exist to recover."""
        return self.layout.interleave_bits > 0

    def describe(self) -> str:
        """One-line human summary."""
        widths = self.layout.widths()
        fields = " ".join(
            f"{name}:{width}" for name, width in widths.items() if width
        )
        kind = "flat" if self.is_flat else "interleaved"
        return (
            f"{self.total_pages} pages, {self.address_bits}-bit {kind} "
            f"mapping ({fields})"
        )

    # ------------------------------------------------------------------
    # Translation adapters
    # ------------------------------------------------------------------

    def _check_range(self, pages: np.ndarray, direction: str) -> None:
        if pages.size and int(pages.max()) >= self.total_pages:
            raise IndexError(
                f"{direction} page {int(pages.max())} out of range for "
                f"{self.total_pages} pages"
            )

    def physical_page(self, logical: int) -> int:
        """Physical page frame holding one logical page."""
        if not 0 <= logical < self.total_pages:
            raise IndexError(
                f"logical page {logical} out of range for "
                f"{self.total_pages} pages"
            )
        return self.mapping.to_physical_scalar(logical)

    def logical_page(self, physical: int) -> int:
        """Logical page stored in one physical page frame."""
        if not 0 <= physical < self.total_pages:
            raise IndexError(
                f"physical page {physical} out of range for "
                f"{self.total_pages} pages"
            )
        return self.mapping.to_logical_scalar(physical)

    def physical_pages(self, logical: Sequence[int]) -> np.ndarray:
        """Vectorized :meth:`physical_page`."""
        array = np.asarray(logical, dtype=np.uint64)
        self._check_range(array, "logical")
        return np.asarray(self.mapping.to_physical(array))

    def logical_pages(self, physical: Sequence[int]) -> np.ndarray:
        """Vectorized :meth:`logical_page`."""
        array = np.asarray(physical, dtype=np.uint64)
        self._check_range(array, "physical")
        return np.asarray(self.mapping.to_logical(array))

    def coordinates(self, logical: Sequence[int]) -> Dict[str, np.ndarray]:
        """Vectorized device coordinates of logical pages."""
        array = np.asarray(logical, dtype=np.uint64)
        self._check_range(array, "logical")
        return self.mapping.coordinates(array)

    # ------------------------------------------------------------------
    # Coverage
    # ------------------------------------------------------------------

    def coverage(self, logical: Sequence[int]) -> MappedCoverage:
        """Physical coverage summary of a logical page set.

        ``rows_complete`` counts DRAM rows *every* page of which is in
        the set — the rows an attacker holding these fingerprints can
        target end-to-end (the Rowhammer-adjacent figure of merit).
        """
        array = np.unique(np.asarray(logical, dtype=np.uint64))
        self._check_range(array, "logical")
        if array.size == 0:
            return MappedCoverage(0, 0, 0, 0, 0)
        coords = self.mapping.coordinates(array)
        # A row's identity needs every coordinate above the column.
        row_key = coords["row"]
        for name, width in (
            ("bank", self.layout.bank_bits),
            ("rank", self.layout.rank_bits),
            ("channel", self.layout.channel_bits),
        ):
            row_key = (row_key << np.uint64(max(width, 1))) | coords[name]
        rows, counts = np.unique(row_key, return_counts=True)
        bank_key = (
            (coords["channel"] << np.uint64(max(self.layout.rank_bits, 1)))
            | coords["rank"]
        )
        bank_key = (
            bank_key << np.uint64(max(self.layout.bank_bits, 1))
        ) | coords["bank"]
        return MappedCoverage(
            pages=int(array.size),
            rows_touched=int(rows.size),
            rows_complete=int(np.sum(counts >= self.pages_per_row)),
            banks_touched=int(np.unique(bank_key).size),
            channels_touched=int(np.unique(coords["channel"]).size),
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def flat(cls, total_pages: int) -> "MappedGeometry":
        """Contiguous geometry over any page count (the old model)."""
        if total_pages <= 0:
            raise MappingError(
                f"total_pages must be positive, got {total_pages}"
            )
        bits = max(1, (int(total_pages) - 1).bit_length())
        return cls(mapping=flat_mapping(bits), total_pages=total_pages)

    @classmethod
    def for_chip(
        cls,
        geometry: ChipGeometry,
        mapping: Optional[MappingFunction] = None,
    ) -> "MappedGeometry":
        """Row-granular mapped view of a simulated chip.

        Decay is row-granular (§2: refresh reads and rewrites whole
        rows), so the natural "page" of a chip-level mapped geometry is
        one DRAM row.  With ``mapping=None`` the chip's rows are flat —
        the KM41464A degenerate case.
        """
        if mapping is None:
            return cls.flat(geometry.rows)
        return cls(mapping=mapping, total_pages=geometry.rows)


__all__ = ["MappedCoverage", "MappedGeometry"]
