"""Physical DRAM address-mapping layer (DESIGN.md §12).

Real controllers interleave page frames across channels, ranks, banks
and rows through XOR-folded addressing functions; this subpackage
models those functions as verified GF(2) bijections
(:class:`MappingFunction`), binds them to concrete page counts
(:class:`MappedGeometry`), expresses decay fingerprints over the
interleaved geometry (:class:`InterleavedApproximateMemory`), and
implements the partial-knowledge attacker that recovers unknown
interleave functions from decay-cluster co-occurrence within a
tracked query budget (:func:`run_recovery`).
"""

from repro.addrmap.geometry import MappedCoverage, MappedGeometry
from repro.addrmap.mapping import (
    FIELD_ORDER,
    INTERLEAVE_FIELDS,
    MAPPING_SCHEMA_VERSION,
    DramCoordinate,
    FieldLayout,
    MappingError,
    MappingFunction,
    ddr2_linear_mapping,
    ddr2_xor_mapping,
    flat_mapping,
    km41464a_mapping,
    preset_mapping,
    random_mapping,
)
from repro.addrmap.memory import InterleavedApproximateMemory
from repro.addrmap.recover import (
    AddrmapMetrics,
    BudgetExceededError,
    CoDecayOracle,
    QueryBudget,
    RecoveredMapping,
    recover_interleave,
    register_addrmap_metrics,
    run_recovery,
)

__all__ = [
    "FIELD_ORDER",
    "INTERLEAVE_FIELDS",
    "MAPPING_SCHEMA_VERSION",
    "AddrmapMetrics",
    "BudgetExceededError",
    "CoDecayOracle",
    "DramCoordinate",
    "FieldLayout",
    "InterleavedApproximateMemory",
    "MappedCoverage",
    "MappedGeometry",
    "MappingError",
    "MappingFunction",
    "QueryBudget",
    "RecoveredMapping",
    "ddr2_linear_mapping",
    "ddr2_xor_mapping",
    "flat_mapping",
    "km41464a_mapping",
    "preset_mapping",
    "random_mapping",
    "recover_interleave",
    "register_addrmap_metrics",
    "run_recovery",
]
