"""GF(2) linear algebra over bit-mask row vectors.

The whole address-mapping layer reduces to linear algebra over GF(2):
an XOR-folded DRAM addressing function is a linear map on address
bits, a mapping is a bijection exactly when its bit matrix is
invertible, and recovering unknown XOR functions from co-location
observations is null-space learning.  This module implements the few
primitives that need, representing a row vector over ``nbits``
variables as a Python ``int`` whose bit ``i`` is the coefficient of
variable ``i`` — masks compose with ``&`` and ``^`` and stay cheap at
any width.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple


def parity(value: int) -> int:
    """Parity (sum over GF(2)) of the set bits of ``value``."""
    return bin(value).count("1") & 1


def dot(a: int, b: int) -> int:
    """GF(2) inner product of two row vectors."""
    return parity(a & b)


def rref(vectors: Iterable[int]) -> Tuple[int, ...]:
    """Reduced row echelon basis of the span of ``vectors``.

    Returns a canonical tuple (rows sorted by descending pivot, each
    pivot appearing in exactly one row), so two mask sets span the same
    subspace iff their ``rref`` tuples are equal.
    """
    basis: List[int] = []  # kept fully reduced, sorted descending
    for vector in vectors:
        reduced = int(vector)
        for row in basis:
            reduced = min(reduced, reduced ^ row)
        if reduced:
            basis = [min(row, row ^ reduced) for row in basis]
            basis.append(reduced)
            basis.sort(reverse=True)
    return tuple(basis)


def in_span(vector: int, basis: Sequence[int]) -> bool:
    """True when ``vector`` lies in the span of an ``rref`` basis."""
    reduced = int(vector)
    for row in basis:
        reduced = min(reduced, reduced ^ row)
    return reduced == 0


def rank(vectors: Iterable[int]) -> int:
    """Dimension of the span of ``vectors``."""
    return len(rref(vectors))


def complement_basis(basis: Sequence[int], nbits: int) -> Tuple[int, ...]:
    """Canonical basis of the orthogonal complement of ``basis``.

    The complement is ``{m : dot(m, b) = 0 for every b in basis}`` —
    exactly the masks whose XOR-parity function is constant on cosets
    of the spanned subspace.  Solved by back-substitution over the
    free variables of the RREF system; the result is itself returned
    in RREF form.
    """
    rows = list(rref(basis))
    pivots = [row.bit_length() - 1 for row in rows]
    pivot_set = set(pivots)
    free = [i for i in range(nbits) if i not in pivot_set]
    solutions: List[int] = []
    for free_bit in free:
        solution = 1 << free_bit
        # Each pivot variable is determined by the free assignment.
        for row, pivot in zip(rows, pivots):
            if dot(row & ~(1 << pivot), solution):
                solution |= 1 << pivot
        solutions.append(solution)
    return rref(solutions)


def invert(masks: Sequence[int], nbits: int) -> Optional[List[int]]:
    """Inverse of the linear map ``y_j = dot(masks[j], x)``.

    Returns ``inverse`` with ``x_i = dot(inverse[i], y)``, or ``None``
    when the map is singular (not a bijection).  Gauss-Jordan on the
    augmented system ``(M | I)``.
    """
    if len(masks) != nbits:
        raise ValueError(
            f"need exactly {nbits} masks for a {nbits}-bit map, "
            f"got {len(masks)}"
        )
    rows = [(int(mask), 1 << j) for j, mask in enumerate(masks)]
    inverse: List[Optional[int]] = [None] * nbits
    reduced: List[Tuple[int, int]] = []  # (mask in RREF, augmented)
    for mask, augmented in rows:
        for other_mask, other_aug in reduced:
            if mask ^ other_mask < mask:
                mask ^= other_mask
                augmented ^= other_aug
        if mask == 0:
            return None
        updated = []
        for other_mask, other_aug in reduced:
            if other_mask ^ mask < other_mask:
                updated.append((other_mask ^ mask, other_aug ^ augmented))
            else:
                updated.append((other_mask, other_aug))
        updated.append((mask, augmented))
        updated.sort(reverse=True)
        reduced = updated
    for mask, augmented in reduced:
        # Fully reduced and full-rank: each row is a single pivot bit.
        if parity(mask) != 1:
            return None
        inverse[mask.bit_length() - 1] = augmented
    if any(entry is None for entry in inverse):
        return None
    return [entry for entry in inverse if entry is not None]
