"""Machine model whose decay fingerprints live at *physical* pages.

:class:`~repro.system.ModeledApproximateMemory` keys each page's
manufacturing-locked volatile-bit set by the page index the OS (and
the attacker) sees.  That is only correct for a flat controller
mapping; on a real platform the fingerprint is a property of the
silicon at the *physical* DRAM location, and the controller's
channel/rank/bank interleave decides which silicon a logical page
lands on.

:class:`InterleavedApproximateMemory` makes that explicit: it derives
the volatile set from the mapped physical page, so a flat
:class:`~repro.addrmap.geometry.MappedGeometry` reproduces the base
model bit-for-bit while an interleaved one expresses the same decay
physics over interleaved geometry.  It also exposes the side channel
mapping recovery feeds on: a *co-decay probe* answering whether two
logical pages decayed in the same refresh phase — true exactly when
they share a physical bank group (per-bank staggered refresh aligns
the decay windows of same-bank rows), observed through the usual
measurement noise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.addrmap.geometry import MappedGeometry
from repro.addrmap.mapping import INTERLEAVE_FIELDS
from repro.system.approx_system import ModeledApproximateMemory
from repro.system.memory_map import PAGE_BITS, PhysicalMemoryMap


class InterleavedApproximateMemory(ModeledApproximateMemory):
    """A modeled machine over a mapped (possibly interleaved) geometry.

    Parameters are those of :class:`ModeledApproximateMemory` plus the
    geometry; the memory map defaults to a contiguous-placement map of
    the geometry's page count (§7.6 placement facts are unchanged —
    interleaving happens *below* the OS page frame number).
    """

    def __init__(
        self,
        chip_seed: int,
        geometry: MappedGeometry,
        memory_map: Optional[PhysicalMemoryMap] = None,
        error_rate: float = 0.01,
        miss_rate: float = 0.02,
        spurious_bits: float = 4.0,
        charge_fraction: float = 1.0,
        page_bits: int = PAGE_BITS,
    ):
        if memory_map is None:
            memory_map = PhysicalMemoryMap(total_pages=geometry.total_pages)
        if memory_map.total_pages != geometry.total_pages:
            raise ValueError(
                f"memory map covers {memory_map.total_pages} pages but the "
                f"mapped geometry covers {geometry.total_pages}"
            )
        super().__init__(
            chip_seed=chip_seed,
            memory_map=memory_map,
            error_rate=error_rate,
            miss_rate=miss_rate,
            spurious_bits=spurious_bits,
            charge_fraction=charge_fraction,
            page_bits=page_bits,
        )
        self._geometry = geometry

    @property
    def geometry(self) -> MappedGeometry:
        """The mapped physical geometry of this machine."""
        return self._geometry

    def volatile_indices(self, page: int) -> np.ndarray:
        """Ground-truth volatile set — keyed by the *physical* page.

        With a flat geometry this is exactly the base model (physical
        == logical), making the old behaviour the degenerate case.
        """
        return super().volatile_indices(self._geometry.physical_page(page))

    def co_decay_probe(
        self,
        page_a: int,
        page_b: int,
        rng: np.random.Generator,
        probe_error: float = 0.0,
        granularity: str = "bank",
    ) -> bool:
        """One noisy same-refresh-phase observation of two pages.

        ``granularity="bank"`` answers whether the pages share a
        physical channel/rank/bank (staggered per-bank refresh gives
        same-bank rows coinciding decay windows); ``"row"`` narrows to
        the same DRAM row.  ``probe_error`` flips the answer with the
        given probability — the attacker pays repeated probes to vote
        noise away, and every probe is one query against the recovery
        budget.
        """
        if granularity == "bank":
            fields = INTERLEAVE_FIELDS
        elif granularity == "row":
            fields = INTERLEAVE_FIELDS + ("row",)
        else:
            raise ValueError(
                f"granularity must be 'bank' or 'row', got {granularity!r}"
            )
        for name, page in (("page_a", page_a), ("page_b", page_b)):
            if not 0 <= page < self._geometry.total_pages:
                raise IndexError(
                    f"{name}={page} out of range for "
                    f"{self._geometry.total_pages} pages"
                )
        truth = self._geometry.mapping.colocated(page_a, page_b, fields)
        if probe_error > 0.0 and rng.random() < probe_error:
            return not truth
        return truth
