"""``repro addrmap`` — inspect mappings and run the recovery attacker.

Two subcommands (DESIGN.md §12):

``repro addrmap show --preset ddr2-xor``
    Print a preset mapping's field layout, XOR masks and a sample
    translation table; the bijection is verified on construction.

``repro addrmap recover --preset ddr2-xor --seed 2015 --budget 8000``
    Build an interleaved machine over the preset, run the
    partial-knowledge co-decay recovery against it within the query
    budget, and report whether the recovered interleave span matches
    the ground truth.  ``--output`` writes the recovered-mapping JSON
    artifact; ``--obs-dir`` additionally exports ``repro_addrmap_*``
    metrics (``metrics.prom`` / ``metrics.json``) and, via the shared
    service-command wrapper, the run's trace.

Exit codes: 0 recovery converged and matches the true interleave
structure, 1 recovery failed (budget exhausted or wrong span), 2 usage
errors (unknown preset, bad widths).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict

import numpy as np

from repro.addrmap.geometry import MappedGeometry
from repro.addrmap.mapping import MappingFunction, preset_mapping
from repro.addrmap.memory import InterleavedApproximateMemory
from repro.addrmap.recover import register_addrmap_metrics, run_recovery
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span as obs_span

PRESETS = ("flat", "km41464a", "ddr2-linear", "ddr2-xor")


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the addrmap subcommands to an argparse parser."""
    sub = parser.add_subparsers(dest="addrmap_command", required=True)

    show = sub.add_parser(
        "show", help="print a preset mapping's layout, masks and samples"
    )
    _add_mapping_arguments(show)
    show.add_argument(
        "--json",
        action="store_true",
        help="emit the mapping document as JSON on stdout",
    )

    recover = sub.add_parser(
        "recover",
        help="recover the interleave functions from co-decay probes",
    )
    _add_mapping_arguments(recover)
    recover.add_argument(
        "--seed",
        type=int,
        default=2015,
        help="chip seed and attacker RNG seed (default 2015)",
    )
    recover.add_argument(
        "--budget",
        type=int,
        default=8000,
        help="co-decay probe budget (default 8000)",
    )
    recover.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="probes per majority-voted oracle answer (default 3)",
    )
    recover.add_argument(
        "--probe-error",
        type=float,
        default=0.02,
        help="per-probe flip probability of the observable (default 0.02)",
    )
    recover.add_argument(
        "--patience",
        type=int,
        default=200,
        help="uninformative random-delta rounds before giving up",
    )
    recover.add_argument(
        "--expected-bits",
        type=int,
        default=None,
        help="attacker's datasheet interleave width "
        "(default: read from the true geometry)",
    )
    recover.add_argument(
        "--output",
        default=None,
        metavar="FILE.json",
        help="write the recovered-mapping JSON artifact to FILE",
    )
    recover.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help="write metrics.prom / metrics.json (and the run trace) "
        "observability artifacts into DIR",
    )
    recover.add_argument(
        "--json",
        action="store_true",
        help="emit the recovery report as JSON on stdout",
    )
    recover.add_argument(
        "--quiet",
        action="store_true",
        help="only print the verdict line",
    )


def _add_mapping_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        choices=PRESETS,
        default="ddr2-xor",
        help="mapping preset (default ddr2-xor)",
    )
    parser.add_argument(
        "--address-bits",
        type=int,
        default=None,
        help="address width in page bits (default: the preset's natural "
        "width; km41464a is fixed at 8)",
    )


def _build_mapping(args: argparse.Namespace) -> MappingFunction:
    return preset_mapping(args.preset, address_bits=args.address_bits)


def _show(args: argparse.Namespace) -> int:
    mapping = _build_mapping(args)
    geometry = MappedGeometry(mapping=mapping)
    if args.json:
        print(json.dumps(mapping.to_json(), indent=2, sort_keys=True))
        return 0
    print(f"preset {args.preset}: {geometry.describe()}")
    widths = mapping.layout.widths()
    print(
        "layout (LSB to MSB): "
        + " ".join(f"{name}:{width}" for name, width in widths.items())
    )
    digits = (mapping.address_bits + 3) // 4
    for bit, mask in enumerate(mapping.masks):
        print(f"physical bit {bit:>2}: mask 0x{mask:0{digits}x}")
    sample = np.arange(min(8, geometry.total_pages), dtype=np.uint64)
    physical = geometry.physical_pages(sample)
    coords = geometry.coordinates(sample)
    print("sample translation (logical -> physical ch/rk/bank/row/col):")
    for i in range(sample.size):
        print(
            f"  {int(sample[i]):>4} -> {int(physical[i]):>4}  "
            f"ch={int(coords['channel'][i])} rk={int(coords['rank'][i])} "
            f"bank={int(coords['bank'][i])} row={int(coords['row'][i])} "
            f"col={int(coords['column'][i])}"
        )
    print(
        f"bijection verified over {geometry.total_pages} pages "
        "(inverse computed by GF(2) elimination at construction)"
    )
    return 0


def _recover(args: argparse.Namespace) -> int:
    mapping = _build_mapping(args)
    geometry = MappedGeometry(mapping=mapping)
    machine = InterleavedApproximateMemory(
        chip_seed=args.seed, geometry=geometry
    )
    registry = MetricsRegistry()
    metrics = register_addrmap_metrics(registry)
    with obs_span(
        "addrmap.recover",
        preset=args.preset,
        seed=args.seed,
        budget=args.budget,
        interleave_bits=geometry.layout.interleave_bits,
    ):
        recovered = run_recovery(
            machine,
            budget_limit=args.budget,
            rng=np.random.default_rng(args.seed),
            repeats=args.repeats,
            probe_error=args.probe_error,
            expected_interleave_bits=args.expected_bits,
            patience=args.patience,
            metrics=metrics,
        )
    matches = recovered.matches(mapping)
    success = recovered.converged and matches
    document: Dict[str, object] = {
        "preset": args.preset,
        "seed": args.seed,
        "repeats": args.repeats,
        "probe_error": args.probe_error,
        "geometry": geometry.describe(),
        "true_interleave_span": [hex(m) for m in mapping.interleave_span()],
        "matches_truth": matches,
        "success": success,
        "recovered": recovered.to_json(),
    }
    if args.output is not None:
        output = Path(args.output)
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.obs_dir is not None:
        obs_path = Path(args.obs_dir)
        obs_path.mkdir(parents=True, exist_ok=True)
        registry.write_exposition(obs_path / "metrics.prom")
        registry.write_snapshot(obs_path / "metrics.json")
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        verdict = "recovered" if success else "NOT recovered"
        print(
            f"addrmap {verdict}: preset {args.preset}, "
            f"{recovered.interleave_bits}/"
            f"{geometry.layout.interleave_bits} interleave functions in "
            f"{recovered.queries_used}/{args.budget} probes; "
            f"matches truth: {'yes' if matches else 'no'}"
        )
        if not args.quiet:
            for mask in recovered.interleave_masks:
                print(f"  recovered mask 0x{mask:x}")
            if args.output is not None:
                print(f"  artifact written to {args.output}")
    return 0 if success else 1


def run_addrmap(args: argparse.Namespace) -> int:
    """The addrmap command body (dispatched by the repro CLI)."""
    if args.addrmap_command == "show":
        return _show(args)
    return _recover(args)


__all__ = ["PRESETS", "configure_parser", "run_addrmap"]
