"""Page-granular views over bit vectors.

The operating-system layer of the paper reasons about 4 KB *pages* —
the smallest unit of contiguous memory an OS manages (§4, footnote 1).
Probable Cause's stitching attack builds one fingerprint per page and
matches pages across approximate outputs, so the bit substrate needs a
cheap way to cut a long error string into page-sized vectors and to
reassemble page vectors back into a region.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.bits.bitvector import BitVector, concat

#: Bits per 4 KB operating-system page.
PAGE_BITS = 4096 * 8


def split_pages(vector: BitVector, page_bits: int = PAGE_BITS) -> List[BitVector]:
    """Cut ``vector`` into consecutive pages of ``page_bits`` bits each.

    The vector length must be an exact multiple of the page size; the
    paper's outputs are whole numbers of pages by construction.
    """
    if page_bits <= 0:
        raise ValueError(f"page_bits must be positive, got {page_bits}")
    if vector.nbits % page_bits != 0:
        raise ValueError(
            f"vector of {vector.nbits} bits is not a whole number of "
            f"{page_bits}-bit pages"
        )
    bools = vector.to_bool_array()
    return [
        BitVector.from_bool_array(bools[start : start + page_bits])
        for start in range(0, vector.nbits, page_bits)
    ]


def iter_pages(vector: BitVector, page_bits: int = PAGE_BITS) -> Iterator[BitVector]:
    """Generator form of :func:`split_pages`."""
    for page in split_pages(vector, page_bits):
        yield page


def join_pages(pages: Sequence[BitVector]) -> BitVector:
    """Reassemble page vectors into one contiguous vector.

    All pages must have equal length (a region is uniform pages).
    """
    if not pages:
        return BitVector(0)
    page_bits = pages[0].nbits
    for i, page in enumerate(pages):
        if page.nbits != page_bits:
            raise ValueError(
                f"page {i} has {page.nbits} bits, expected {page_bits}"
            )
    return concat(pages)


def page_count(nbits: int, page_bits: int = PAGE_BITS) -> int:
    """Number of whole pages spanned by ``nbits`` bits (must divide evenly)."""
    if nbits % page_bits != 0:
        raise ValueError(
            f"{nbits} bits is not a whole number of {page_bits}-bit pages"
        )
    return nbits // page_bits
