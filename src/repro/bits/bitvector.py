"""Packed bit-vector engine.

Every artifact Probable Cause manipulates — exact data, approximate
outputs, error strings, fingerprints — is fundamentally a long string of
bits.  The paper's algorithms (Characterize, Identify, Distance,
Cluster) are all bulk bitwise operations: XOR to locate errors, AND to
intersect fingerprints, population counts to normalize distances.

:class:`BitVector` stores bits packed into a ``numpy`` ``uint64`` array
so those operations run at memory bandwidth instead of per-bit Python
speed.  Bit ``i`` lives in word ``i // 64`` at bit position ``i % 64``
(little-endian within the word); any padding bits in the final word are
kept at zero as a class invariant, which lets :meth:`popcount` and
equality work on whole words.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

_WORD_BITS = 64

# Per-byte popcount lookup used by the fallback path of popcount().
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def _words_for(nbits: int) -> int:
    """Number of 64-bit words needed to hold ``nbits`` bits."""
    return (nbits + _WORD_BITS - 1) // _WORD_BITS


class BitVector:
    """A fixed-length sequence of bits with fast bulk bitwise operations.

    Instances are mutable (cells can be set and cleared) but all binary
    operators return new vectors, so algorithm code can treat them as
    values.  Two vectors must have equal :attr:`nbits` to be combined.
    """

    __slots__ = ("_words", "_nbits")

    def __init__(self, nbits: int, _words: np.ndarray = None):
        if nbits < 0:
            raise ValueError(f"nbits must be non-negative, got {nbits}")
        self._nbits = int(nbits)
        if _words is None:
            self._words = np.zeros(_words_for(nbits), dtype=np.uint64)
        else:
            if _words.dtype != np.uint64 or _words.shape != (_words_for(nbits),):
                raise ValueError("backing array has wrong dtype or shape")
            self._words = _words

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zeros(cls, nbits: int) -> "BitVector":
        """All-clear vector of ``nbits`` bits."""
        return cls(nbits)

    @classmethod
    def ones(cls, nbits: int) -> "BitVector":
        """All-set vector of ``nbits`` bits."""
        vec = cls(nbits)
        vec._words[:] = np.uint64(0xFFFFFFFFFFFFFFFF)
        vec._mask_tail()
        return vec

    @classmethod
    def from_indices(cls, nbits: int, indices: Iterable[int]) -> "BitVector":
        """Vector with exactly the bits listed in ``indices`` set.

        Raises :class:`IndexError` if any index falls outside
        ``[0, nbits)``.
        """
        vec = cls(nbits)
        idx = np.fromiter(indices, dtype=np.int64)
        if idx.size == 0:
            return vec
        if idx.min() < 0 or idx.max() >= nbits:
            raise IndexError("bit index out of range")
        words = (idx // _WORD_BITS).astype(np.int64)
        offsets = (idx % _WORD_BITS).astype(np.uint64)
        np.bitwise_or.at(vec._words, words, np.uint64(1) << offsets)
        return vec

    @classmethod
    def from_bool_array(cls, bools: np.ndarray) -> "BitVector":
        """Pack a 1-D boolean (or 0/1 integer) array into a vector."""
        flat = np.asarray(bools).ravel().astype(bool)
        vec = cls(flat.size)
        if flat.size == 0:
            return vec
        padded = np.zeros(vec._words.size * _WORD_BITS, dtype=bool)
        padded[: flat.size] = flat
        as_bytes = np.packbits(padded.reshape(-1, 8)[:, ::-1]).astype(np.uint8)
        vec._words = as_bytes.view(np.uint64).copy()
        return vec

    @classmethod
    def from_bytes(cls, data: bytes) -> "BitVector":
        """Interpret ``data`` as a vector of ``len(data) * 8`` bits.

        Bit ``i`` of the vector is bit ``i % 8`` (LSB-first) of byte
        ``i // 8``, matching the word layout used internally.
        """
        nbits = len(data) * 8
        vec = cls(nbits)
        raw = np.frombuffer(data, dtype=np.uint8)
        padded = np.zeros(vec._words.size * 8, dtype=np.uint8)
        padded[: raw.size] = raw
        vec._words = padded.view(np.uint64).copy()
        return vec

    @classmethod
    def random(cls, nbits: int, rng: np.random.Generator, density: float = 0.5) -> "BitVector":
        """Vector whose bits are independently set with probability ``density``."""
        if not 0.0 <= density <= 1.0:
            raise ValueError(f"density must be in [0, 1], got {density}")
        flat = rng.random(nbits) < density
        return cls.from_bool_array(flat)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def nbits(self) -> int:
        """Length of the vector in bits."""
        return self._nbits

    def __len__(self) -> int:
        return self._nbits

    def popcount(self) -> int:
        """Number of set bits (Hamming weight)."""
        if hasattr(np, "bitwise_count"):  # numpy >= 2.0
            return int(np.bitwise_count(self._words).sum())
        as_bytes = self._words.view(np.uint8)
        return int(_POPCOUNT8[as_bytes].sum())

    def any(self) -> bool:
        """True if at least one bit is set."""
        return bool(self._words.any())

    def density(self) -> float:
        """Fraction of set bits, in [0, 1]; 0.0 for an empty vector."""
        if self._nbits == 0:
            return 0.0
        return self.popcount() / self._nbits

    # ------------------------------------------------------------------
    # Single-bit access
    # ------------------------------------------------------------------

    def _check_index(self, index: int) -> int:
        if index < 0:
            index += self._nbits
        if not 0 <= index < self._nbits:
            raise IndexError(f"bit index {index} out of range for {self._nbits} bits")
        return index

    def get(self, index: int) -> bool:
        """Value of bit ``index`` (supports negative indices)."""
        index = self._check_index(index)
        word, offset = divmod(index, _WORD_BITS)
        return bool((int(self._words[word]) >> offset) & 1)

    def set(self, index: int, value: bool = True) -> None:
        """Set (or clear, with ``value=False``) bit ``index`` in place."""
        index = self._check_index(index)
        word, offset = divmod(index, _WORD_BITS)
        if value:
            self._words[word] |= np.uint64(1) << np.uint64(offset)
        else:
            self._words[word] &= ~(np.uint64(1) << np.uint64(offset))

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.slice(*index.indices(self._nbits)[:2])
        return self.get(index)

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------

    def _require_same_length(self, other: "BitVector") -> None:
        if not isinstance(other, BitVector):
            raise TypeError(f"expected BitVector, got {type(other).__name__}")
        if other._nbits != self._nbits:
            raise ValueError(
                f"length mismatch: {self._nbits} vs {other._nbits} bits"
            )

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._require_same_length(other)
        return BitVector(self._nbits, self._words ^ other._words)

    def __and__(self, other: "BitVector") -> "BitVector":
        self._require_same_length(other)
        return BitVector(self._nbits, self._words & other._words)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._require_same_length(other)
        return BitVector(self._nbits, self._words | other._words)

    def __invert__(self) -> "BitVector":
        vec = BitVector(self._nbits, ~self._words)
        vec._mask_tail()
        return vec

    def andnot(self, other: "BitVector") -> "BitVector":
        """Bits set in ``self`` but not in ``other`` (set difference)."""
        self._require_same_length(other)
        return BitVector(self._nbits, self._words & ~other._words)

    def count_and(self, other: "BitVector") -> int:
        """Popcount of ``self & other`` without materializing the result."""
        self._require_same_length(other)
        return BitVector(self._nbits, self._words & other._words).popcount()

    def count_andnot(self, other: "BitVector") -> int:
        """Popcount of ``self.andnot(other)`` without materializing it."""
        self._require_same_length(other)
        return BitVector(self._nbits, self._words & ~other._words).popcount()

    def hamming_distance(self, other: "BitVector") -> int:
        """Number of positions where the two vectors differ."""
        return (self ^ other).popcount()

    def is_subset_of(self, other: "BitVector") -> bool:
        """True if every set bit of ``self`` is also set in ``other``."""
        return self.count_andnot(other) == 0

    # ------------------------------------------------------------------
    # Conversion / views
    # ------------------------------------------------------------------

    def to_indices(self) -> np.ndarray:
        """Sorted array of the indices of all set bits."""
        bools = self.to_bool_array()
        return np.flatnonzero(bools)

    def iter_indices(self) -> Iterator[int]:
        """Iterate over set-bit indices in ascending order."""
        for index in self.to_indices():
            yield int(index)

    def to_bool_array(self) -> np.ndarray:
        """Unpack into a 1-D boolean array of length :attr:`nbits`."""
        as_bytes = self._words.view(np.uint8)
        bools = np.unpackbits(as_bytes, bitorder="little")
        return bools[: self._nbits].astype(bool)

    def to_bytes(self) -> bytes:
        """Little-endian packed bytes; inverse of :meth:`from_bytes`."""
        nbytes = (self._nbits + 7) // 8
        return self._words.tobytes()[:nbytes]

    def slice(self, start: int, stop: int) -> "BitVector":
        """Copy of the bit range ``[start, stop)`` as a new vector."""
        if not 0 <= start <= stop <= self._nbits:
            raise IndexError(
                f"slice [{start}, {stop}) out of range for {self._nbits} bits"
            )
        bools = self.to_bool_array()[start:stop]
        return BitVector.from_bool_array(bools)

    def copy(self) -> "BitVector":
        """Independent copy of this vector."""
        return BitVector(self._nbits, self._words.copy())

    # ------------------------------------------------------------------
    # Comparison / hashing / repr
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._nbits == other._nbits and bool(
            np.array_equal(self._words, other._words)
        )

    def __hash__(self) -> int:
        return hash((self._nbits, self._words.tobytes()))

    def __repr__(self) -> str:
        return f"BitVector(nbits={self._nbits}, popcount={self.popcount()})"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _mask_tail(self) -> None:
        """Clear any padding bits past ``nbits`` in the final word."""
        tail = self._nbits % _WORD_BITS
        if tail and self._words.size:
            mask = (np.uint64(1) << np.uint64(tail)) - np.uint64(1)
            self._words[-1] &= mask


def concat(vectors: Sequence[BitVector]) -> BitVector:
    """Concatenate vectors into one, preserving bit order."""
    if not vectors:
        return BitVector(0)
    bools = np.concatenate([v.to_bool_array() for v in vectors])
    return BitVector.from_bool_array(bools)
