"""Packed bit-vector substrate used by every layer of the library."""

from repro.bits.bitvector import BitVector, concat
from repro.bits.pages import PAGE_BITS, iter_pages, join_pages, page_count, split_pages

__all__ = [
    "BitVector",
    "concat",
    "PAGE_BITS",
    "split_pages",
    "iter_pages",
    "join_pages",
    "page_count",
]
