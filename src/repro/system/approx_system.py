"""End-to-end system models: data in, approximate pages out.

Two interchangeable models of "a commodity machine whose main memory is
approximate DRAM" back the §7.6 experiment:

* :class:`BitExactApproximateSystem` — a full :class:`~repro.dram.DRAMChip`
  spanning the whole physical memory.  Buffers are written into real
  simulated cells, decay happens cell-by-cell, and error strings are
  bit-exact.  Faithful but memory-bound: used at megabyte scale to
  validate the model below.
* :class:`ModeledApproximateMemory` — the paper's own move at 1 GB
  scale ("we emulate the result of this computation on approximate
  DRAM" using "the mathematical model presented in Section 7.1"): each
  physical page owns a deterministic volatile-bit set derived from the
  chip seed, and an observation returns that set perturbed by the
  empirically calibrated noise (≈2 % misses plus a few spurious bits).
  Lazy generation means a 262 144-page (1 GB) memory costs nothing
  until a page is actually observed.

Both hand the attacker the same artifact: per-page error strings for a
buffer placed by a :class:`~repro.system.memory_map.PhysicalMemoryMap`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.bits import BitVector
from repro.dram.chip import DRAMChip
from repro.dram.controller import ApproximateMemoryController
from repro.system.memory_map import (
    PAGE_BITS,
    BufferPlacement,
    PhysicalMemoryMap,
    pages_for_bytes,
)


@dataclass(frozen=True)
class StoredOutput:
    """One buffer after a round trip through approximate memory."""

    exact: BitVector
    approx: BitVector
    placement: BufferPlacement

    @property
    def error_string(self) -> BitVector:
        """Whole-buffer error string."""
        return self.approx ^ self.exact

    def page_error_strings(self) -> List[BitVector]:
        """Per-page error strings, in buffer order.

        This is exactly what the eavesdropping attacker extracts from a
        published output once exact data is reconstructed (§8.3).
        """
        errors = self.error_string.to_bool_array()
        return [
            BitVector.from_bool_array(errors[start : start + PAGE_BITS])
            for start in range(0, errors.size, PAGE_BITS)
        ]


def _as_page_aligned_bits(data: Union[bytes, BitVector]) -> BitVector:
    """Normalize caller data to a whole number of pages of bits."""
    if isinstance(data, BitVector):
        raw = data.to_bytes()
    else:
        raw = bytes(data)
    n_pages = pages_for_bytes(len(raw))
    padded = raw.ljust(n_pages * PAGE_BITS // 8, b"\x00")
    return BitVector.from_bytes(padded)


class BitExactApproximateSystem:
    """Cell-accurate approximate-memory machine.

    The chip's capacity must equal the memory map's capacity; each
    physical page maps to a fixed bit range of the chip.
    """

    def __init__(
        self,
        chip: DRAMChip,
        memory_map: PhysicalMemoryMap,
        accuracy: float,
        temperature_c: float,
        rng: np.random.Generator,
        controller: Optional[ApproximateMemoryController] = None,
    ):
        expected_bits = memory_map.total_pages * PAGE_BITS
        if chip.geometry.total_bits != expected_bits:
            raise ValueError(
                f"chip holds {chip.geometry.total_bits} bits but the memory "
                f"map describes {expected_bits}"
            )
        self._chip = chip
        self._memory_map = memory_map
        self._accuracy = accuracy
        self._temperature_c = temperature_c
        self._rng = rng
        self._controller = (
            controller
            if controller is not None
            else ApproximateMemoryController(chip, strategy="oracle")
        )

    @property
    def memory_map(self) -> PhysicalMemoryMap:
        """Placement model for this machine."""
        return self._memory_map

    @property
    def chip(self) -> DRAMChip:
        """The backing simulated chip."""
        return self._chip

    def store_and_read(self, data: Union[bytes, BitVector]) -> StoredOutput:
        """Run one program: place a buffer, let it decay one refresh
        window, read it back."""
        buffer_bits = _as_page_aligned_bits(data)
        n_pages = buffer_bits.nbits // PAGE_BITS
        placement = self._memory_map.place_buffer(n_pages, self._rng)

        chip = self._chip
        chip.set_temperature(self._temperature_c)
        interval = self._controller.interval_for(
            self._accuracy, self._temperature_c
        ).interval_s

        image = chip.geometry.default_array()
        buffer_bools = buffer_bits.to_bool_array()
        for buffer_page, physical_page in enumerate(placement.page_indices):
            src = slice(buffer_page * PAGE_BITS, (buffer_page + 1) * PAGE_BITS)
            dst = slice(physical_page * PAGE_BITS, (physical_page + 1) * PAGE_BITS)
            image[dst] = buffer_bools[src]

        readback = chip.decay_trial(BitVector.from_bool_array(image), interval)
        read_bools = readback.to_bool_array()
        approx = np.empty_like(buffer_bools)
        for buffer_page, physical_page in enumerate(placement.page_indices):
            src = slice(physical_page * PAGE_BITS, (physical_page + 1) * PAGE_BITS)
            dst = slice(buffer_page * PAGE_BITS, (buffer_page + 1) * PAGE_BITS)
            approx[dst] = read_bools[src]

        return StoredOutput(
            exact=buffer_bits,
            approx=BitVector.from_bool_array(approx),
            placement=placement,
        )


class ModeledApproximateMemory:
    """Mathematical page-fingerprint model of one machine (§7.6 scale).

    Parameters
    ----------
    chip_seed:
        Machine identity; equal seeds model the same machine.
    memory_map:
        Physical memory size and placement policy.
    error_rate:
        Volatile-cell fraction per page at the operating accuracy.
    miss_rate:
        Per-observation probability that a volatile cell fails to show
        its error (calibrated to the §7.2 ~98 % repeatability).
    spurious_bits:
        Expected count of random non-volatile bits flipped per page per
        observation (noise floor).
    charge_fraction:
        Probability that stored data charges a given volatile cell.
        1.0 reproduces the paper's worst-case-data model; lower values
        model data-dependent masking (an extension; see DESIGN.md).
    """

    def __init__(
        self,
        chip_seed: int,
        memory_map: PhysicalMemoryMap,
        error_rate: float = 0.01,
        miss_rate: float = 0.02,
        spurious_bits: float = 4.0,
        charge_fraction: float = 1.0,
        page_bits: int = PAGE_BITS,
    ):
        if not 0.0 < error_rate < 1.0:
            raise ValueError("error_rate must be in (0, 1)")
        if not 0.0 <= miss_rate < 1.0:
            raise ValueError("miss_rate must be in [0, 1)")
        if not 0.0 < charge_fraction <= 1.0:
            raise ValueError("charge_fraction must be in (0, 1]")
        self._chip_seed = int(chip_seed)
        self._memory_map = memory_map
        self._error_rate = error_rate
        self._miss_rate = miss_rate
        self._spurious_bits = spurious_bits
        self._charge_fraction = charge_fraction
        self._page_bits = page_bits
        self._volatile_per_page = max(1, int(round(error_rate * page_bits)))

    @property
    def memory_map(self) -> PhysicalMemoryMap:
        """Placement model for this machine."""
        return self._memory_map

    @property
    def chip_seed(self) -> int:
        """Machine identity seed."""
        return self._chip_seed

    @property
    def page_bits(self) -> int:
        """Bits per physical page."""
        return self._page_bits

    def volatile_indices(self, page: int) -> np.ndarray:
        """Ground-truth volatile-bit set of a physical page.

        Deterministic in ``(chip_seed, page)`` — the manufacturing-
        locked fingerprint the attacker is trying to recover.
        """
        if not 0 <= page < self._memory_map.total_pages:
            raise IndexError(f"page {page} out of range")
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self._chip_seed, spawn_key=(page,))
        )
        return np.sort(
            rng.choice(self._page_bits, size=self._volatile_per_page, replace=False)
        )

    def exact_page_fingerprint(self, page: int) -> BitVector:
        """Ground-truth page fingerprint as a bit vector."""
        return BitVector.from_indices(self._page_bits, self.volatile_indices(page))

    def observe_page(self, page: int, rng: np.random.Generator) -> BitVector:
        """One noisy observation of a page's error pattern."""
        volatile = self.volatile_indices(page)
        keep = rng.random(volatile.size) >= self._miss_rate
        if self._charge_fraction < 1.0:
            keep &= rng.random(volatile.size) < self._charge_fraction
        observed = volatile[keep]
        n_spurious = rng.poisson(self._spurious_bits)
        if n_spurious:
            spurious = rng.integers(0, self._page_bits, size=n_spurious)
            observed = np.union1d(observed, spurious)
        return BitVector.from_indices(self._page_bits, np.unique(observed))

    def publish_output(
        self, n_pages: int, rng: np.random.Generator
    ) -> "ModeledOutput":
        """One program run: place a buffer and observe its pages."""
        placement = self._memory_map.place_buffer(n_pages, rng)
        page_errors = [
            self.observe_page(page, rng) for page in placement.page_indices
        ]
        return ModeledOutput(placement=placement, page_errors=page_errors)


@dataclass(frozen=True)
class ModeledOutput:
    """Model-mode counterpart of :class:`StoredOutput`."""

    placement: BufferPlacement
    page_errors: List[BitVector]
