"""Commodity-OS physical memory placement model.

Section 7.6 instruments a real system (Ubuntu VM on an iMac) with
Valgrind and observes three placement facts that the end-to-end attack
depends on:

1. an output buffer occupies **consecutive physical pages**;
2. pages are **not remapped** during a single run;
3. **different runs land at different physical offsets** — which is what
   gives the attacker overlapping coverage to stitch.

:class:`PhysicalMemoryMap` encodes those facts as a placement model
over ``total_pages`` physical pages.  Placement *policies* make the
third fact pluggable so the §8.2.3 ASLR defense (which deliberately
breaks fact 1) can reuse the same machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol

import numpy as np

#: Bytes per OS page (§4 footnote 1: analysis works on 4 KB pages).
PAGE_BYTES = 4096

#: Bits per OS page.
PAGE_BITS = PAGE_BYTES * 8


class PlacementPolicy(Protocol):
    """Strategy mapping a buffer of ``n_pages`` onto physical pages."""

    def place(
        self, n_pages: int, total_pages: int, rng: np.random.Generator
    ) -> List[int]:
        """Physical page indices for the buffer, in buffer order."""
        ...


@dataclass(frozen=True)
class ContiguousPlacement:
    """Default OS behaviour: one contiguous run at a random offset.

    This is the placement §7.6 verified; it is what makes page-level
    fingerprints stitchable.
    """

    def place(
        self, n_pages: int, total_pages: int, rng: np.random.Generator
    ) -> List[int]:
        """One contiguous run starting at a uniform random offset."""
        if n_pages > total_pages:
            raise ValueError(
                f"buffer of {n_pages} pages exceeds memory of {total_pages}"
            )
        start = int(rng.integers(0, total_pages - n_pages + 1))
        return list(range(start, start + n_pages))


@dataclass(frozen=True)
class PageASLRPlacement:
    """§8.2.3 defense: every page independently randomized.

    With randomization granularity equal to the fingerprint granularity
    (one page), consecutive buffer pages land on unrelated physical
    pages and no cross-output overlap structure survives.
    """

    def place(
        self, n_pages: int, total_pages: int, rng: np.random.Generator
    ) -> List[int]:
        """Independent random physical page per buffer page."""
        if n_pages > total_pages:
            raise ValueError(
                f"buffer of {n_pages} pages exceeds memory of {total_pages}"
            )
        return [int(page) for page in rng.choice(total_pages, n_pages, replace=False)]


@dataclass(frozen=True)
class ChunkASLRPlacement:
    """Randomize at a coarser granularity of ``chunk_pages`` per chunk.

    Models the defense trade-off: larger chunks cost less management
    overhead but leave contiguous runs long enough for the stitcher to
    latch onto.
    """

    chunk_pages: int

    def __post_init__(self) -> None:
        if self.chunk_pages <= 0:
            raise ValueError("chunk_pages must be positive")

    def place(
        self, n_pages: int, total_pages: int, rng: np.random.Generator
    ) -> List[int]:
        """Random distinct chunks, contiguous within each chunk."""
        if n_pages > total_pages:
            raise ValueError(
                f"buffer of {n_pages} pages exceeds memory of {total_pages}"
            )
        chunk = self.chunk_pages
        n_chunks = (n_pages + chunk - 1) // chunk
        total_chunks = total_pages // chunk
        if n_chunks > total_chunks:
            raise ValueError("memory too small for chunked placement")
        chosen = rng.choice(total_chunks, n_chunks, replace=False)
        pages: List[int] = []
        for chunk_index in chosen:
            base = int(chunk_index) * chunk
            pages.extend(range(base, base + chunk))
        return pages[:n_pages]


@dataclass(frozen=True)
class BufferPlacement:
    """Where one output buffer landed in physical memory."""

    page_indices: List[int]

    @property
    def n_pages(self) -> int:
        """Buffer length in pages."""
        return len(self.page_indices)

    @property
    def is_contiguous(self) -> bool:
        """True when the pages form one ascending run."""
        return all(
            later == earlier + 1
            for earlier, later in zip(self.page_indices, self.page_indices[1:])
        )


class PhysicalMemoryMap:
    """Placement model over a machine's physical page frames."""

    def __init__(
        self,
        total_pages: int,
        policy: PlacementPolicy = ContiguousPlacement(),
    ):
        if total_pages <= 0:
            raise ValueError("total_pages must be positive")
        self._total_pages = total_pages
        self._policy = policy

    @property
    def total_pages(self) -> int:
        """Physical page frames available."""
        return self._total_pages

    @property
    def total_bytes(self) -> int:
        """Memory size in bytes."""
        return self._total_pages * PAGE_BYTES

    @property
    def policy(self) -> PlacementPolicy:
        """Active placement policy."""
        return self._policy

    def place_buffer(
        self, n_pages: int, rng: np.random.Generator
    ) -> BufferPlacement:
        """Allocate physical pages for one output buffer (one run)."""
        return BufferPlacement(
            page_indices=self._policy.place(n_pages, self._total_pages, rng)
        )


def pages_for_bytes(n_bytes: int) -> int:
    """Pages needed to hold ``n_bytes`` (rounded up)."""
    if n_bytes < 0:
        raise ValueError("n_bytes must be non-negative")
    return (n_bytes + PAGE_BYTES - 1) // PAGE_BYTES
