"""Buddy allocator over physical pages — placement from first principles.

The placement model in :mod:`repro.system.memory_map` *postulates* the
§7.6 observations (contiguous buffers at run-random offsets).  This
module derives them: a binary buddy allocator manages the physical page
pool, a background churn of short-lived allocations fragments it the
way a live OS does, and the victim buffer lands wherever the allocator
happens to have a free block.  The emergent placements are contiguous
(buddy blocks always are) and spread across memory (churn randomizes
the free list) — the two properties stitching needs — without any
explicit randomness in the placement itself.

:class:`BuddyAllocatorPlacement` adapts the allocator to the
:class:`~repro.system.memory_map.PlacementPolicy` protocol so every
existing experiment can run on top of it.

Emergent finding (see ``tests/system/test_allocator.py``): buddy blocks
are size-aligned, so placements of equal-size buffers either coincide
exactly or are disjoint.  Exact repeats still merge under stitching,
but the *partial* overlaps that bridge assemblies never occur — the
eavesdropper's suspect count converges to the number of distinct blocks
rather than to 1.  Allocator alignment is a free partial defense that
the paper's uniform placement model (and its Valgrind-observed VM,
whose anonymous mmap regions are not buddy-aligned at 10 MB scale)
doesn't exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np


def _round_up_power_of_two(value: int) -> int:
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


class BuddyAllocator:
    """Binary buddy allocator over a power-of-two page pool.

    Blocks are identified by (order, index): a block of order ``k``
    spans ``2**k`` pages starting at ``index * 2**k``.  Free lists are
    kept per order; splits take the lowest-indexed free block, merges
    happen eagerly when a buddy is free.
    """

    def __init__(self, total_pages: int):
        if total_pages <= 0 or total_pages & (total_pages - 1):
            raise ValueError("total_pages must be a positive power of two")
        self._total_pages = total_pages
        self._max_order = total_pages.bit_length() - 1
        self._free: Dict[int, Set[int]] = {
            order: set() for order in range(self._max_order + 1)
        }
        self._free[self._max_order].add(0)
        #: start page -> order, for live allocations.
        self._allocated: Dict[int, int] = {}

    # ------------------------------------------------------------------

    @property
    def total_pages(self) -> int:
        """Pool size in pages."""
        return self._total_pages

    def free_pages(self) -> int:
        """Pages currently free."""
        return sum(
            len(blocks) << order for order, blocks in self._free.items()
        )

    def live_allocations(self) -> int:
        """Number of outstanding allocations."""
        return len(self._allocated)

    # ------------------------------------------------------------------

    def allocate(self, n_pages: int) -> Optional[int]:
        """Allocate a block of at least ``n_pages``; returns the start
        page, or None when no block is available.

        The allocation is rounded up to the next power of two (buddy
        granularity), like a kernel page allocator.
        """
        if n_pages <= 0:
            raise ValueError("n_pages must be positive")
        size = _round_up_power_of_two(n_pages)
        if size > self._total_pages:
            return None
        order = size.bit_length() - 1
        donor = None
        for candidate in range(order, self._max_order + 1):
            if self._free[candidate]:
                donor = candidate
                break
        if donor is None:
            return None
        index = min(self._free[donor])
        self._free[donor].remove(index)
        # Split down to the requested order, freeing the upper halves.
        while donor > order:
            donor -= 1
            index <<= 1
            self._free[donor].add(index + 1)
        start = index << order
        self._allocated[start] = order
        return start

    def free(self, start: int) -> None:
        """Release a block previously returned by :meth:`allocate`."""
        try:
            order = self._allocated.pop(start)
        except KeyError:
            raise ValueError(f"page {start} is not an allocation start") from None
        index = start >> order
        # Coalesce with free buddies as far as possible.
        while order < self._max_order:
            buddy = index ^ 1
            if buddy not in self._free[order]:
                break
            self._free[order].remove(buddy)
            index >>= 1
            order += 1
        self._free[order].add(index)

    def allocation_pages(self, start: int) -> List[int]:
        """Page list of a live allocation."""
        order = self._allocated[start]
        return list(range(start, start + (1 << order)))


@dataclass
class ChurnModel:
    """Background allocation churn fragmenting the pool between runs.

    Before each victim placement, ``burst`` short-lived allocations of
    random sizes are made and a random subset released; the unreleased
    residue (bounded by ``max_resident_fraction`` of the pool, oldest
    freed first) steers where the next large block comes from — the
    physical origin of "different runs land at different offsets".
    """

    burst: int = 24
    max_order: int = 4
    release_fraction: float = 0.8
    max_resident_fraction: float = 0.25

    def __post_init__(self) -> None:
        self._resident: List[int] = []

    def churn(self, allocator: BuddyAllocator, rng: np.random.Generator) -> None:
        """Apply one burst of allocate/free noise."""
        for _ in range(self.burst):
            pages = 1 << int(rng.integers(0, self.max_order + 1))
            start = allocator.allocate(pages)
            if start is None:
                continue
            if rng.random() < self.release_fraction:
                allocator.free(start)
            else:
                self._resident.append(start)
        # Long-lived residue is bounded: the oldest residents exit as
        # their processes do, keeping the pool realistically loaded.
        cap = int(self.max_resident_fraction * allocator.total_pages)
        while self._resident and allocator.total_pages - allocator.free_pages() > cap:
            allocator.free(self._resident.pop(0))


class BuddyAllocatorPlacement:
    """PlacementPolicy backed by a churning buddy allocator.

    The victim buffer is allocated, its page list recorded, and the
    block immediately freed (the victim process exits after
    publishing); churn keeps the pool realistically fragmented between
    runs.
    """

    def __init__(self, churn: Optional[ChurnModel] = None):
        self._churn = churn if churn is not None else ChurnModel()
        self._allocator: Optional[BuddyAllocator] = None

    def place(
        self, n_pages: int, total_pages: int, rng: np.random.Generator
    ) -> List[int]:
        """Churn the pool, then take whatever block the allocator gives."""
        if self._allocator is None or self._allocator.total_pages != total_pages:
            if total_pages & (total_pages - 1):
                raise ValueError(
                    "buddy placement needs a power-of-two page count"
                )
            self._allocator = BuddyAllocator(total_pages)
        self._churn.churn(self._allocator, rng)
        start = self._allocator.allocate(n_pages)
        if start is None:
            raise ValueError(
                f"pool too fragmented for a {n_pages}-page buffer"
            )
        pages = list(range(start, start + n_pages))
        self._allocator.free(start)
        return pages
