"""Commodity-system substrate: OS page placement and machine models."""

from repro.system.allocator import (
    BuddyAllocator,
    BuddyAllocatorPlacement,
    ChurnModel,
)

from repro.system.approx_system import (
    BitExactApproximateSystem,
    ModeledApproximateMemory,
    ModeledOutput,
    StoredOutput,
)
from repro.system.memory_map import (
    PAGE_BITS,
    PAGE_BYTES,
    BufferPlacement,
    ChunkASLRPlacement,
    ContiguousPlacement,
    PageASLRPlacement,
    PhysicalMemoryMap,
    PlacementPolicy,
    pages_for_bytes,
)

__all__ = [
    "BuddyAllocator",
    "BuddyAllocatorPlacement",
    "ChurnModel",
    "BitExactApproximateSystem",
    "ModeledApproximateMemory",
    "ModeledOutput",
    "StoredOutput",
    "PAGE_BITS",
    "PAGE_BYTES",
    "BufferPlacement",
    "ChunkASLRPlacement",
    "ContiguousPlacement",
    "PageASLRPlacement",
    "PhysicalMemoryMap",
    "PlacementPolicy",
    "pages_for_bytes",
]
