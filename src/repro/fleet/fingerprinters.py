"""The ``Fingerprinter`` protocol and its three modality implementations.

The paper's pipeline is decay-specific: platform trials feed
Algorithm 1 (:func:`repro.core.characterize.characterize_trials`), and
Algorithm 2/3 match error strings against the resulting fingerprints.
The fleet simulation needs the same enroll/probe/match shape for other
DRAM side channels, so this module names the contract as a
:class:`Fingerprinter` protocol and adapts three modalities to it:

* :class:`DecayFingerprinter` — the paper's own path, **unchanged**: it
  calls ``ExperimentPlatform.run_trials`` and ``characterize_trials``
  exactly as the flat experiments do, so a fingerprint enrolled through
  the protocol is byte-identical to one produced without it (the
  regression test serializes both and compares bytes).
* :class:`StartupFingerprinter` — power-up values
  (:mod:`repro.dram.startup`, Talukder et al. arXiv:1911.03395).  The
  "error string" is the cells powering up *against their default*;
  startup structure ignores retention, so this channel does not age.
* :class:`RowhammerFingerprinter` — bit-flip locations under hammering
  (:mod:`repro.dram.rowhammer`, FP-Rowhammer/Centauri
  arXiv:2307.00143).  Susceptibility is partially retention-correlated,
  so this channel ages slower than decay but faster than startup.

All three share Algorithm 3 (:func:`probable_cause_distance`) as the
match metric; each carries its own acceptance threshold because the
within/between-class distance gap differs per channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

import numpy as np

from repro.bits import BitVector
from repro.core.characterize import characterize_trials
from repro.core.distance import DEFAULT_THRESHOLD, probable_cause_distance
from repro.core.fingerprint import Fingerprint
from repro.dram.chip import DRAMChip
from repro.dram.platform import ExperimentPlatform, TrialConditions
from repro.dram.rowhammer import (
    DEFAULT_ROWHAMMER_MODEL,
    RowhammerModel,
    default_aggressor_rows,
    hammer_trial,
)
from repro.dram.startup import (
    DEFAULT_STARTUP_MODEL,
    StartupModel,
    startup_read,
)


@runtime_checkable
class Fingerprinter(Protocol):
    """One identification side channel: how to enroll, probe, and match.

    ``enroll`` runs the modality's characterization campaign and
    returns a :class:`Fingerprint`; ``probe`` runs one measurement and
    returns the observation's error string (the bit vector Algorithm 2
    consumes); ``distance`` scores a probe against a fingerprint; a
    probe matches when ``distance < threshold``.  ``rng`` carries the
    per-measurement noise stream (chip-locked structure stays inside
    the chip), and ``temperature_c`` is the ambient at measurement
    time — modalities that are temperature-insensitive ignore it.
    """

    modality: str
    threshold: float
    enroll_cost: int

    def enroll(
        self,
        chip: DRAMChip,
        rng: np.random.Generator,
        temperature_c: Optional[float] = None,
    ) -> Fingerprint:
        """Characterize ``chip`` into a fingerprint."""
        ...

    def probe(
        self,
        chip: DRAMChip,
        rng: np.random.Generator,
        temperature_c: Optional[float] = None,
    ) -> BitVector:
        """One measurement; returns the observation error string."""
        ...

    def distance(self, probe: BitVector, fingerprint: Fingerprint) -> float:
        """Score a probe against an enrolled fingerprint."""
        ...


@dataclass(frozen=True)
class DecayFingerprinter:
    """The paper's decay path behind the protocol — same code, new name.

    ``enroll`` is ``run_trials`` + ``characterize_trials`` verbatim and
    ``probe`` is one trial's error string, so nothing about Algorithm 1
    or the operating point changes; only the calling convention does.
    """

    modality: str = "decay"
    accuracy: float = 0.99
    trials: int = 3
    threshold: float = DEFAULT_THRESHOLD

    @property
    def enroll_cost(self) -> int:
        """Measurements consumed by one enrollment (refresh-cost unit)."""
        return self.trials

    def _conditions(
        self, chip: DRAMChip, temperature_c: Optional[float]
    ) -> TrialConditions:
        ambient = (
            temperature_c
            if temperature_c is not None
            else chip.temperature_c
        )
        return TrialConditions(
            accuracy=self.accuracy, temperature_c=ambient
        )

    def enroll(
        self,
        chip: DRAMChip,
        rng: np.random.Generator,
        temperature_c: Optional[float] = None,
    ) -> Fingerprint:
        """Algorithm 1 over ``trials`` platform trials."""
        platform = ExperimentPlatform(chip)
        point = self._conditions(chip, temperature_c)
        results = platform.run_trials([point] * self.trials)
        return characterize_trials(results)

    def probe(
        self,
        chip: DRAMChip,
        rng: np.random.Generator,
        temperature_c: Optional[float] = None,
    ) -> BitVector:
        """One decay trial's error string."""
        platform = ExperimentPlatform(chip)
        result = platform.run_trial(self._conditions(chip, temperature_c))
        return result.error_string

    def distance(self, probe: BitVector, fingerprint: Fingerprint) -> float:
        """Algorithm 3 (modified Jaccard)."""
        return probable_cause_distance(probe, fingerprint)


@dataclass(frozen=True)
class StartupFingerprinter:
    """Counterfeit-origin modality: cells powering up against default.

    The enrollment intersects the against-default sets of ``reads``
    power cycles, pruning the weak cells that happened to land
    against-default in one read but not another; the probe is a single
    power cycle.  Startup structure is a pure function of the chip
    seeds, so this fingerprint is immune to retention aging.
    """

    modality: str = "startup"
    reads: int = 3
    threshold: float = DEFAULT_THRESHOLD
    model: StartupModel = DEFAULT_STARTUP_MODEL

    @property
    def enroll_cost(self) -> int:
        """Measurements consumed by one enrollment (refresh-cost unit)."""
        return self.reads

    def _against_default(
        self, chip: DRAMChip, rng: np.random.Generator
    ) -> BitVector:
        image = startup_read(chip, rng, self.model)
        return image ^ chip.geometry.default_pattern()

    def enroll(
        self,
        chip: DRAMChip,
        rng: np.random.Generator,
        temperature_c: Optional[float] = None,
    ) -> Fingerprint:
        """Intersect the against-default sets of ``reads`` power cycles."""
        fingerprint = Fingerprint(
            bits=self._against_default(chip, rng),
            support=1,
            source=chip.label,
        )
        for _ in range(self.reads - 1):
            fingerprint = fingerprint.intersect(
                self._against_default(chip, rng)
            )
        return fingerprint

    def probe(
        self,
        chip: DRAMChip,
        rng: np.random.Generator,
        temperature_c: Optional[float] = None,
    ) -> BitVector:
        """One power cycle's against-default set."""
        return self._against_default(chip, rng)

    def distance(self, probe: BitVector, fingerprint: Fingerprint) -> float:
        """Algorithm 3 (modified Jaccard)."""
        return probable_cause_distance(probe, fingerprint)


@dataclass(frozen=True)
class RowhammerFingerprinter:
    """Disturbance modality: which cells flip under hammering.

    Enrollment intersects the flip sets of ``trials`` hammer campaigns
    over an evenly striped aggressor pattern; the probe is one
    campaign.  The threshold is looser than decay's because per-trial
    noise near the susceptibility threshold makes within-class
    distances a few percent rather than a few tenths of a percent.
    """

    modality: str = "rowhammer"
    trials: int = 3
    stride: int = 4
    threshold: float = 0.25
    model: RowhammerModel = DEFAULT_ROWHAMMER_MODEL

    @property
    def enroll_cost(self) -> int:
        """Measurements consumed by one enrollment (refresh-cost unit)."""
        return self.trials

    def _flips(self, chip: DRAMChip, rng: np.random.Generator) -> BitVector:
        rows = default_aggressor_rows(chip.geometry, self.stride)
        return hammer_trial(chip, rows, rng, self.model)

    def enroll(
        self,
        chip: DRAMChip,
        rng: np.random.Generator,
        temperature_c: Optional[float] = None,
    ) -> Fingerprint:
        """Intersect the flip locations of ``trials`` hammer campaigns."""
        fingerprint = Fingerprint(
            bits=self._flips(chip, rng), support=1, source=chip.label
        )
        for _ in range(self.trials - 1):
            fingerprint = fingerprint.intersect(self._flips(chip, rng))
        return fingerprint

    def probe(
        self,
        chip: DRAMChip,
        rng: np.random.Generator,
        temperature_c: Optional[float] = None,
    ) -> BitVector:
        """One hammer campaign's flip locations."""
        return self._flips(chip, rng)

    def distance(self, probe: BitVector, fingerprint: Fingerprint) -> float:
        """Algorithm 3 (modified Jaccard)."""
        return probable_cause_distance(probe, fingerprint)


#: Modality name -> zero-config constructor, the scenario loader's menu.
_FINGERPRINTERS = {
    "decay": DecayFingerprinter,
    "startup": StartupFingerprinter,
    "rowhammer": RowhammerFingerprinter,
}


def make_fingerprinter(modality: str) -> Fingerprinter:
    """Instantiate a fingerprinter by modality name (scenario configs)."""
    try:
        factory = _FINGERPRINTERS[modality]
    except KeyError:
        known = ", ".join(sorted(_FINGERPRINTERS))
        raise ValueError(
            f"unknown modality {modality!r} (known: {known})"
        ) from None
    return factory()
