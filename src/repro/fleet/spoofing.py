"""Adversarial spoofing evaluation against the fleet's defenses.

For a seeded sample of enrolled devices, the evaluator plays the
:mod:`repro.attacks.spoofing` adversary — who leaked the victim's
*decay* fingerprint and nothing else — and asks three questions:

1. Does single-modality verification with no defense accept the spoof?
   (Replay: always — distance 0.  Perturbed: almost always — a small
   drop fraction stays under the threshold.)
2. Does the :class:`~repro.defenses.ReplayGuard` catch it?  (Replay:
   yes, by the too-perfect floor or the digest history.  Perturbed:
   no — its distance sits in the genuine band.)
3. Does fused multi-modality verification catch it?  (Both: yes — the
   spoofer cannot fabricate the startup/rowhammer channels, so those
   distances are between-class and the fused score rejects.  For the
   missing channels the evaluator charges the spoofer the best case it
   could manage: a probe replayed from a *different* device it does
   control, i.e. between-class but plausible-looking.)

The per-epoch counts land in the fleet report and the
``repro_fleet_spoof_*`` metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.attacks.spoofing import perturbed_probe, replay_probe
from repro.core.fingerprint import Fingerprint
from repro.defenses.replay import ReplayGuard
from repro.fleet.fingerprinters import Fingerprinter
from repro.fleet.fusion import PackedFingerprints, identify_fused
from repro.fleet.lifecycle import base_key

#: The channel the spoofer has leaked; decay fingerprints are the ones
#: the paper shows leaking through any published approximate output.
LEAKED_MODALITY = "decay"


@dataclass
class SpoofingEvaluation:
    """Aggregated spoof outcomes over one evaluation round."""

    attempts: int = 0
    replay_accepted_single: int = 0
    replay_accepted_guarded: int = 0
    replay_accepted_fused: int = 0
    perturbed_accepted_single: int = 0
    perturbed_accepted_guarded: int = 0
    perturbed_accepted_fused: int = 0

    def to_json(self) -> Dict[str, int]:
        """Plain dict for the fleet report."""
        return {
            "attempts": self.attempts,
            "replay_accepted_single": self.replay_accepted_single,
            "replay_accepted_guarded": self.replay_accepted_guarded,
            "replay_accepted_fused": self.replay_accepted_fused,
            "perturbed_accepted_single": self.perturbed_accepted_single,
            "perturbed_accepted_guarded": self.perturbed_accepted_guarded,
            "perturbed_accepted_fused": self.perturbed_accepted_fused,
        }

    def merge(self, other: "SpoofingEvaluation") -> None:
        """Fold another round's counts into this one."""
        self.attempts += other.attempts
        self.replay_accepted_single += other.replay_accepted_single
        self.replay_accepted_guarded += other.replay_accepted_guarded
        self.replay_accepted_fused += other.replay_accepted_fused
        self.perturbed_accepted_single += other.perturbed_accepted_single
        self.perturbed_accepted_guarded += other.perturbed_accepted_guarded
        self.perturbed_accepted_fused += other.perturbed_accepted_fused


def _decoy_probes(
    victim_key: str,
    enrolled: Mapping[str, Mapping[str, Fingerprint]],
    modalities: List[str],
    rng: np.random.Generator,
) -> Optional[Dict[str, Fingerprint]]:
    """The spoofer's stand-in fingerprints for the channels it lacks.

    Best case for the attacker: it owns some *other* enrolled device
    and submits that device's genuine channels alongside the forged
    decay probe.  Returns None when the fleet has no other device to
    borrow from (fused evaluation is then skipped).
    """
    donors = sorted(
        key for key in enrolled if base_key(key) != base_key(victim_key)
    )
    if not donors:
        return None
    donor = donors[int(rng.integers(len(donors)))]
    return {
        modality: enrolled[donor][modality]
        for modality in modalities
        if modality != LEAKED_MODALITY
    }


def evaluate_spoofing(
    enrolled: Mapping[str, Mapping[str, Fingerprint]],
    fingerprinters: Mapping[str, Fingerprinter],
    packs: Mapping[str, PackedFingerprints],
    victims: List[str],
    rng: np.random.Generator,
    guard: Optional[ReplayGuard] = None,
    drop_fraction: float = 0.05,
) -> SpoofingEvaluation:
    """Run replay + perturbed spoofs against ``victims``.

    ``enrolled`` maps storage key -> modality -> fingerprint;
    ``packs`` are the same enrollments in matrix form (for the fused
    check); ``victims`` are storage keys to impersonate.  The guard is
    shared across attempts so digest history accumulates, as it would
    in a live verifier.
    """
    if LEAKED_MODALITY not in fingerprinters:
        raise ValueError(
            f"spoofing evaluation needs the {LEAKED_MODALITY!r} modality"
        )
    evaluation = SpoofingEvaluation()
    guard = guard if guard is not None else ReplayGuard()
    decay = fingerprinters[LEAKED_MODALITY]
    modalities = sorted(fingerprinters)
    for victim_key in victims:
        victim_prints = enrolled[victim_key]
        leaked = victim_prints[LEAKED_MODALITY]
        evaluation.attempts += 1
        for kind in ("replay", "perturbed"):
            if kind == "replay":
                probe = replay_probe(leaked)
            else:
                probe = perturbed_probe(
                    leaked, rng, drop_fraction=drop_fraction
                )
            distance = decay.distance(probe, leaked)
            single_ok = distance < decay.threshold
            guarded_ok = (
                single_ok and guard.check(probe, distance).accepted
            )
            fused_ok = False
            if single_ok:
                decoys = _decoy_probes(victim_key, enrolled, modalities, rng)
                if decoys is not None:
                    fused_probes = {LEAKED_MODALITY: probe}
                    for modality, decoy in decoys.items():
                        fused_probes[modality] = decoy.bits
                    match = identify_fused(
                        fused_probes,
                        packs,
                        {
                            modality: fingerprinters[modality].threshold
                            for modality in modalities
                        },
                    )
                    fused_ok = (
                        match.matched
                        and match.key is not None
                        and base_key(match.key) == base_key(victim_key)
                    )
            if kind == "replay":
                evaluation.replay_accepted_single += int(single_ok)
                evaluation.replay_accepted_guarded += int(guarded_ok)
                evaluation.replay_accepted_fused += int(fused_ok)
            else:
                evaluation.perturbed_accepted_single += int(single_ok)
                evaluation.perturbed_accepted_guarded += int(guarded_ok)
                evaluation.perturbed_accepted_fused += int(fused_ok)
    return evaluation
