"""The fleet simulation engine: lifecycle × modalities × service stack.

One :class:`FleetSimulation` owns a scenario and an output directory
and drives the whole loop:

* epoch 0 manufactures and enrolls the fleet (every modality), and
  ingests the decay fingerprints into a real
  :class:`~repro.service.ShardedFingerprintStore` under the output
  directory;
* each epoch applies aging + seasonality, decommissions / re-enrolls /
  admits devices (store tombstones and versioned re-ingest), refreshes
  stale fingerprints per the policy, probes every active device on
  every modality, and scores identification per modality and fused;
* the epoch's decay observations — with a seeded fraction of malformed
  records — are additionally written as a JSON Lines feed and pushed
  through :class:`~repro.service.StreamingIdentificationService`
  against the store, interrupted after a configured number of batches
  and resumed, so backpressure, quarantine, checkpoint/resume and
  tombstone semantics are exercised under churn every single epoch;
* a seeded spoofing round runs against the fleet's defenses.

Determinism contract: every random draw flows from the scenario seed
through named :class:`numpy.random.SeedSequence` spawns; simulated
time is the :class:`~repro.fleet.lifecycle.FleetClock`, never the wall
clock (the only wall-clock use is ``obs.clock.perf_counter`` for the
``repro_fleet_epoch_seconds`` metric, which stays out of the report).
Two runs with the same scenario produce byte-identical ``report.json``
files — the hypothesis property test holds the engine to that.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.bits import BitVector
from repro.core.fingerprint import Fingerprint
from repro.dram.devices import get_device
from repro.fleet.fingerprinters import Fingerprinter, make_fingerprinter
from repro.fleet.fusion import PackedFingerprints, fused_scores
from repro.fleet.lifecycle import (
    FleetClock,
    FleetDevice,
    LifecycleModel,
    base_key,
)
from repro.fleet.refresh import StalenessTracker
from repro.fleet.scenario import SCENARIO_SCHEMA_VERSION, FleetScenario
from repro.fleet.spoofing import SpoofingEvaluation, evaluate_spoofing
from repro.defenses.replay import ReplayGuard
from repro.obs import MetricsRegistry, span as obs_span
from repro.obs.clock import perf_counter
from repro.service import (
    ServiceMetrics,
    ShardedFingerprintStore,
    StreamingIdentificationService,
)

#: Named SeedSequence spawn keys — one independent stream per concern.
_SEED_MANUFACTURE = 0
_SEED_LIFECYCLE = 1
_SEED_ENROLL = 2
_SEED_PROBE = 3
_SEED_MALFORMED = 4
_SEED_SPOOF = 5


def _stream_rng(seed: int, key: int) -> np.random.Generator:
    """Independent seeded generator for one named concern."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(key,))
    )


@dataclass
class EpochRecord:
    """Everything the report keeps about one epoch (deterministic)."""

    epoch: int
    sim_time_s: float
    temperature_c: float
    active_devices: int
    churned: int
    reenrolled: int
    arrivals: int
    refreshed: int
    refresh_cost_measurements: int
    staleness: Dict[str, object]
    probes: int
    accuracy: Dict[str, float]
    fused_accuracy: float
    stream: Dict[str, object]
    stream_accuracy: float
    spoofing: Dict[str, int]

    def to_json(self) -> Dict[str, object]:
        """Plain dict for the report file."""
        return {
            "epoch": self.epoch,
            "sim_time_s": self.sim_time_s,
            "temperature_c": self.temperature_c,
            "active_devices": self.active_devices,
            "churned": self.churned,
            "reenrolled": self.reenrolled,
            "arrivals": self.arrivals,
            "refreshed": self.refreshed,
            "refresh_cost_measurements": self.refresh_cost_measurements,
            "staleness": dict(self.staleness),
            "probes": self.probes,
            "accuracy": dict(self.accuracy),
            "fused_accuracy": self.fused_accuracy,
            "stream": dict(self.stream),
            "stream_accuracy": self.stream_accuracy,
            "spoofing": dict(self.spoofing),
        }


@dataclass
class FleetReport:
    """Whole-run summary, written canonically to ``report.json``."""

    scenario: Dict[str, object]
    epochs: List[EpochRecord] = field(default_factory=list)
    spoofing_total: Dict[str, int] = field(default_factory=dict)

    @property
    def final_epoch(self) -> EpochRecord:
        """The last epoch's record."""
        return self.epochs[-1]

    def accuracy_by_modality(self) -> Dict[str, List[float]]:
        """Per-modality accuracy trajectory across epochs."""
        trajectories: Dict[str, List[float]] = {}
        for record in self.epochs:
            for modality, value in record.accuracy.items():
                trajectories.setdefault(modality, []).append(value)
        return trajectories

    def to_json(self) -> Dict[str, object]:
        """Schema-versioned plain document."""
        return {
            "schema_version": SCENARIO_SCHEMA_VERSION,
            "scenario": dict(self.scenario),
            "epochs": [record.to_json() for record in self.epochs],
            "spoofing_total": dict(self.spoofing_total),
        }

    def save(self, path: Union[str, Path]) -> None:
        """Write canonically (sorted keys, fixed separators) — the
        byte-reproducibility surface the determinism test compares."""
        Path(path).write_text(
            json.dumps(
                self.to_json(), indent=2, sort_keys=True
            )
            + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> Dict[str, object]:
        """Read a saved report back as a plain document."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(payload, dict):
            raise ValueError(f"{path}: report must be a JSON object")
        return payload


class FleetSimulation:
    """Run one scenario end to end; see the module docstring."""

    def __init__(
        self,
        scenario: FleetScenario,
        out_dir: Union[str, Path],
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._scenario = scenario
        self._out_dir = Path(out_dir)
        self._spec = get_device(scenario.device)
        self._nbits = self._spec.geometry.total_bits
        self._fingerprinters: Dict[str, Fingerprinter] = {
            modality: make_fingerprinter(modality)
            for modality in scenario.modalities
        }
        self._clock = FleetClock(scenario.epoch_duration_s)
        self._lifecycle = LifecycleModel(scenario.lifecycle, self._spec)
        self._tracker = StalenessTracker()
        self._guard = ReplayGuard()
        self._service_metrics = ServiceMetrics()
        self._store: Optional[ShardedFingerprintStore] = None
        #: device_id -> device (identity registry; never forgets an id).
        self._devices: Dict[str, FleetDevice] = {}
        #: storage key -> modality -> fingerprint (current enrollments).
        self._enrolled: Dict[str, Dict[str, Fingerprint]] = {}
        self._registry = registry if registry is not None else MetricsRegistry()
        self._instruments = self._register_metrics()

    # -- metrics -------------------------------------------------------

    def _register_metrics(self) -> Dict[str, object]:
        registry = self._registry
        instruments: Dict[str, object] = {
            "epochs": registry.counter(
                "repro_fleet_epochs_total", "Simulated epochs completed"
            ),
            "devices": registry.gauge(
                "repro_fleet_devices", "Active devices in the fleet"
            ),
            "probes": registry.counter(
                "repro_fleet_probes_total",
                "Identification probes evaluated (all modalities)",
            ),
            "enrollments": registry.counter(
                "repro_fleet_enrollments_total",
                "Device enrollments (initial + arrivals)",
            ),
            "reenrollments": registry.counter(
                "repro_fleet_reenrollments_total",
                "Churned devices re-enrolled under first-enrolled-wins",
            ),
            "refreshes": registry.counter(
                "repro_fleet_refreshes_total",
                "Fingerprint refreshes performed by the policy",
            ),
            "churned": registry.counter(
                "repro_fleet_churned_total", "Devices decommissioned"
            ),
            "arrivals": registry.counter(
                "repro_fleet_arrivals_total", "Brand-new devices admitted"
            ),
            "quarantined": registry.counter(
                "repro_fleet_stream_quarantined_total",
                "Malformed observations quarantined by the stream",
            ),
            "spoof_attempts": registry.counter(
                "repro_fleet_spoof_attempts_total",
                "Spoofed identification attempts evaluated",
            ),
            "spoof_fused_accepted": registry.counter(
                "repro_fleet_spoof_fused_accepted_total",
                "Spoofs accepted by fused multi-modality verification",
            ),
            "epoch_seconds": registry.histogram(
                "repro_fleet_epoch_seconds",
                "Wall-clock cost of simulating one epoch",
                buckets=(0.1, 0.5, 1.0, 5.0, 30.0, 120.0),
            ),
            "fused_accuracy": registry.gauge(
                "repro_fleet_accuracy_fused",
                "Fused identification accuracy, latest epoch",
            ),
        }
        for modality in self._scenario.modalities:
            instruments[f"accuracy_{modality}"] = registry.gauge(
                f"repro_fleet_accuracy_{modality}",
                f"{modality} identification accuracy, latest epoch",
            )
        return instruments

    @property
    def registry(self) -> MetricsRegistry:
        """The ``repro_fleet_*`` metrics registry."""
        return self._registry

    @property
    def service_metrics(self) -> ServiceMetrics:
        """Store + stream counters (bind into the registry to export)."""
        return self._service_metrics

    @property
    def devices(self) -> Dict[str, FleetDevice]:
        """Identity registry snapshot (device_id -> device)."""
        return dict(self._devices)

    @property
    def enrolled_keys(self) -> List[str]:
        """Currently enrolled storage keys, in enrollment order."""
        return list(self._enrolled)

    # -- enrollment plumbing -------------------------------------------

    def _enroll_device(
        self,
        device: FleetDevice,
        epoch: int,
        rng: np.random.Generator,
        temperature_c: float,
    ) -> Tuple[str, Fingerprint]:
        """Characterize every modality; returns (key, decay fingerprint)."""
        prints: Dict[str, Fingerprint] = {}
        for modality in self._scenario.modalities:
            fingerprinter = self._fingerprinters[modality]
            prints[modality] = fingerprinter.enroll(
                device.chip, rng, temperature_c=temperature_c
            )
        key = device.storage_key
        self._enrolled[key] = prints
        self._tracker.record_enrollment(device.device_id, epoch)
        # The store holds the streaming modality's fingerprints; when a
        # scenario runs without decay, the first modality stands in so
        # churn tombstones still resolve (the stream leg is skipped).
        stored = prints.get("decay", prints[self._scenario.modalities[0]])
        return key, stored

    def _build_packs(self) -> Dict[str, PackedFingerprints]:
        """Matrix form of the current enrollments, one pack per modality.

        All packs share the same key order (enrollment order — which is
        Algorithm 2's priority rule), as ``identify_fused`` requires.
        """
        entries_by_modality: Dict[str, List[Tuple[str, Fingerprint]]] = {
            modality: [] for modality in self._scenario.modalities
        }
        for key, prints in self._enrolled.items():
            for modality in self._scenario.modalities:
                entries_by_modality[modality].append((key, prints[modality]))
        return {
            modality: PackedFingerprints(entries, self._nbits)
            for modality, entries in entries_by_modality.items()
        }

    # -- the run -------------------------------------------------------

    def run(self) -> FleetReport:
        """Simulate every epoch; returns (and does not yet save) the report."""
        scenario = self._scenario
        seed = scenario.seed
        rng_mfg = _stream_rng(seed, _SEED_MANUFACTURE)
        rng_life = _stream_rng(seed, _SEED_LIFECYCLE)
        rng_enroll = _stream_rng(seed, _SEED_ENROLL)
        rng_probe = _stream_rng(seed, _SEED_PROBE)
        rng_malformed = _stream_rng(seed, _SEED_MALFORMED)
        rng_spoof = _stream_rng(seed, _SEED_SPOOF)

        self._out_dir.mkdir(parents=True, exist_ok=True)
        self._store = ShardedFingerprintStore(
            self._out_dir / "store", metrics=self._service_metrics
        )
        report = FleetReport(scenario=scenario.to_json())
        spoof_total = SpoofingEvaluation()

        with obs_span("fleet.build", devices=scenario.n_devices):
            fleet = self._lifecycle.build_fleet(scenario.n_devices, rng_mfg)
            temperature = self._lifecycle.temperature_at(0)
            decay_batch: List[Tuple[str, Fingerprint]] = []
            for device in fleet:
                self._devices[device.device_id] = device
                key, decay_fp = self._enroll_device(
                    device, 0, rng_enroll, temperature
                )
                decay_batch.append((key, decay_fp))
                self._instruments["enrollments"].inc()  # type: ignore[attr-defined]
            self._store.ingest(decay_batch)

        for epoch in range(scenario.n_epochs):
            started = perf_counter()
            with obs_span("fleet.epoch", epoch=epoch):
                record = self._run_epoch(
                    epoch,
                    rng_mfg,
                    rng_life,
                    rng_enroll,
                    rng_probe,
                    rng_malformed,
                    rng_spoof,
                    spoof_total,
                )
            report.epochs.append(record)
            self._instruments["epochs"].inc()  # type: ignore[attr-defined]
            self._instruments["epoch_seconds"].observe(  # type: ignore[attr-defined]
                perf_counter() - started
            )
            self._clock.advance()

        report.spoofing_total = spoof_total.to_json()
        return report

    def _run_epoch(
        self,
        epoch: int,
        rng_mfg: np.random.Generator,
        rng_life: np.random.Generator,
        rng_enroll: np.random.Generator,
        rng_probe: np.random.Generator,
        rng_malformed: np.random.Generator,
        rng_spoof: np.random.Generator,
        spoof_total: SpoofingEvaluation,
    ) -> EpochRecord:
        scenario = self._scenario
        assert self._store is not None
        temperature = self._lifecycle.temperature_at(epoch)
        churned = reenrolled = arrivals = refreshed = 0
        refresh_cost = 0

        if epoch > 0:
            # Physics first: every chip ages, active or parked.
            with obs_span("fleet.age", epoch=epoch):
                for device_id in sorted(self._devices):
                    self._lifecycle.age_device(
                        self._devices[device_id], rng_life
                    )

            # Churn: decommission, then let parked devices return, then
            # admit new arrivals.
            with obs_span("fleet.churn", epoch=epoch):
                active = [
                    self._devices[device_id]
                    for device_id in sorted(self._devices)
                    if self._devices[device_id].active
                ]
                leaving = self._lifecycle.select_churned(active, rng_life)
                if leaving:
                    self._store.tombstone(
                        [device.storage_key for device in leaving]
                    )
                for device in leaving:
                    device.active = False
                    device.decommissioned_epoch = epoch
                    self._enrolled.pop(device.storage_key, None)
                    self._tracker.forget(device.device_id)
                churned = len(leaving)

                parked = [
                    self._devices[device_id]
                    for device_id in sorted(self._devices)
                    if not self._devices[device_id].active
                ]
                returning = self._lifecycle.select_returning(parked, rng_life)
                decay_batch: List[Tuple[str, Fingerprint]] = []
                for device in returning:
                    # First-enrolled-wins: the identity (device_id) is
                    # reused; only the storage key is versioned.
                    device.generation += 1
                    device.active = True
                    device.enrolled_epoch = epoch
                    device.decommissioned_epoch = None
                    key, decay_fp = self._enroll_device(
                        device, epoch, rng_enroll, temperature
                    )
                    decay_batch.append((key, decay_fp))
                reenrolled = len(returning)

                n_new = self._lifecycle.arrival_count(
                    sum(1 for d in self._devices.values() if d.active),
                    rng_life,
                )
                for _ in range(n_new):
                    device = self._lifecycle.new_device(epoch, rng_mfg)
                    self._devices[device.device_id] = device
                    key, decay_fp = self._enroll_device(
                        device, epoch, rng_enroll, temperature
                    )
                    decay_batch.append((key, decay_fp))
                arrivals = n_new
                if decay_batch:
                    self._store.ingest(decay_batch)

            # Refresh policy: re-enroll the stalest fingerprints.
            with obs_span("fleet.refresh", epoch=epoch):
                active = [
                    self._devices[device_id]
                    for device_id in sorted(self._devices)
                    if self._devices[device_id].active
                ]
                due = self._tracker.select_for_refresh(
                    scenario.refresh, active, epoch
                )
                decay_batch = []
                for device in due:
                    old_key = device.storage_key
                    self._store.tombstone([old_key])
                    self._enrolled.pop(old_key, None)
                    device.generation += 1
                    key, decay_fp = self._enroll_device(
                        device, epoch, rng_enroll, temperature
                    )
                    decay_batch.append((key, decay_fp))
                    cost = sum(
                        self._fingerprinters[m].enroll_cost
                        for m in scenario.modalities
                    )
                    self._tracker.record_refresh(
                        device.device_id, epoch, cost
                    )
                    refresh_cost += cost
                if decay_batch:
                    self._store.ingest(decay_batch)
                refreshed = len(due)

        self._instruments["churned"].inc(churned)  # type: ignore[attr-defined]
        self._instruments["reenrollments"].inc(reenrolled)  # type: ignore[attr-defined]
        self._instruments["arrivals"].inc(arrivals)  # type: ignore[attr-defined]
        self._instruments["enrollments"].inc(arrivals)  # type: ignore[attr-defined]
        self._instruments["refreshes"].inc(refreshed)  # type: ignore[attr-defined]

        active_devices = [
            self._devices[device_id]
            for device_id in sorted(self._devices)
            if self._devices[device_id].active
        ]
        self._instruments["devices"].set(len(active_devices))  # type: ignore[attr-defined]

        # Probe every active device on every modality and score both
        # per-modality and fused identification.
        packs = self._build_packs()
        thresholds = {
            modality: self._fingerprinters[modality].threshold
            for modality in scenario.modalities
        }
        correct = {modality: 0 for modality in scenario.modalities}
        fused_correct = 0
        probes = 0
        decay_observations: List[Tuple[str, BitVector]] = []
        with obs_span(
            "fleet.probe", epoch=epoch, devices=len(active_devices)
        ):
            for device in active_devices:
                for round_index in range(scenario.probes_per_epoch):
                    probe_bits: Dict[str, BitVector] = {}
                    rows: Dict[str, np.ndarray] = {}
                    for modality in scenario.modalities:
                        fingerprinter = self._fingerprinters[modality]
                        probe = fingerprinter.probe(
                            device.chip, rng_probe, temperature_c=temperature
                        )
                        probe_bits[modality] = probe
                        distances = packs[modality].distances(probe)
                        rows[modality] = distances
                        best = int(np.argmin(distances))
                        if (
                            distances[best] < fingerprinter.threshold
                            and base_key(packs[modality].keys[best])
                            == device.device_id
                        ):
                            correct[modality] += 1
                    fused = fused_scores(
                        rows, thresholds, scenario.fusion_weights
                    )
                    best = int(np.argmin(fused))
                    reference_keys = packs[scenario.modalities[0]].keys
                    if (
                        fused[best] < 1.0
                        and base_key(reference_keys[best])
                        == device.device_id
                    ):
                        fused_correct += 1
                    probes += 1
                    if round_index == 0 and "decay" in probe_bits:
                        decay_observations.append(
                            (device.device_id, probe_bits["decay"])
                        )
        self._instruments["probes"].inc(  # type: ignore[attr-defined]
            probes * len(scenario.modalities)
        )

        denominator = max(1, probes)
        accuracy = {
            modality: correct[modality] / denominator
            for modality in scenario.modalities
        }
        fused_accuracy = fused_correct / denominator
        for modality, value in accuracy.items():
            self._instruments[f"accuracy_{modality}"].set(value)  # type: ignore[attr-defined]
        self._instruments["fused_accuracy"].set(fused_accuracy)  # type: ignore[attr-defined]

        # Drive the epoch's decay observations through the streaming
        # pipeline (malformed injection, interrupt, resume).
        if "decay" in scenario.modalities:
            with obs_span("fleet.stream", epoch=epoch):
                stream_summary, stream_accuracy = self._run_stream(
                    epoch, decay_observations, rng_malformed
                )
        else:
            stream_summary = {"status": "skipped", "quarantined": 0}
            stream_accuracy = 0.0
        self._instruments["quarantined"].inc(  # type: ignore[attr-defined]
            int(stream_summary["quarantined"])  # type: ignore[arg-type]
        )

        # Seeded spoofing round against the current enrollments.
        spoofing = SpoofingEvaluation()
        if (
            scenario.spoof_devices > 0
            and len(self._enrolled) > 1
            and "decay" in scenario.modalities
        ):
            keys = sorted(self._enrolled)
            count = min(scenario.spoof_devices, len(keys))
            chosen = rng_spoof.choice(len(keys), size=count, replace=False)
            victims = [keys[int(i)] for i in sorted(chosen)]
            with obs_span("fleet.spoof", epoch=epoch, victims=len(victims)):
                spoofing = evaluate_spoofing(
                    self._enrolled,
                    self._fingerprinters,
                    packs,
                    victims,
                    rng_spoof,
                    guard=self._guard,
                )
            spoof_total.merge(spoofing)
            self._instruments["spoof_attempts"].inc(  # type: ignore[attr-defined]
                2 * spoofing.attempts
            )
            self._instruments["spoof_fused_accepted"].inc(  # type: ignore[attr-defined]
                spoofing.replay_accepted_fused
                + spoofing.perturbed_accepted_fused
            )

        return EpochRecord(
            epoch=epoch,
            sim_time_s=self._clock.now_s,
            temperature_c=temperature,
            active_devices=len(active_devices),
            churned=churned,
            reenrolled=reenrolled,
            arrivals=arrivals,
            refreshed=refreshed,
            refresh_cost_measurements=refresh_cost,
            staleness=self._tracker.summary(epoch),
            probes=probes,
            accuracy=accuracy,
            fused_accuracy=fused_accuracy,
            stream=stream_summary,
            stream_accuracy=stream_accuracy,
            spoofing=spoofing.to_json(),
        )

    # -- streaming integration -----------------------------------------

    def _write_observations(
        self,
        path: Path,
        epoch: int,
        observations: List[Tuple[str, BitVector]],
        rng: np.random.Generator,
    ) -> int:
        """One JSONL feed: genuine error strings + seeded malformed noise.

        Returns the number of malformed lines injected.  Malformed
        records cycle through distinct validator reason codes so the
        quarantine file exercises more than one path.
        """
        malformed = 0
        bad_shapes = (
            '{"id": "bad-{n}", "nbits": -4}',
            '{"id": "bad-{n}", "nbits": {nbits}}',
            "{not json at all",
        )
        with open(path, "w", encoding="utf-8") as sink:  # repro-lint: disable=REP009 -- transient simulation input regenerated from the seed every run, not a durability artifact
            for device_id, probe in observations:
                if rng.random() < self._scenario.malformed_fraction:
                    template = bad_shapes[malformed % len(bad_shapes)]
                    sink.write(
                        template.replace("{n}", str(malformed)).replace(
                            "{nbits}", str(self._nbits)
                        )
                        + "\n"
                    )
                    malformed += 1
                record = {
                    "id": f"{device_id}@e{epoch}",
                    "nbits": self._nbits,
                    "errors": [int(i) for i in probe.to_indices()],
                }
                sink.write(json.dumps(record, sort_keys=True) + "\n")
        return malformed

    def _run_stream(
        self,
        epoch: int,
        observations: List[Tuple[str, BitVector]],
        rng: np.random.Generator,
    ) -> Tuple[Dict[str, object], float]:
        """Push the epoch's decay feed through the streaming pipeline.

        The run is interrupted after ``interrupt_after_batches``
        micro-batches and resumed with a fresh service instance, so
        every epoch exercises the checkpoint/resume path; totals are
        summed across the two legs.
        """
        scenario = self._scenario
        assert self._store is not None
        obs_dir = self._out_dir / "observations"
        obs_dir.mkdir(parents=True, exist_ok=True)
        feed = obs_dir / f"epoch-{epoch:03d}.jsonl"
        self._write_observations(feed, epoch, observations, rng)
        state_dir = self._out_dir / "stream" / f"epoch-{epoch:03d}"

        def make_service() -> StreamingIdentificationService:
            return StreamingIdentificationService(
                self._store,
                state_dir,
                batch_size=scenario.stream_batch_size,
                checkpoint_every=scenario.checkpoint_every,
                metrics=self._service_metrics,
            )

        totals = {
            "observations": 0,
            "matched": 0,
            "unmatched": 0,
            "quarantined": 0,
            "batches": 0,
            "checkpoints": 0,
            "restarts": 0,
            "runs": 0,
        }
        status = "completed"
        resume = False
        interrupt = (
            scenario.interrupt_after_batches
            if scenario.interrupt_after_batches > 0
            else None
        )
        while True:
            service = make_service()
            stream_report = service.run(
                feed, resume=resume, max_batches=interrupt
            )
            totals["observations"] += stream_report.observations
            totals["matched"] += stream_report.matched
            totals["unmatched"] += stream_report.unmatched
            totals["quarantined"] += stream_report.quarantined
            totals["batches"] += stream_report.batches
            totals["checkpoints"] += stream_report.checkpoints
            totals["restarts"] += stream_report.restarts
            totals["runs"] += 1
            status = stream_report.status
            if stream_report.status != "interrupted":
                break
            # The interrupt proved the checkpoint; the resume leg runs
            # to completion.
            resume = True
            interrupt = None
        summary: Dict[str, object] = dict(totals)
        summary["status"] = status

        # Score the stream's verdicts against ground truth: a result
        # row is correct when its matched key's base identity equals
        # the observation id's device prefix.
        results_path = state_dir / "results.jsonl"
        correct = 0
        scored = 0
        if results_path.exists():
            with open(results_path, "r", encoding="utf-8") as rows:
                for line in rows:
                    line = line.strip()
                    if not line:
                        continue
                    row = json.loads(line)
                    scored += 1
                    if not row.get("matched"):
                        continue
                    observed_id = str(row.get("id", ""))
                    device_id = observed_id.split("@", 1)[0]
                    matched_key = row.get("key")
                    if matched_key is not None and base_key(
                        str(matched_key)
                    ) == device_id:
                        correct += 1
        stream_accuracy = correct / scored if scored else 0.0
        return summary, stream_accuracy
