"""Fleet lifecycle: simulated time, aging, seasonality, churn.

Everything here runs on **simulated** time.  :class:`FleetClock` is an
epoch counter with a fixed epoch duration; no wall clock is consulted
anywhere in the package (REP006 — ``obs/clock.py`` owns the only
sanctioned wall-clock seam, and the engine uses it solely to time its
own execution for metrics, never to drive the simulation).

The lifecycle model owns three physical processes:

* **Aging** — each epoch every active chip's per-cell log retention
  takes one step of a random walk with drift
  (:meth:`~repro.dram.chip.DRAMChip.age_retention`).  Negative drift
  models global wear-out; the per-cell component reorders the
  retention tail, which is what makes decay fingerprints go stale even
  though the oracle controller recalibrates the decay interval.
* **Seasonality** — ambient temperature follows a sinusoid around the
  base.  The adaptive/oracle controllers recalibrate per probe, so
  seasonality mostly cancels for decay accuracy; it is kept because it
  exercises exactly that recalibration under a drifting environment.
* **Churn** — each epoch a seeded fraction of active devices is
  decommissioned, a fraction of previously decommissioned devices
  returns (re-enrollment), and a fraction of fleet size arrives as
  brand-new devices.  Decommissioned devices keep their chips: a
  returning device is the *same physical chip*, aged in the meantime,
  which is what makes first-enrolled-wins identity meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.dram.chip import DRAMChip
from repro.dram.devices import DeviceSpec


class FleetClock:
    """Simulated time as an epoch counter with fixed epoch length."""

    def __init__(self, epoch_duration_s: float) -> None:
        if epoch_duration_s <= 0.0:
            raise ValueError("epoch_duration_s must be positive")
        self._epoch_duration_s = float(epoch_duration_s)
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Current epoch index (starts at 0)."""
        return self._epoch

    @property
    def now_s(self) -> float:
        """Simulated seconds since the fleet came up."""
        return self._epoch * self._epoch_duration_s

    @property
    def epoch_duration_s(self) -> float:
        """Length of one epoch in simulated seconds."""
        return self._epoch_duration_s

    def advance(self) -> int:
        """Step to the next epoch; returns the new epoch index."""
        self._epoch += 1
        return self._epoch


@dataclass
class FleetDevice:
    """One device's identity and lifecycle state.

    ``device_id`` is the *identity* — it never changes, not across
    refreshes, decommissions or re-enrollments (first-enrolled-wins).
    ``generation`` counts enrollments of that identity (0 for the
    original), which versions the storage keys; ``chip`` is the
    physical substrate and survives decommissioning.
    """

    device_id: str
    chip: DRAMChip
    enrolled_epoch: int
    generation: int = 0
    active: bool = True
    decommissioned_epoch: Optional[int] = None

    @property
    def storage_key(self) -> str:
        """Versioned store key for the device's current enrollment.

        Generation 0 uses the bare identity so the flat decay path and
        the fleet path produce identical stores for a churn-free fleet;
        later generations append ``#rN`` because the sharded store
        rejects re-ingesting a live key — identity stays the base key.
        """
        if self.generation == 0:
            return self.device_id
        return f"{self.device_id}#r{self.generation}"


def base_key(storage_key: str) -> str:
    """Strip the re-enrollment version suffix off a storage key."""
    return storage_key.split("#", 1)[0]


@dataclass(frozen=True)
class LifecycleParams:
    """Knobs of the aging / seasonality / churn processes."""

    aging_sigma: float = 0.05
    aging_drift: float = -0.01
    season_amplitude_c: float = 10.0
    season_period_epochs: int = 4
    base_temperature_c: float = 20.0
    churn_fraction: float = 0.05
    reenroll_fraction: float = 0.5
    arrival_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.aging_sigma < 0.0:
            raise ValueError("aging_sigma must be >= 0")
        if self.season_period_epochs < 1:
            raise ValueError("season_period_epochs must be >= 1")
        for name in ("churn_fraction", "reenroll_fraction", "arrival_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")


class LifecycleModel:
    """Applies the lifecycle processes to a fleet, one epoch at a time.

    All randomness flows through the generator handed to each method —
    the engine derives it from the scenario seed, so two runs with the
    same seed make identical lifecycle decisions.
    """

    def __init__(self, params: LifecycleParams, spec: DeviceSpec) -> None:
        self._params = params
        self._spec = spec
        self._next_device = 0

    @property
    def params(self) -> LifecycleParams:
        """The lifecycle knobs this model runs with."""
        return self._params

    # -- device manufacturing ------------------------------------------

    def new_device(
        self, epoch: int, rng: np.random.Generator
    ) -> FleetDevice:
        """Manufacture and enroll-register one brand-new device."""
        index = self._next_device
        self._next_device += 1
        chip_seed = int(rng.integers(1, 2**31 - 1))
        device_id = f"dev-{index:05d}"
        chip = DRAMChip(
            self._spec,
            chip_seed=chip_seed,
            label=device_id,
        )
        return FleetDevice(
            device_id=device_id, chip=chip, enrolled_epoch=epoch
        )

    def build_fleet(
        self, n_devices: int, rng: np.random.Generator
    ) -> List[FleetDevice]:
        """Manufacture the initial population at epoch 0."""
        return [self.new_device(0, rng) for _ in range(n_devices)]

    # -- per-epoch physics ---------------------------------------------

    def temperature_at(self, epoch: int) -> float:
        """Ambient temperature for ``epoch`` (seasonal sinusoid)."""
        phase = 2.0 * np.pi * epoch / self._params.season_period_epochs
        return float(
            self._params.base_temperature_c
            + self._params.season_amplitude_c * np.sin(phase)
        )

    def age_device(
        self, device: FleetDevice, rng: np.random.Generator
    ) -> None:
        """One epoch of retention drift on the device's chip."""
        n_cells = device.chip.geometry.total_bits
        shift = rng.normal(
            self._params.aging_drift, self._params.aging_sigma, n_cells
        )
        device.chip.age_retention(shift)

    # -- churn decisions -----------------------------------------------

    def select_churned(
        self, active: List[FleetDevice], rng: np.random.Generator
    ) -> List[FleetDevice]:
        """Devices decommissioned this epoch (seeded sample)."""
        count = int(round(self._params.churn_fraction * len(active)))
        if count == 0 or not active:
            return []
        chosen = rng.choice(len(active), size=min(count, len(active)), replace=False)
        return [active[int(i)] for i in sorted(chosen)]

    def select_returning(
        self, inactive: List[FleetDevice], rng: np.random.Generator
    ) -> List[FleetDevice]:
        """Previously decommissioned devices that re-enroll this epoch."""
        if not inactive:
            return []
        mask = rng.random(len(inactive)) < self._params.reenroll_fraction
        return [device for device, hit in zip(inactive, mask) if hit]

    def arrival_count(
        self, fleet_size: int, rng: np.random.Generator
    ) -> int:
        """Number of brand-new devices arriving this epoch."""
        expected = self._params.arrival_fraction * fleet_size
        base = int(expected)
        return base + (1 if rng.random() < expected - base else 0)
