"""``repro fleet`` — scenario-driven fleet-lifecycle simulation.

Three subcommands (DESIGN.md §16):

``repro fleet init scenario.json --devices 200 --epochs 6``
    Write a scenario file.  Any scenario, lifecycle, or refresh-policy
    field is available as a flag; unset flags keep the documented
    defaults, so the file is a complete, reproducible record.

``repro fleet simulate --scenario scenario.json --out runs/fleet``
    Run the simulation: enrollment, aging, seasonality, churn,
    refresh, per-modality + fused identification, the per-epoch
    streaming leg (with interrupt/resume) and the spoofing round.
    Writes ``report.json`` into the output directory; ``--obs-dir``
    additionally exports ``repro_fleet_*`` and service metrics
    (``metrics.prom`` / ``metrics.json``) and, via the shared service
    command wrapper, the run's trace; the run lands in the ledger.

``repro fleet report --out runs/fleet``
    Summarize a saved report: per-epoch accuracy trajectory by
    modality, fused accuracy, stream and spoofing outcomes.

Exit codes: 0 success, 1 a stream leg ended ``failed`` or the report
is missing, 2 usage errors (unknown device/modality, bad scenario
file — raised as :class:`ValueError`/:class:`OSError` and rendered by
the dispatch wrapper).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict

from repro.fleet.engine import FleetReport, FleetSimulation
from repro.fleet.scenario import FleetScenario, default_scenario
from repro.obs.metrics import MetricsRegistry, bind_service_metrics

#: Flags exposed for scenario fields: (flag, dest, type, help).
_SCENARIO_FLAGS = (
    ("--seed", "seed", int, "scenario seed (default 2015)"),
    ("--devices", "n_devices", int, "fleet size at epoch 0"),
    ("--epochs", "n_epochs", int, "epochs to simulate"),
    ("--device", "device", str, "device family name (default test-1kb)"),
    ("--probes-per-epoch", "probes_per_epoch", int,
     "identification probes per device per epoch"),
    ("--malformed-fraction", "malformed_fraction", float,
     "malformed-record injection rate in the stream feed"),
    ("--spoof-devices", "spoof_devices", int,
     "victims per epoch in the spoofing round"),
    ("--stream-batch-size", "stream_batch_size", int,
     "stream micro-batch size"),
    ("--checkpoint-every", "checkpoint_every", int,
     "stream checkpoint cadence in observations"),
    ("--interrupt-after-batches", "interrupt_after_batches", int,
     "interrupt the stream after N batches then resume (0 disables)"),
    ("--aging-sigma", "aging_sigma", float,
     "per-cell log-retention drift sigma per epoch"),
    ("--aging-drift", "aging_drift", float,
     "global log-retention drift per epoch (negative = wear-out)"),
    ("--season-amplitude", "season_amplitude_c", float,
     "seasonal temperature amplitude, degrees C"),
    ("--season-period", "season_period_epochs", int,
     "seasonal period in epochs"),
    ("--base-temperature", "base_temperature_c", float,
     "base ambient temperature, degrees C"),
    ("--churn-fraction", "churn_fraction", float,
     "fraction of active devices decommissioned per epoch"),
    ("--reenroll-fraction", "reenroll_fraction", float,
     "per-epoch probability a parked device returns"),
    ("--arrival-fraction", "arrival_fraction", float,
     "new arrivals per epoch as a fraction of fleet size"),
    ("--max-staleness", "max_staleness_epochs", int,
     "refresh fingerprints older than this many epochs (0 disables)"),
    ("--refresh-budget", "budget_per_epoch", int,
     "cap on refreshes per epoch (default unlimited)"),
)


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the fleet subcommands to an argparse parser."""
    sub = parser.add_subparsers(dest="fleet_command", required=True)

    init = sub.add_parser(
        "init", help="write a scenario file with the given overrides"
    )
    init.add_argument("scenario", help="path of the scenario file to write")
    _add_scenario_flags(init)
    init.add_argument(
        "--modalities",
        default=None,
        help="comma-separated modality list (default decay,startup,rowhammer)",
    )
    init.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing scenario file",
    )

    simulate = sub.add_parser(
        "simulate", help="run a fleet simulation from a scenario"
    )
    simulate.add_argument(
        "--scenario",
        default=None,
        help="scenario file (default: the documented starter scenario)",
    )
    simulate.add_argument(
        "--out",
        required=True,
        metavar="DIR",
        help="output directory (store, stream state, report.json)",
    )
    simulate.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help="write metrics.prom / metrics.json (and the run trace) "
        "observability artifacts into DIR",
    )
    simulate.add_argument(
        "--json",
        action="store_true",
        help="emit the full report as JSON on stdout",
    )
    simulate.add_argument(
        "--quiet", action="store_true", help="only print the verdict line"
    )

    report = sub.add_parser(
        "report", help="summarize a saved fleet report"
    )
    report.add_argument(
        "--out",
        required=True,
        metavar="DIR",
        help="output directory of a previous simulate run "
        "(or a report.json path)",
    )
    report.add_argument(
        "--json",
        action="store_true",
        help="emit the report document as JSON on stdout",
    )


def _add_scenario_flags(parser: argparse.ArgumentParser) -> None:
    for flag, dest, value_type, help_text in _SCENARIO_FLAGS:
        parser.add_argument(
            flag, dest=dest, type=value_type, default=None, help=help_text
        )


def _overrides_from_args(args: argparse.Namespace) -> Dict[str, object]:
    overrides: Dict[str, object] = {}
    for _, dest, _, _ in _SCENARIO_FLAGS:
        value = getattr(args, dest, None)
        if value is not None:
            overrides[dest] = value
    modalities = getattr(args, "modalities", None)
    if modalities is not None:
        overrides["modalities"] = [
            name.strip() for name in modalities.split(",") if name.strip()
        ]
    return overrides


def _init(args: argparse.Namespace) -> int:
    path = Path(args.scenario)
    if path.exists() and not args.force:
        raise ValueError(
            f"{path} already exists (pass --force to overwrite)"
        )
    scenario = default_scenario(**_overrides_from_args(args))
    path.parent.mkdir(parents=True, exist_ok=True)
    scenario.save(path)
    print(
        f"scenario written to {path}: {scenario.n_devices} devices, "
        f"{scenario.n_epochs} epochs, "
        f"modalities {','.join(scenario.modalities)}"
    )
    return 0


def _simulate(args: argparse.Namespace) -> int:
    if args.scenario is not None:
        scenario = FleetScenario.load(args.scenario)
    else:
        scenario = default_scenario()
    out_dir = Path(args.out)
    registry = MetricsRegistry()
    simulation = FleetSimulation(scenario, out_dir, registry=registry)
    report = simulation.run()
    report.save(out_dir / "report.json")
    bind_service_metrics(registry, simulation.service_metrics)
    if args.obs_dir is not None:
        obs_path = Path(args.obs_dir)
        obs_path.mkdir(parents=True, exist_ok=True)
        registry.write_exposition(obs_path / "metrics.prom")
        registry.write_snapshot(obs_path / "metrics.json")
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    failed_streams = sum(
        1
        for record in report.epochs
        if record.stream.get("status") == "failed"
    )
    final = report.final_epoch
    print(
        f"fleet simulated: {scenario.n_epochs} epochs, "
        f"{final.active_devices} active devices at the end; "
        f"fused accuracy {final.fused_accuracy:.3f} "
        f"(best single "
        f"{max(final.accuracy.values()):.3f}); "
        f"{failed_streams} failed stream legs; "
        f"report written to {out_dir / 'report.json'}"
    )
    if not args.quiet:
        _print_epochs(report.to_json())
    return 0 if failed_streams == 0 else 1


def _report_path(out: str) -> Path:
    path = Path(out)
    if path.is_dir():
        path = path / "report.json"
    if not path.exists():
        raise ValueError(f"no fleet report at {path}")
    return path


def _report(args: argparse.Namespace) -> int:
    document = FleetReport.load(_report_path(args.out))
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    _print_epochs(document)
    spoofing = document.get("spoofing_total", {})
    if isinstance(spoofing, dict) and spoofing:
        print(
            "spoofing: "
            f"{spoofing.get('attempts', 0)} victims/epoch-rounds; "
            f"replay accepted (single/guarded/fused) "
            f"{spoofing.get('replay_accepted_single', 0)}/"
            f"{spoofing.get('replay_accepted_guarded', 0)}/"
            f"{spoofing.get('replay_accepted_fused', 0)}; "
            f"perturbed accepted "
            f"{spoofing.get('perturbed_accepted_single', 0)}/"
            f"{spoofing.get('perturbed_accepted_guarded', 0)}/"
            f"{spoofing.get('perturbed_accepted_fused', 0)}"
        )
    return 0


def _print_epochs(document: Dict[str, object]) -> None:
    epochs = document.get("epochs", [])
    if not isinstance(epochs, list):
        return
    for record in epochs:
        if not isinstance(record, dict):
            continue
        accuracy = record.get("accuracy", {})
        accuracy_text = " ".join(
            f"{modality}={value:.3f}"
            for modality, value in sorted(accuracy.items())
        )
        stream = record.get("stream", {})
        print(
            f"  epoch {record.get('epoch')}: "
            f"T={record.get('temperature_c', 0.0):.1f}C "
            f"active={record.get('active_devices')} "
            f"churn={record.get('churned')} "
            f"reenroll={record.get('reenrolled')} "
            f"arrive={record.get('arrivals')} "
            f"refresh={record.get('refreshed')} | "
            f"{accuracy_text} fused={record.get('fused_accuracy', 0.0):.3f} | "
            f"stream={stream.get('status')} "
            f"quarantined={stream.get('quarantined')}"
        )


def run_fleet(args: argparse.Namespace) -> int:
    """The fleet command body (dispatched by the repro CLI)."""
    if args.fleet_command == "init":
        return _init(args)
    if args.fleet_command == "simulate":
        return _simulate(args)
    return _report(args)


__all__ = ["configure_parser", "run_fleet"]
