"""Vectorized matching and score-level modality fusion.

Identifying one probe against N enrolled fingerprints with the scalar
:func:`~repro.core.distance.probable_cause_distance` is N Python calls;
at fleet scale (hundreds of devices × several modalities × several
epochs) that constant factor dominates.  :class:`PackedFingerprints`
stacks one modality's enrolled fingerprints into an ``(N, W)`` uint64
matrix so a probe's distance to *every* fingerprint is one vectorized
pass: with the paper's fingerprint normalization and footnote-2 swap
rule, Algorithm 3 reduces to ``(min(w_fp, w_probe) - |fp & probe|) /
min(w_fp, w_probe)`` — intersection counts are the only bit work.

Fusion is score-level, the standard late-fusion recipe: each
modality's distance is normalized by that modality's acceptance
threshold (so 1.0 always means "at the rejection line"), and the fused
score is the weighted mean of normalized scores.  A fused score below
1.0 accepts.  Because the normalized scores are comparable across
channels, a stale decay distance drifting past its threshold is
outvoted by startup/rowhammer scores that stayed small — the mechanism
behind the fused-accuracy floor the benchmark demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.bits import BitVector
from repro.core.fingerprint import Fingerprint

#: Byte-wise popcount table (numpy < 2 fallback, mirrors repro.bits).
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def _popcount_rows(words: np.ndarray) -> np.ndarray:
    """Per-row popcount of a (..., W) uint64 array."""
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
    as_bytes = words.view(np.uint8).reshape(*words.shape[:-1], -1)
    return _POPCOUNT8[as_bytes].sum(axis=-1, dtype=np.int64)


def _packed_words(bits: BitVector, n_words: int) -> np.ndarray:
    """The vector's uint64 words, zero-padded to ``n_words``."""
    raw = bits.to_bytes().ljust(n_words * 8, b"\x00")
    return np.frombuffer(raw, dtype=np.uint64).copy()


class PackedFingerprints:
    """One modality's enrolled fingerprints as a bit matrix.

    Rows are keyed (enrollment keys double as Algorithm 2 priority:
    earlier row wins distance ties), and :meth:`distances` scores one
    probe against every row in a single vectorized pass.
    """

    def __init__(
        self, entries: Sequence[Tuple[str, Fingerprint]], nbits: int
    ) -> None:
        if nbits < 1:
            raise ValueError("nbits must be positive")
        self._nbits = nbits
        self._keys: List[str] = []
        n_words = (nbits + 63) // 64
        rows = []
        weights = []
        for key, fingerprint in entries:
            if fingerprint.nbits != nbits:
                raise ValueError(
                    f"fingerprint {key!r} covers {fingerprint.nbits} bits, "
                    f"matrix holds {nbits}"
                )
            self._keys.append(key)
            rows.append(_packed_words(fingerprint.bits, n_words))
            weights.append(fingerprint.weight)
        if rows:
            self._matrix = np.stack(rows)
        else:
            self._matrix = np.zeros((0, n_words), dtype=np.uint64)
        self._weights = np.asarray(weights, dtype=np.int64)

    @property
    def keys(self) -> List[str]:
        """Enrollment keys, in row order."""
        return list(self._keys)

    @property
    def nbits(self) -> int:
        """Region size every row covers."""
        return self._nbits

    def __len__(self) -> int:
        return len(self._keys)

    def distances(self, probe: BitVector) -> np.ndarray:
        """Algorithm 3 distance from ``probe`` to every row at once.

        Equivalent to calling :func:`probable_cause_distance` with the
        default fingerprint normalization per row: the smaller-weight
        side plays the fingerprint role, so the distance is
        ``(min_w - intersection) / min_w`` (0.0 when ``min_w`` is 0).
        """
        if probe.nbits != self._nbits:
            raise ValueError(
                f"probe covers {probe.nbits} bits, matrix holds {self._nbits}"
            )
        if not self._keys:
            return np.zeros(0, dtype=float)
        probe_words = _packed_words(probe, self._matrix.shape[1])
        intersections = _popcount_rows(self._matrix & probe_words)
        min_weight = np.minimum(self._weights, probe.popcount())
        distances = np.zeros(len(self._keys), dtype=float)
        nonzero = min_weight > 0
        distances[nonzero] = (
            min_weight[nonzero] - intersections[nonzero]
        ) / min_weight[nonzero]
        return distances


@dataclass(frozen=True)
class FusedMatch:
    """Outcome of fused identification of one probe set."""

    key: Optional[str]
    score: float
    per_modality: Dict[str, float]

    @property
    def matched(self) -> bool:
        """True when the fused score cleared the acceptance line."""
        return self.key is not None


#: Saturation ceiling for one channel's normalized score.  A stale or
#: adversarial channel can report distances many multiples of its
#: threshold; without a cap that single channel vetoes the fused
#: decision no matter how confidently the others match.  The cap is
#: bounded on both sides.  Below: a spoofer who leaked one modality
#: presents that channel at score ~0 while the other channels saturate,
#: so with three equal weights rejection needs ``2*cap/3 >= 1``, i.e.
#: ``cap >= 1.5`` — any lower and a single leaked channel defeats
#: fusion outright.  Above: a genuine device whose decay channel went
#: fully stale (saturated) is accepted only while its two healthy
#: channels sum below ``3 - cap``, so every increment of the cap eats
#: directly into the drift budget of the channels that still work.
#: 1.6 keeps the replay veto with margin while leaving the healthy
#: channels a 1.4 budget — enough that multi-epoch rowhammer drift
#: does not push genuine tail devices over the line.
SCORE_CAP = 1.6


def fused_scores(
    distance_rows: Mapping[str, np.ndarray],
    thresholds: Mapping[str, float],
    weights: Optional[Mapping[str, float]] = None,
    cap: float = SCORE_CAP,
) -> np.ndarray:
    """Weighted mean of threshold-normalized, saturated distances.

    ``distance_rows`` maps modality -> distance vector over a shared
    candidate order.  Each vector is divided by its modality's
    threshold (so every channel contributes on the same "1.0 = the
    rejection line" scale regardless of its raw distance range), then
    clipped at ``cap`` before averaging — see :data:`SCORE_CAP` for
    why saturation is what makes fusion degrade gracefully as one
    modality goes stale.  Missing weights default to equal weighting.
    """
    if not distance_rows:
        raise ValueError("need at least one modality")
    if cap <= 1.0:
        raise ValueError("cap must exceed 1.0 (the rejection line)")
    total_weight = 0.0
    fused: Optional[np.ndarray] = None
    for modality, distances in distance_rows.items():
        threshold = thresholds[modality]
        if threshold <= 0.0:
            raise ValueError(
                f"threshold for {modality!r} must be positive"
            )
        weight = 1.0 if weights is None else float(weights[modality])
        if weight < 0.0:
            raise ValueError(f"weight for {modality!r} must be >= 0")
        normalized = np.minimum(
            np.asarray(distances, dtype=float) / threshold, cap
        )
        contribution = weight * normalized
        fused = contribution if fused is None else fused + contribution
        total_weight += weight
    assert fused is not None
    if total_weight <= 0.0:
        raise ValueError("at least one modality weight must be positive")
    return fused / total_weight


def identify_fused(
    probes: Mapping[str, BitVector],
    packs: Mapping[str, PackedFingerprints],
    thresholds: Mapping[str, float],
    weights: Optional[Mapping[str, float]] = None,
) -> FusedMatch:
    """Identify one device from per-modality probes via score fusion.

    All packs must share one candidate key order (the engine rebuilds
    them together).  Returns the best candidate and its fused score;
    ``key`` is None when even the best fused score is >= 1.0 (every
    modality consensus says reject).  Ties go to the earlier row,
    matching Algorithm 2's enrollment-order priority.
    """
    modalities = [m for m in packs if m in probes]
    if not modalities:
        raise ValueError("no modality present in both probes and packs")
    reference_keys = packs[modalities[0]].keys
    for modality in modalities[1:]:
        if packs[modality].keys != reference_keys:
            raise ValueError("packs disagree on candidate key order")
    if not reference_keys:
        return FusedMatch(key=None, score=float("inf"), per_modality={})
    rows = {
        modality: packs[modality].distances(probes[modality])
        for modality in modalities
    }
    fused = fused_scores(rows, thresholds, weights)
    best = int(np.argmin(fused))
    score = float(fused[best])
    per_modality = {
        modality: float(rows[modality][best]) for modality in modalities
    }
    return FusedMatch(
        key=reference_keys[best] if score < 1.0 else None,
        score=score,
        per_modality=per_modality,
    )
