"""Fleet scenario configuration: one JSON document drives a whole run.

A scenario is everything :class:`~repro.fleet.engine.FleetSimulation`
needs to be byte-reproducible: one seed, the fleet shape, the modality
mix, the lifecycle knobs, the refresh policy, and the streaming
parameters.  ``repro fleet init`` writes one of these; ``repro fleet
simulate`` loads it; the hypothesis determinism test round-trips it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.dram.devices import get_device
from repro.fleet.fingerprinters import make_fingerprinter
from repro.fleet.lifecycle import LifecycleParams
from repro.fleet.refresh import RefreshPolicy

#: Version stamped into scenario files and reports.
SCENARIO_SCHEMA_VERSION = 1

#: Modalities a scenario runs when it does not specify its own list.
DEFAULT_MODALITIES = ("decay", "startup", "rowhammer")


@dataclass(frozen=True)
class FleetScenario:
    """Complete, serializable description of one fleet simulation."""

    seed: int = 2015
    n_devices: int = 40
    n_epochs: int = 4
    epoch_duration_s: float = 86400.0 * 30.0
    device: str = "test-1kb"
    modalities: List[str] = field(
        default_factory=lambda: list(DEFAULT_MODALITIES)
    )
    fusion_weights: Optional[Dict[str, float]] = None
    probes_per_epoch: int = 1
    malformed_fraction: float = 0.02
    spoof_devices: int = 4
    lifecycle: LifecycleParams = field(default_factory=LifecycleParams)
    refresh: RefreshPolicy = field(default_factory=RefreshPolicy)
    stream_batch_size: int = 32
    checkpoint_every: int = 64
    interrupt_after_batches: int = 1

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        if self.n_epochs < 1:
            raise ValueError("n_epochs must be >= 1")
        if self.epoch_duration_s <= 0.0:
            raise ValueError("epoch_duration_s must be positive")
        if not self.modalities:
            raise ValueError("need at least one modality")
        if len(set(self.modalities)) != len(self.modalities):
            raise ValueError("modalities must be unique")
        for modality in self.modalities:
            make_fingerprinter(modality)  # raises on unknown names
        if self.fusion_weights is not None:
            unknown = set(self.fusion_weights) - set(self.modalities)
            if unknown:
                raise ValueError(
                    f"fusion weights name unknown modalities: {sorted(unknown)}"
                )
        if self.probes_per_epoch < 1:
            raise ValueError("probes_per_epoch must be >= 1")
        if not 0.0 <= self.malformed_fraction < 1.0:
            raise ValueError("malformed_fraction must be in [0, 1)")
        if self.spoof_devices < 0:
            raise ValueError("spoof_devices must be >= 0")
        if self.stream_batch_size < 1:
            raise ValueError("stream_batch_size must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.interrupt_after_batches < 0:
            raise ValueError("interrupt_after_batches must be >= 0")
        try:
            get_device(self.device)
        except KeyError as error:
            # KeyError -> ValueError so the CLI renders it as a usage
            # error instead of a crash.
            raise ValueError(error.args[0]) from None

    # -- serialization -------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        """JSON document (schema-versioned, fully plain types)."""
        payload = asdict(self)
        payload["schema_version"] = SCENARIO_SCHEMA_VERSION
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "FleetScenario":
        """Inverse of :meth:`to_json`; tolerant of a missing version."""
        data = dict(payload)
        version = data.pop("schema_version", SCENARIO_SCHEMA_VERSION)
        if version != SCENARIO_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported scenario schema_version {version!r}"
            )
        lifecycle = data.pop("lifecycle", None)
        refresh = data.pop("refresh", None)
        if lifecycle is not None:
            data["lifecycle"] = LifecycleParams(**lifecycle)
        if refresh is not None:
            data["refresh"] = RefreshPolicy(**refresh)
        return cls(**data)

    def save(self, path: Union[str, Path]) -> None:
        """Write the scenario as pretty, key-sorted JSON."""
        Path(path).write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FleetScenario":
        """Read a scenario written by :meth:`save`."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(payload, dict):
            raise ValueError(f"{path}: scenario must be a JSON object")
        return cls.from_json(payload)


def default_scenario(**overrides: object) -> FleetScenario:
    """The documented starter scenario, with keyword overrides.

    Nested lifecycle/refresh fields accept flat overrides too
    (``churn_fraction=...``, ``max_staleness_epochs=...``) so the CLI
    can expose them as plain flags.
    """
    lifecycle_fields = set(LifecycleParams.__dataclass_fields__)
    refresh_fields = set(RefreshPolicy.__dataclass_fields__)
    lifecycle_kwargs = {}
    refresh_kwargs = {}
    scenario_kwargs = {}
    for key, value in overrides.items():
        if key in lifecycle_fields:
            lifecycle_kwargs[key] = value
        elif key in refresh_fields:
            refresh_kwargs[key] = value
        else:
            scenario_kwargs[key] = value
    if lifecycle_kwargs:
        scenario_kwargs["lifecycle"] = LifecycleParams(**lifecycle_kwargs)
    if refresh_kwargs:
        scenario_kwargs["refresh"] = RefreshPolicy(**refresh_kwargs)
    return FleetScenario(**scenario_kwargs)  # type: ignore[arg-type]
