"""Fingerprint staleness accounting and the refresh policy.

A fingerprint enrolled at epoch E and probed at epoch E+k has aged k
epochs of retention drift; its within-class distance grows with k until
it crosses the acceptance threshold and the device becomes
unidentifiable by that modality.  Refreshing — re-running enrollment at
the device's current state — resets staleness to zero at a measurable
cost (each modality's ``enroll_cost`` counts the measurements its
characterization campaign consumes).  The policy trades those off:
refresh everything every epoch and accuracy stays at day-one levels
while cost explodes; never refresh and decay accuracy decays with the
fleet.  The benchmark sweeps this knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.fleet.lifecycle import FleetDevice


@dataclass(frozen=True)
class RefreshPolicy:
    """When to re-enroll a device's fingerprints.

    Parameters
    ----------
    max_staleness_epochs:
        Refresh a device once its fingerprints are at least this many
        epochs old.  0 disables refreshing entirely (the policy never
        selects anything), letting scenarios measure raw staleness.
    budget_per_epoch:
        Optional cap on refreshes per epoch; the stalest devices win.
    """

    max_staleness_epochs: int = 0
    budget_per_epoch: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_staleness_epochs < 0:
            raise ValueError("max_staleness_epochs must be >= 0")
        if self.budget_per_epoch is not None and self.budget_per_epoch < 0:
            raise ValueError("budget_per_epoch must be >= 0")

    @property
    def enabled(self) -> bool:
        """True when the policy can ever select a device."""
        return self.max_staleness_epochs > 0


class StalenessTracker:
    """Per-device fingerprint ages plus the refresh cost ledger.

    The tracker never touches chips or stores; it answers "how old is
    this device's enrollment" and records what refreshing has cost so
    the report can state the accuracy-vs-cost tradeoff in one place.
    """

    def __init__(self) -> None:
        self._enrolled_epoch: Dict[str, int] = {}
        self._refreshes = 0
        self._cost_measurements = 0

    # -- bookkeeping ---------------------------------------------------

    def record_enrollment(self, device_id: str, epoch: int) -> None:
        """Device (re-)enrolled at ``epoch``: staleness restarts."""
        self._enrolled_epoch[device_id] = epoch

    def record_refresh(
        self, device_id: str, epoch: int, cost_measurements: int
    ) -> None:
        """Device refreshed at ``epoch`` for ``cost_measurements``."""
        if device_id not in self._enrolled_epoch:
            raise KeyError(f"device {device_id!r} was never enrolled")
        self._enrolled_epoch[device_id] = epoch
        self._refreshes += 1
        self._cost_measurements += cost_measurements

    def forget(self, device_id: str) -> None:
        """Drop a decommissioned device from staleness accounting."""
        self._enrolled_epoch.pop(device_id, None)

    # -- queries -------------------------------------------------------

    def staleness(self, device_id: str, epoch: int) -> int:
        """Epochs since the device's last enrollment or refresh."""
        enrolled = self._enrolled_epoch[device_id]
        return max(0, epoch - enrolled)

    def tracked(self) -> List[str]:
        """Device ids currently under staleness accounting."""
        return sorted(self._enrolled_epoch)

    @property
    def refreshes(self) -> int:
        """Total refreshes performed."""
        return self._refreshes

    @property
    def cost_measurements(self) -> int:
        """Total measurements spent on refreshes."""
        return self._cost_measurements

    def select_for_refresh(
        self,
        policy: RefreshPolicy,
        devices: List[FleetDevice],
        epoch: int,
    ) -> List[FleetDevice]:
        """Devices the policy refreshes this epoch, stalest first.

        Ties in staleness break by device id so the selection is
        deterministic regardless of input order.
        """
        if not policy.enabled:
            return []
        due = [
            device
            for device in devices
            if device.active
            and self.staleness(device.device_id, epoch)
            >= policy.max_staleness_epochs
        ]
        due.sort(
            key=lambda device: (
                -self.staleness(device.device_id, epoch),
                device.device_id,
            )
        )
        if policy.budget_per_epoch is not None:
            due = due[: policy.budget_per_epoch]
        return due

    def summary(self, epoch: int) -> Dict[str, object]:
        """Staleness distribution and cost totals for the report."""
        ages = sorted(
            self.staleness(device_id, epoch)
            for device_id in self._enrolled_epoch
        )
        if ages:
            mean_age = sum(ages) / len(ages)
            max_age = ages[-1]
        else:
            mean_age = 0.0
            max_age = 0
        return {
            "tracked_devices": len(ages),
            "mean_staleness_epochs": mean_age,
            "max_staleness_epochs": max_age,
            "refreshes_total": self._refreshes,
            "refresh_cost_measurements": self._cost_measurements,
        }
