"""Fleet-lifecycle simulation with pluggable multi-modality fingerprinting.

ROADMAP item 5 (DESIGN.md §16): simulate a population of devices over
simulated time — retention aging, temperature seasonality, churn and
re-enrollment, fingerprint staleness and refresh — and measure how
identification accuracy holds up per modality and under score-level
fusion, with adversarial spoofing evaluated against ``repro.defenses``
and the decay observations driven through the §9 streaming pipeline.
"""

from repro.fleet.engine import EpochRecord, FleetReport, FleetSimulation
from repro.fleet.fingerprinters import (
    DecayFingerprinter,
    Fingerprinter,
    RowhammerFingerprinter,
    StartupFingerprinter,
    make_fingerprinter,
)
from repro.fleet.fusion import (
    FusedMatch,
    PackedFingerprints,
    fused_scores,
    identify_fused,
)
from repro.fleet.lifecycle import (
    FleetClock,
    FleetDevice,
    LifecycleModel,
    LifecycleParams,
)
from repro.fleet.refresh import RefreshPolicy, StalenessTracker
from repro.fleet.scenario import FleetScenario, default_scenario
from repro.fleet.spoofing import SpoofingEvaluation, evaluate_spoofing

__all__ = [
    "DecayFingerprinter",
    "EpochRecord",
    "Fingerprinter",
    "FleetClock",
    "FleetDevice",
    "FleetReport",
    "FleetScenario",
    "FleetSimulation",
    "FusedMatch",
    "LifecycleModel",
    "LifecycleParams",
    "PackedFingerprints",
    "RefreshPolicy",
    "RowhammerFingerprinter",
    "SpoofingEvaluation",
    "StalenessTracker",
    "StartupFingerprinter",
    "default_scenario",
    "evaluate_spoofing",
    "fused_scores",
    "identify_fused",
    "make_fingerprinter",
]
