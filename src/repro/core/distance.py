"""Distance metrics between error strings and fingerprints.

The heart of Probable Cause's classifier is Algorithm 3: a modified
Jaccard distance designed to survive *mismatched approximation levels*.
Plain Hamming distance fails there: an output with 5 % error from the
fingerprinted chip looks farther from a 1 %-error fingerprint than an
output from a different chip with matching error volume (§5.2).  The
paper's metric instead counts only volatile cells the fingerprint
*promises* should have failed but did not — extra errors from deeper
approximation or from noise are ignored.

Faithfulness note.  The paper's prose says the missing-error count is
"normalized to the number of errors in the fingerprint", while its
pseudocode divides by ``HammingWeight(errorString)``.  Only the prose
variant reproduces the paper's own figures: with a 1 %-error
fingerprint against a 10 %-error between-class output, dividing by the
error string's weight gives ≈0.9·|FP|/|E| ≈ 0.09 — *below* any sane
threshold — whereas dividing by the fingerprint's weight gives ≈0.90,
exactly the accuracy-grouped between-class clusters of Figure 11
(0.99 / 0.95 / 0.90).  We therefore default to the prose normalization
(``normalize="fingerprint"``) and expose the literal-pseudocode variant
as ``normalize="errorstring"`` for comparison; the test suite pins the
figure-consistency argument down.
"""

from __future__ import annotations

from typing import Union

from repro.bits import BitVector
from repro.core.fingerprint import Fingerprint

BitsLike = Union[BitVector, Fingerprint]


def _as_bits(value: BitsLike) -> BitVector:
    return value.bits if isinstance(value, Fingerprint) else value


def probable_cause_distance(
    error_string: BitsLike,
    fingerprint: BitsLike,
    normalize: str = "fingerprint",
) -> float:
    """Algorithm 3: modified Jaccard distance in [0, 1].

    Counts fingerprint error bits absent from the error string, then
    normalizes.  Per the paper's footnote 2, whichever operand has
    fewer set bits plays the "fingerprint" role, so the metric is
    symmetric in practice and robust to either side being the more
    heavily approximated one.

    Parameters
    ----------
    error_string, fingerprint:
        Bit vectors (or :class:`Fingerprint` wrappers) over the same
        region.
    normalize:
        ``"fingerprint"`` — divide by the weight of the smaller operand
        (the fingerprint after swapping), as in the paper's prose and
        figures (default).
        ``"errorstring"`` — divide by the weight of the larger operand,
        as in the paper's literal pseudocode.

    Returns
    -------
    float
        0.0 when every promised volatile cell failed; 1.0 when none
        did.  Two empty operands are defined as distance 0.0 (nothing
        promised, nothing missing); an empty fingerprint against a
        non-empty error string is 0.0 for the pseudocode variant
        (no promised bit is missing) as well.
    """
    if normalize not in ("errorstring", "fingerprint"):
        raise ValueError(f"unknown normalize mode {normalize!r}")
    errors = _as_bits(error_string)
    promised = _as_bits(fingerprint)
    if errors.nbits != promised.nbits:
        raise ValueError(
            f"region size mismatch: {errors.nbits} vs {promised.nbits} bits"
        )
    # Swap rule: the side with fewer error bits is the fingerprint.
    weight_errors = errors.popcount()
    weight_promised = promised.popcount()
    if weight_promised > weight_errors:
        errors, promised = promised, errors
        weight_errors, weight_promised = weight_promised, weight_errors

    missing = promised.count_andnot(errors)
    if normalize == "errorstring":
        denominator = weight_errors
    else:
        denominator = weight_promised
    if denominator == 0:
        return 0.0
    return missing / denominator


def hamming_distance_normalized(a: BitsLike, b: BitsLike) -> float:
    """Hamming distance divided by region size — the §5.2 strawman.

    Included as the baseline whose failure under mismatched
    approximation levels motivates Algorithm 3.
    """
    left = _as_bits(a)
    right = _as_bits(b)
    if left.nbits != right.nbits:
        raise ValueError(
            f"region size mismatch: {left.nbits} vs {right.nbits} bits"
        )
    if left.nbits == 0:
        return 0.0
    return left.hamming_distance(right) / left.nbits


def jaccard_distance(a: BitsLike, b: BitsLike) -> float:
    """Classic Jaccard distance ``1 - |A∩B| / |A∪B|``.

    The textbook metric the paper's Algorithm 3 adapts; exposed for
    comparison studies.  Two empty sets have distance 0.0.
    """
    left = _as_bits(a)
    right = _as_bits(b)
    if left.nbits != right.nbits:
        raise ValueError(
            f"region size mismatch: {left.nbits} vs {right.nbits} bits"
        )
    intersection = left.count_and(right)
    union = left.popcount() + right.popcount() - intersection
    if union == 0:
        return 0.0
    return 1.0 - intersection / union


#: Distance threshold for declaring a match.  §7.1 calls T = 10 % of the
#: fingerprint's error budget "a safe upper bound chosen based on our
#: experiment results"; expressed as a distance that is 0.1, far above
#: measured within-class distances (~1e-3, Figure 7) and far below
#: between-class ones (>0.75, Figure 11).
DEFAULT_THRESHOLD = 0.1
