"""Section 8.3 — locating errors without ground-truth exact data.

Algorithms 1-4 consume *error strings*, which presume the attacker
knows the exact value an approximate output should have had.  §8.3
sketches three ways to get there from the approximate output alone;
this module implements all three:

* **Recompute** — when the output is a deterministic function of known
  inputs, run the computation exactly and diff
  (:func:`recompute_exact_errors`).
* **Denoise** — DRAM approximation error looks like white noise
  imprinted on structured data; a spatial denoiser (median filter for
  byte-valued images) reconstructs a close estimate of the exact output
  and the disagreement marks candidate error bits
  (:func:`estimate_errors_by_denoising`).
* **Speculate** — try candidate exact reconstructions and accept any
  whose error string lands within the match threshold of a known
  fingerprint (:func:`speculative_identify`).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

import numpy as np

from repro.bits import BitVector
from repro.core.distance import DEFAULT_THRESHOLD
from repro.core.errors import mark_errors
from repro.core.identify import FingerprintDatabase, Identification, identify_error_string


def recompute_exact_errors(
    approx: BitVector,
    inputs: object,
    compute: Callable[[object], BitVector],
) -> BitVector:
    """Error string via exact recomputation from known inputs.

    ``compute`` must be the exact (non-approximate) version of the
    computation that produced ``approx``.
    """
    exact = compute(inputs)
    if exact.nbits != approx.nbits:
        raise ValueError(
            f"recomputed output has {exact.nbits} bits, "
            f"approximate output has {approx.nbits}"
        )
    return mark_errors(approx, exact)


def median_denoise_bytes(image: np.ndarray) -> np.ndarray:
    """3x3 median filter over a 2-D uint8 image (edges replicated).

    Bit flips from DRAM decay hit single bytes at random positions, so
    a median over the 3x3 neighbourhood removes nearly all of them
    while preserving edges — the classic salt-and-pepper cleaner.
    """
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    padded = np.pad(image, 1, mode="edge")
    stacked = np.stack(
        [
            padded[dy : dy + image.shape[0], dx : dx + image.shape[1]]
            for dy in range(3)
            for dx in range(3)
        ]
    )
    return np.median(stacked, axis=0).astype(image.dtype)


def estimate_errors_by_denoising(
    approx_image: np.ndarray,
    min_flips_per_byte: int = 1,
    min_byte_delta: int = 0,
    single_bit_only: bool = False,
) -> Tuple[BitVector, np.ndarray]:
    """Estimate the error string of an approximate image without ground truth.

    Denoises the image, then marks every bit where the approximate and
    denoised bytes disagree.  Two filters suppress false positives on
    genuine fine texture:

    * ``min_flips_per_byte`` — bytes whose Hamming difference from the
      denoised value is below this are trusted (treated as exact);
    * ``min_byte_delta`` — bytes whose absolute *value* difference is
      below this are trusted.  Texture perturbs values by a few counts
      while a decay flip in bits 3-7 jumps the value by 8-128, so a
      threshold of ~8 trades recall (low-bit flips are dropped) for
      precision.
    * ``single_bit_only`` — only accept bytes whose diff from the
      denoised value is exactly one bit.  DRAM decay flips single bits;
      texture disagreement is typically multi-bit.

    Precision matters more than recall here: the footnote-2 swap rule
    means a *subset* of the true error string matches its chip at
    near-zero distance, while false-positive bits directly inflate the
    distance.  ``single_bit_only=True, min_byte_delta=16`` reaches ~1.0
    precision on textured photographs at ~0.1 recall — enough evidence
    to identify a chip with a wide margin.

    Returns
    -------
    (estimated_errors, denoised_image)
    """
    if approx_image.dtype != np.uint8:
        raise ValueError("approximate image must be uint8")
    denoised = median_denoise_bytes(approx_image)
    approx_flat = approx_image.ravel()
    denoised_flat = denoised.ravel()
    diff = approx_flat ^ denoised_flat
    flips_per_byte = np.unpackbits(diff[:, None], axis=1).sum(axis=1)
    suspicious = flips_per_byte >= min_flips_per_byte
    if single_bit_only:
        suspicious &= flips_per_byte == 1
    if min_byte_delta > 0:
        delta = np.abs(
            approx_flat.astype(np.int16) - denoised_flat.astype(np.int16)
        )
        suspicious &= delta >= min_byte_delta
    diff = np.where(suspicious, diff, 0).astype(np.uint8)
    bit_diffs = np.unpackbits(diff[:, None], axis=1, bitorder="little").ravel()
    return BitVector.from_bool_array(bit_diffs.astype(bool)), denoised


def error_estimate_quality(
    estimated: BitVector, true_errors: BitVector
) -> Tuple[float, float]:
    """(precision, recall) of an estimated error string.

    Precision: fraction of flagged bits that really flipped.  Recall:
    fraction of real flips that were flagged.  Both are 1.0 when the
    corresponding denominator is zero.
    """
    flagged = estimated.popcount()
    actual = true_errors.popcount()
    true_positive = estimated.count_and(true_errors)
    precision = true_positive / flagged if flagged else 1.0
    recall = true_positive / actual if actual else 1.0
    return precision, recall


def speculative_identify(
    approx: BitVector,
    candidate_exacts: Iterable[BitVector],
    database: FingerprintDatabase,
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[Identification, Optional[int]]:
    """Try candidate exact reconstructions until one identifies a chip.

    Returns the first successful identification together with the index
    of the candidate that produced it, or a failed identification and
    ``None`` when no candidate matches any fingerprint.
    """
    for candidate_index, exact in enumerate(candidate_exacts):
        result = identify_error_string(
            mark_errors(approx, exact), database, threshold
        )
        if result.matched:
            return result, candidate_index
    return Identification.failed(), None
